//! Vendored, dependency-free stand-in for `parking_lot`.
//!
//! Provides the `parking_lot` locking API this workspace uses — a
//! [`Mutex`] and [`RwLock`] whose `lock()`/`read()`/`write()` return
//! guards directly (no `Result`, no poisoning) — implemented over
//! `std::sync`. A poisoned std lock (a thread panicked while holding it)
//! is recovered by taking the inner guard, matching `parking_lot`'s
//! poison-free semantics.

use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};

// Guard types are part of the public API, under the same names and with
// the same one-lifetime-one-type shape as the real parking_lot's own
// guards: downstream code should write `parking_lot::RwLockReadGuard`,
// not `std::sync::…`, so a future swap to the real crate stays
// source-compatible.
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared read access is held.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until exclusive write access is held.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
