//! Vendored, dependency-free stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the slice of proptest this workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and
//! tuple strategies, [`collection::vec`], [`sample::select`],
//! [`option::of`], [`bool::ANY`], [`any`], string-from-pattern
//! strategies, [`ProptestConfig::with_cases`] and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! * cases are **deterministic**: the per-case RNG is seeded from the test
//!   name and case index, so failures reproduce without a persistence
//!   file;
//! * there is **no shrinking** — a failing case panics with its inputs
//!   unshrunk (the deterministic seeding makes it re-runnable);
//! * string "regex" strategies support the subset used here: a single
//!   character class `[...]{lo,hi}` and the printable-class `\PC{lo,hi}`.
//!
//! Case count: `ProptestConfig::default()` honors `PROPTEST_CASES`
//! (default 64).

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one `(test, case)` pair: same inputs, same stream, forever.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Test-run configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A value generator: the heart of every property.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always-the-same-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Pattern-string strategies: `"[a-z0-9]{1,24}"` or `"\PC{0,40}"`.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

/// Printable pool for `\PC`: ASCII printables plus a few multibyte chars so
/// escaping and UTF-8 handling get exercised.
const PRINTABLE_EXTRA: [char; 6] = ['é', 'ü', 'λ', '→', '中', '😀'];

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    if let Some((pool, lo, hi)) = parse_class_pattern(pattern) {
        let len = rng.usize_in(lo, hi + 1);
        return (0..len)
            .map(|_| pool[rng.usize_in(0, pool.len())])
            .collect();
    }
    // Fallback: short alphanumeric string.
    let len = rng.usize_in(0, 16);
    (0..len)
        .map(|_| {
            const ALNUM: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
            ALNUM[rng.usize_in(0, ALNUM.len())] as char
        })
        .collect()
}

/// Parse `[class]{lo,hi}` or `\PC{lo,hi}` into (char pool, lo, hi).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let (class_part, rep_part) = pattern.split_once('{')?;
    let rep = rep_part.strip_suffix('}')?;
    let (lo, hi) = match rep.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = rep.trim().parse().ok()?;
            (n, n)
        }
    };
    if class_part == "\\PC" {
        let mut pool: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
        pool.extend(PRINTABLE_EXTRA);
        return Some((pool, lo, hi));
    }
    let inner = class_part.strip_prefix('[')?.strip_suffix(']')?;
    let chars: Vec<char> = inner.chars().collect();
    let mut pool = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i] as u32, chars[i + 2] as u32);
            if a <= b {
                pool.extend((a..=b).filter_map(char::from_u32));
                i += 3;
                continue;
            }
        }
        pool.push(chars[i]);
        i += 1;
    }
    if pool.is_empty() {
        None
    } else {
        Some((pool, lo, hi))
    }
}

/// Arbitrary values of a type, for [`any`].
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — an unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// A fair coin.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy type behind [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// The strategy type behind [`select()`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Pick uniformly from `options` (which must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() from an empty list");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.usize_in(0, self.0.len())].clone()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// The strategy type behind [`of()`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `None` half the time, `Some` of the inner strategy otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }
}

/// The `prop::` namespace alias used by `use proptest::prelude::*` code.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cases:expr;) => {};
    ($cases:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases: u32 = $cases;
            for __case in 0..__cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!($cases; $($rest)*);
    };
}

/// Define property tests: each `fn` runs its body over many sampled cases.
///
/// ```
/// use proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     // (`#[test]` goes here in a real test file.)
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg).cases; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default().cases; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(x in 5u32..10, f in -1.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u8..255, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn tuples_and_maps(p in (0.0f64..10.0, 0.0f64..10.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..20.0).contains(&p));
        }

        #[test]
        fn class_pattern_strings(s in "[a-c]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn printable_pattern_strings(s in "\\PC{0,20}", flag in prop::bool::ANY) {
            prop_assert!(s.chars().count() <= 20);
            prop_assert!(s.chars().all(|c| !c.is_control()));
            let _ = flag;
        }

        #[test]
        fn any_u64_works(x in any::<u64>()) {
            let _ = x;
        }

        #[test]
        fn select_picks_from_the_list(x in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&x));
        }

        #[test]
        fn option_of_covers_both_arms(x in prop::option::of(1u32..5)) {
            match x {
                None => {}
                Some(v) => prop_assert!((1..5).contains(&v)),
            }
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
