//! Vendored no-op `serde` derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few plain-old-data
//! types so downstream users *could* serialize them, but nothing in-tree
//! actually drives serde serialization (the client JSON is hand-rolled —
//! its cost is part of the reproduced experiment). With no crates.io
//! access, the derives expand to nothing: the attribute positions stay
//! valid and no trait impls are emitted.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
