//! Vendored, dependency-free stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the benchmarking surface the workspace's benches compile against:
//! [`Criterion`], [`BenchmarkGroup`] (`measurement_time`, `warm_up_time`,
//! `sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Methodology (simplified relative to real criterion — no outlier
//! analysis, no plots): each benchmark warms up for `warm_up_time`, sizes
//! an iteration batch so one sample lasts roughly
//! `measurement_time / sample_size`, then reports min / median / mean per
//! iteration over the collected samples on stdout.

use std::time::{Duration, Instant};

/// Re-export of the black-box optimizer barrier benches import.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_measurement: Duration,
    default_warm_up: Duration,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_measurement: Duration::from_secs(3),
            default_warm_up: Duration::from_millis(500),
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            name: name.into(),
            measurement: self.default_measurement,
            warm_up: self.default_warm_up,
            samples: self.default_samples,
            _criterion: self,
        };
        println!("\n== group {}", group.name);
        group
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let (m, w, s) = (
            self.default_measurement,
            self.default_warm_up,
            self.default_samples,
        );
        run_benchmark(&id.into().0, m, w, s, &mut f);
    }
}

/// A set of benchmarks sharing timing settings, printed under one heading.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    warm_up: Duration,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Warm-up time per benchmark before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        run_benchmark(
            &format!("{}/{}", self.name, id.into().0),
            self.measurement,
            self.warm_up,
            self.samples,
            &mut f,
        );
    }

    /// Benchmark a closure that receives a shared `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        run_benchmark(
            &format!("{}/{}", self.name, id.into().0),
            self.measurement,
            self.warm_up,
            self.samples,
            &mut |b| f(b, input),
        );
    }

    /// Close the group (printing is incremental; nothing further to do).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to every benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    mode: Mode,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Calibrate,
    Measure,
}

impl Bencher {
    /// Measure `f`, called in timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Calibrate => {
                // One untimed call so calibration can size batches.
                let t = Instant::now();
                black_box(f());
                self.samples.push(t.elapsed());
            }
            Mode::Measure => {
                let t = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(f());
                }
                self.samples
                    .push(t.elapsed() / self.iters_per_sample.max(1) as u32);
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    measurement: Duration,
    warm_up: Duration,
    samples: usize,
    f: &mut F,
) {
    // Calibration + warm-up: run single iterations until warm_up elapses,
    // estimating per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    loop {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            mode: Mode::Calibrate,
        };
        f(&mut b);
        if let Some(d) = b.samples.last() {
            per_iter = (*d).max(Duration::from_nanos(1));
        }
        if warm_start.elapsed() >= warm_up {
            break;
        }
    }

    // Size batches so one sample lasts ~ measurement/samples.
    let per_sample = measurement / samples.max(1) as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(samples),
        mode: Mode::Measure,
    };
    for _ in 0..samples {
        f(&mut b);
    }

    let mut times = b.samples;
    times.sort_unstable();
    let min = times.first().copied().unwrap_or_default();
    let median = times.get(times.len() / 2).copied().unwrap_or_default();
    let mean = times
        .iter()
        .sum::<Duration>()
        .checked_div(times.len().max(1) as u32)
        .unwrap_or_default();
    println!(
        "{label:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples x {} iters)",
        min,
        median,
        mean,
        times.len(),
        iters
    );
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main()` from one or more [`criterion_group!`] outputs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(5);
        let mut ran = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                ran += 1;
                black_box(2u64 + 2)
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("inputs");
        group
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2))
            .sample_size(3);
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::from_parameter("v3"), &data, |b, d| {
            b.iter(|| black_box(d.iter().sum::<u64>()))
        });
        group.finish();
    }
}
