//! Vendored, dependency-free stand-in for `serde`.
//!
//! Supplies the two trait names and the derive macros so that
//! `use serde::{Serialize, Deserialize}` and
//! `#[derive(Serialize, Deserialize)]` compile without crates.io access.
//! The derives are no-ops (see `serde_derive`): nothing in this workspace
//! serializes through serde — the wire format is the hand-rolled JSON in
//! `gvdb-core`, whose construction cost is itself part of the reproduced
//! experiment.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
