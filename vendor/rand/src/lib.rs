//! Vendored, dependency-free stand-in for the `rand` crate (0.9 API).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *subset* of `rand` it actually uses:
//!
//! * [`StdRng`] — a deterministic xoshiro256++ generator seeded with
//!   SplitMix64, exactly reproducible from [`SeedableRng::seed_from_u64`];
//! * [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`];
//! * [`SliceRandom::shuffle`] / [`IndexedRandom::choose`].
//!
//! Everything is deterministic given the seed — there is deliberately no
//! OS-entropy path, because the whole platform (partitioner, generators,
//! layouts) depends on reproducible runs for its byte-identical-database
//! guarantee.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The standard generator: xoshiro256++ (Blackman & Vigna), seeded by
/// running SplitMix64 over the `u64` seed — the same construction the real
/// `rand` crate documents for `seed_from_u64`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the seed into the full 256-bit state.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly from an [`RngCore`] (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform value of `T` (`f64`/`f32` in `[0, 1)`, integers over the
    /// full domain, fair `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// In-place slice shuffling.
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

/// Uniform element selection from a slice.
pub trait IndexedRandom {
    /// Element type.
    type Item;
    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((rng.next_u64() % self.len() as u64) as usize)
        }
    }
}

/// The usual glob import, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{IndexedRandom, Rng, RngCore, SampleRange, SeedableRng, SliceRandom, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
