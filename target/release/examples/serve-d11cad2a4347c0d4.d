/root/repo/target/release/examples/serve-d11cad2a4347c0d4.d: examples/serve.rs

/root/repo/target/release/examples/serve-d11cad2a4347c0d4: examples/serve.rs

examples/serve.rs:
