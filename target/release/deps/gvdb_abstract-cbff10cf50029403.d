/root/repo/target/release/deps/gvdb_abstract-cbff10cf50029403.d: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs

/root/repo/target/release/deps/libgvdb_abstract-cbff10cf50029403.rlib: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs

/root/repo/target/release/deps/libgvdb_abstract-cbff10cf50029403.rmeta: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs

crates/abstraction/src/lib.rs:
crates/abstraction/src/filter.rs:
crates/abstraction/src/hierarchy.rs:
crates/abstraction/src/rank.rs:
crates/abstraction/src/summarize.rs:
