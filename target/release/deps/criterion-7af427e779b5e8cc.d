/root/repo/target/release/deps/criterion-7af427e779b5e8cc.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7af427e779b5e8cc.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7af427e779b5e8cc.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
