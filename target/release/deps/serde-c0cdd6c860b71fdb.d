/root/repo/target/release/deps/serde-c0cdd6c860b71fdb.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c0cdd6c860b71fdb.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-c0cdd6c860b71fdb.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
