/root/repo/target/release/deps/gvdb_layout-b518643bcabdc1ad.d: crates/layout/src/lib.rs crates/layout/src/bounds.rs crates/layout/src/circular.rs crates/layout/src/force.rs crates/layout/src/grid.rs crates/layout/src/hierarchical.rs crates/layout/src/parallel.rs crates/layout/src/random.rs crates/layout/src/star.rs

/root/repo/target/release/deps/libgvdb_layout-b518643bcabdc1ad.rlib: crates/layout/src/lib.rs crates/layout/src/bounds.rs crates/layout/src/circular.rs crates/layout/src/force.rs crates/layout/src/grid.rs crates/layout/src/hierarchical.rs crates/layout/src/parallel.rs crates/layout/src/random.rs crates/layout/src/star.rs

/root/repo/target/release/deps/libgvdb_layout-b518643bcabdc1ad.rmeta: crates/layout/src/lib.rs crates/layout/src/bounds.rs crates/layout/src/circular.rs crates/layout/src/force.rs crates/layout/src/grid.rs crates/layout/src/hierarchical.rs crates/layout/src/parallel.rs crates/layout/src/random.rs crates/layout/src/star.rs

crates/layout/src/lib.rs:
crates/layout/src/bounds.rs:
crates/layout/src/circular.rs:
crates/layout/src/force.rs:
crates/layout/src/grid.rs:
crates/layout/src/hierarchical.rs:
crates/layout/src/parallel.rs:
crates/layout/src/random.rs:
crates/layout/src/star.rs:
