/root/repo/target/release/deps/serde_derive-a41d4d40018941f7.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-a41d4d40018941f7.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
