/root/repo/target/release/deps/gvdb_core-d745e60d7f8bafe8.d: crates/core/src/lib.rs crates/core/src/birdview.rs crates/core/src/cache.rs crates/core/src/client.rs crates/core/src/json.rs crates/core/src/organizer.rs crates/core/src/preprocess.rs crates/core/src/query.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/workspace.rs

/root/repo/target/release/deps/libgvdb_core-d745e60d7f8bafe8.rlib: crates/core/src/lib.rs crates/core/src/birdview.rs crates/core/src/cache.rs crates/core/src/client.rs crates/core/src/json.rs crates/core/src/organizer.rs crates/core/src/preprocess.rs crates/core/src/query.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/workspace.rs

/root/repo/target/release/deps/libgvdb_core-d745e60d7f8bafe8.rmeta: crates/core/src/lib.rs crates/core/src/birdview.rs crates/core/src/cache.rs crates/core/src/client.rs crates/core/src/json.rs crates/core/src/organizer.rs crates/core/src/preprocess.rs crates/core/src/query.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/birdview.rs:
crates/core/src/cache.rs:
crates/core/src/client.rs:
crates/core/src/json.rs:
crates/core/src/organizer.rs:
crates/core/src/preprocess.rs:
crates/core/src/query.rs:
crates/core/src/session.rs:
crates/core/src/stats.rs:
crates/core/src/workspace.rs:
