/root/repo/target/release/deps/cache_hit-bc9c65e8657ebd55.d: crates/bench/benches/cache_hit.rs

/root/repo/target/release/deps/cache_hit-bc9c65e8657ebd55: crates/bench/benches/cache_hit.rs

crates/bench/benches/cache_hit.rs:
