/root/repo/target/release/deps/gvdb_partition-8f01122022d55b3b.d: crates/partition/src/lib.rs crates/partition/src/coarsen.rs crates/partition/src/initial.rs crates/partition/src/kway.rs crates/partition/src/matching.rs crates/partition/src/quality.rs crates/partition/src/refine.rs crates/partition/src/wgraph.rs

/root/repo/target/release/deps/libgvdb_partition-8f01122022d55b3b.rlib: crates/partition/src/lib.rs crates/partition/src/coarsen.rs crates/partition/src/initial.rs crates/partition/src/kway.rs crates/partition/src/matching.rs crates/partition/src/quality.rs crates/partition/src/refine.rs crates/partition/src/wgraph.rs

/root/repo/target/release/deps/libgvdb_partition-8f01122022d55b3b.rmeta: crates/partition/src/lib.rs crates/partition/src/coarsen.rs crates/partition/src/initial.rs crates/partition/src/kway.rs crates/partition/src/matching.rs crates/partition/src/quality.rs crates/partition/src/refine.rs crates/partition/src/wgraph.rs

crates/partition/src/lib.rs:
crates/partition/src/coarsen.rs:
crates/partition/src/initial.rs:
crates/partition/src/kway.rs:
crates/partition/src/matching.rs:
crates/partition/src/quality.rs:
crates/partition/src/refine.rs:
crates/partition/src/wgraph.rs:
