/root/repo/target/release/deps/proptest-004144dba6eafc6b.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-004144dba6eafc6b.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-004144dba6eafc6b.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
