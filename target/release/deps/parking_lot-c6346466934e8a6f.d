/root/repo/target/release/deps/parking_lot-c6346466934e8a6f.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-c6346466934e8a6f.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-c6346466934e8a6f.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
