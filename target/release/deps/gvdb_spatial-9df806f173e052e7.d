/root/repo/target/release/deps/gvdb_spatial-9df806f173e052e7.d: crates/spatial/src/lib.rs crates/spatial/src/geom.rs crates/spatial/src/morton.rs crates/spatial/src/rtree/mod.rs crates/spatial/src/rtree/bulk.rs crates/spatial/src/rtree/node.rs crates/spatial/src/rtree/query.rs crates/spatial/src/rtree/split.rs

/root/repo/target/release/deps/libgvdb_spatial-9df806f173e052e7.rlib: crates/spatial/src/lib.rs crates/spatial/src/geom.rs crates/spatial/src/morton.rs crates/spatial/src/rtree/mod.rs crates/spatial/src/rtree/bulk.rs crates/spatial/src/rtree/node.rs crates/spatial/src/rtree/query.rs crates/spatial/src/rtree/split.rs

/root/repo/target/release/deps/libgvdb_spatial-9df806f173e052e7.rmeta: crates/spatial/src/lib.rs crates/spatial/src/geom.rs crates/spatial/src/morton.rs crates/spatial/src/rtree/mod.rs crates/spatial/src/rtree/bulk.rs crates/spatial/src/rtree/node.rs crates/spatial/src/rtree/query.rs crates/spatial/src/rtree/split.rs

crates/spatial/src/lib.rs:
crates/spatial/src/geom.rs:
crates/spatial/src/morton.rs:
crates/spatial/src/rtree/mod.rs:
crates/spatial/src/rtree/bulk.rs:
crates/spatial/src/rtree/node.rs:
crates/spatial/src/rtree/query.rs:
crates/spatial/src/rtree/split.rs:
