/root/repo/target/release/deps/graphvizdb-8ecd2c31959bc263.d: src/lib.rs

/root/repo/target/release/deps/libgraphvizdb-8ecd2c31959bc263.rlib: src/lib.rs

/root/repo/target/release/deps/libgraphvizdb-8ecd2c31959bc263.rmeta: src/lib.rs

src/lib.rs:
