/root/repo/target/release/deps/gvdb_storage-541e4f45cf1675b0.d: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/db.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/pager.rs crates/storage/src/record.rs crates/storage/src/spatial_index.rs crates/storage/src/table.rs crates/storage/src/trie.rs crates/storage/src/wal.rs

/root/repo/target/release/deps/libgvdb_storage-541e4f45cf1675b0.rlib: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/db.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/pager.rs crates/storage/src/record.rs crates/storage/src/spatial_index.rs crates/storage/src/table.rs crates/storage/src/trie.rs crates/storage/src/wal.rs

/root/repo/target/release/deps/libgvdb_storage-541e4f45cf1675b0.rmeta: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/db.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/pager.rs crates/storage/src/record.rs crates/storage/src/spatial_index.rs crates/storage/src/table.rs crates/storage/src/trie.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/btree.rs:
crates/storage/src/buffer.rs:
crates/storage/src/catalog.rs:
crates/storage/src/db.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
crates/storage/src/pager.rs:
crates/storage/src/record.rs:
crates/storage/src/spatial_index.rs:
crates/storage/src/table.rs:
crates/storage/src/trie.rs:
crates/storage/src/wal.rs:
