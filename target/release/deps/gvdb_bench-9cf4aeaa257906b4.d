/root/repo/target/release/deps/gvdb_bench-9cf4aeaa257906b4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgvdb_bench-9cf4aeaa257906b4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgvdb_bench-9cf4aeaa257906b4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
