/root/repo/target/release/deps/ablation_layout-db65408e38ad9bea.d: crates/bench/src/bin/ablation_layout.rs

/root/repo/target/release/deps/ablation_layout-db65408e38ad9bea: crates/bench/src/bin/ablation_layout.rs

crates/bench/src/bin/ablation_layout.rs:
