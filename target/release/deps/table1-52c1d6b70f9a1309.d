/root/repo/target/release/deps/table1-52c1d6b70f9a1309.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-52c1d6b70f9a1309: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
