/root/repo/target/release/deps/preprocess_parallel-7ab36cfdcd799a84.d: crates/bench/benches/preprocess_parallel.rs

/root/repo/target/release/deps/preprocess_parallel-7ab36cfdcd799a84: crates/bench/benches/preprocess_parallel.rs

crates/bench/benches/preprocess_parallel.rs:
