/root/repo/target/release/deps/rand-35e99f0716f614a7.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-35e99f0716f614a7.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-35e99f0716f614a7.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
