/root/repo/target/release/deps/gvdb-b603b113b94ee150.d: src/bin/gvdb.rs

/root/repo/target/release/deps/gvdb-b603b113b94ee150: src/bin/gvdb.rs

src/bin/gvdb.rs:
