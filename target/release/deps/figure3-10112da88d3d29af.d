/root/repo/target/release/deps/figure3-10112da88d3d29af.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-10112da88d3d29af: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
