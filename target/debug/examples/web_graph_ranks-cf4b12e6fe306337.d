/root/repo/target/debug/examples/web_graph_ranks-cf4b12e6fe306337.d: examples/web_graph_ranks.rs

/root/repo/target/debug/examples/web_graph_ranks-cf4b12e6fe306337: examples/web_graph_ranks.rs

examples/web_graph_ranks.rs:
