/root/repo/target/debug/examples/citation_explorer-7810c2f85f646fd5.d: examples/citation_explorer.rs

/root/repo/target/debug/examples/citation_explorer-7810c2f85f646fd5: examples/citation_explorer.rs

examples/citation_explorer.rs:
