/root/repo/target/debug/examples/citation_explorer-83280b1fa4d6e5f8.d: examples/citation_explorer.rs

/root/repo/target/debug/examples/citation_explorer-83280b1fa4d6e5f8: examples/citation_explorer.rs

examples/citation_explorer.rs:
