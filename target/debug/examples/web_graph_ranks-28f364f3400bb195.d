/root/repo/target/debug/examples/web_graph_ranks-28f364f3400bb195.d: examples/web_graph_ranks.rs Cargo.toml

/root/repo/target/debug/examples/libweb_graph_ranks-28f364f3400bb195.rmeta: examples/web_graph_ranks.rs Cargo.toml

examples/web_graph_ranks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
