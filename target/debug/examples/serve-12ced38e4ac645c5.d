/root/repo/target/debug/examples/serve-12ced38e4ac645c5.d: examples/serve.rs

/root/repo/target/debug/examples/serve-12ced38e4ac645c5: examples/serve.rs

examples/serve.rs:
