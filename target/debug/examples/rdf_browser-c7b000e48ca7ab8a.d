/root/repo/target/debug/examples/rdf_browser-c7b000e48ca7ab8a.d: examples/rdf_browser.rs

/root/repo/target/debug/examples/rdf_browser-c7b000e48ca7ab8a: examples/rdf_browser.rs

examples/rdf_browser.rs:
