/root/repo/target/debug/examples/rdf_browser-e6ff98d5a8343cd2.d: examples/rdf_browser.rs

/root/repo/target/debug/examples/rdf_browser-e6ff98d5a8343cd2: examples/rdf_browser.rs

examples/rdf_browser.rs:
