/root/repo/target/debug/examples/quickstart-1ad75e4693e059ec.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1ad75e4693e059ec: examples/quickstart.rs

examples/quickstart.rs:
