/root/repo/target/debug/examples/serve-0db355b0faa173f1.d: examples/serve.rs

/root/repo/target/debug/examples/serve-0db355b0faa173f1: examples/serve.rs

examples/serve.rs:
