/root/repo/target/debug/examples/web_graph_ranks-84d3369cc281d9bb.d: examples/web_graph_ranks.rs

/root/repo/target/debug/examples/web_graph_ranks-84d3369cc281d9bb: examples/web_graph_ranks.rs

examples/web_graph_ranks.rs:
