/root/repo/target/debug/examples/quickstart-e608ff7bac8c555f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e608ff7bac8c555f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
