/root/repo/target/debug/examples/rdf_browser-c2b69952044dc5aa.d: examples/rdf_browser.rs Cargo.toml

/root/repo/target/debug/examples/librdf_browser-c2b69952044dc5aa.rmeta: examples/rdf_browser.rs Cargo.toml

examples/rdf_browser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
