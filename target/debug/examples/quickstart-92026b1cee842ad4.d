/root/repo/target/debug/examples/quickstart-92026b1cee842ad4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-92026b1cee842ad4: examples/quickstart.rs

examples/quickstart.rs:
