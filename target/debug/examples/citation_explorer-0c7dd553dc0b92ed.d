/root/repo/target/debug/examples/citation_explorer-0c7dd553dc0b92ed.d: examples/citation_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcitation_explorer-0c7dd553dc0b92ed.rmeta: examples/citation_explorer.rs Cargo.toml

examples/citation_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
