/root/repo/target/debug/examples/serve-7ed588576f8f2a39.d: examples/serve.rs Cargo.toml

/root/repo/target/debug/examples/libserve-7ed588576f8f2a39.rmeta: examples/serve.rs Cargo.toml

examples/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
