/root/repo/target/debug/deps/proptest_layout-e84968bdbf71c4d9.d: crates/layout/tests/proptest_layout.rs

/root/repo/target/debug/deps/proptest_layout-e84968bdbf71c4d9: crates/layout/tests/proptest_layout.rs

crates/layout/tests/proptest_layout.rs:
