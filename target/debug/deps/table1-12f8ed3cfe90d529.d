/root/repo/target/debug/deps/table1-12f8ed3cfe90d529.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-12f8ed3cfe90d529.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
