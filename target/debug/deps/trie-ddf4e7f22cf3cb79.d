/root/repo/target/debug/deps/trie-ddf4e7f22cf3cb79.d: crates/bench/benches/trie.rs

/root/repo/target/debug/deps/trie-ddf4e7f22cf3cb79: crates/bench/benches/trie.rs

crates/bench/benches/trie.rs:
