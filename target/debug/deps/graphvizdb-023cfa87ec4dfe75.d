/root/repo/target/debug/deps/graphvizdb-023cfa87ec4dfe75.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgraphvizdb-023cfa87ec4dfe75.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
