/root/repo/target/debug/deps/crash_recovery-62e476db218e5b38.d: crates/storage/tests/crash_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_recovery-62e476db218e5b38.rmeta: crates/storage/tests/crash_recovery.rs Cargo.toml

crates/storage/tests/crash_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
