/root/repo/target/debug/deps/gvdb_abstract-39fea5d51dff251b.d: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs Cargo.toml

/root/repo/target/debug/deps/libgvdb_abstract-39fea5d51dff251b.rmeta: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs Cargo.toml

crates/abstraction/src/lib.rs:
crates/abstraction/src/filter.rs:
crates/abstraction/src/hierarchy.rs:
crates/abstraction/src/rank.rs:
crates/abstraction/src/summarize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
