/root/repo/target/debug/deps/gvdb_spatial-4e56ef79c9d6410b.d: crates/spatial/src/lib.rs crates/spatial/src/geom.rs crates/spatial/src/morton.rs crates/spatial/src/rtree/mod.rs crates/spatial/src/rtree/bulk.rs crates/spatial/src/rtree/node.rs crates/spatial/src/rtree/query.rs crates/spatial/src/rtree/split.rs

/root/repo/target/debug/deps/gvdb_spatial-4e56ef79c9d6410b: crates/spatial/src/lib.rs crates/spatial/src/geom.rs crates/spatial/src/morton.rs crates/spatial/src/rtree/mod.rs crates/spatial/src/rtree/bulk.rs crates/spatial/src/rtree/node.rs crates/spatial/src/rtree/query.rs crates/spatial/src/rtree/split.rs

crates/spatial/src/lib.rs:
crates/spatial/src/geom.rs:
crates/spatial/src/morton.rs:
crates/spatial/src/rtree/mod.rs:
crates/spatial/src/rtree/bulk.rs:
crates/spatial/src/rtree/node.rs:
crates/spatial/src/rtree/query.rs:
crates/spatial/src/rtree/split.rs:
