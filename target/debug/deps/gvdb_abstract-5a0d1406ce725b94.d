/root/repo/target/debug/deps/gvdb_abstract-5a0d1406ce725b94.d: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs

/root/repo/target/debug/deps/libgvdb_abstract-5a0d1406ce725b94.rmeta: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs

crates/abstraction/src/lib.rs:
crates/abstraction/src/filter.rs:
crates/abstraction/src/hierarchy.rs:
crates/abstraction/src/rank.rs:
crates/abstraction/src/summarize.rs:
