/root/repo/target/debug/deps/proptest_partition-45e4ba1eca601d32.d: crates/partition/tests/proptest_partition.rs

/root/repo/target/debug/deps/proptest_partition-45e4ba1eca601d32: crates/partition/tests/proptest_partition.rs

crates/partition/tests/proptest_partition.rs:
