/root/repo/target/debug/deps/ablation_layout-679899f1287760b8.d: crates/bench/src/bin/ablation_layout.rs

/root/repo/target/debug/deps/libablation_layout-679899f1287760b8.rmeta: crates/bench/src/bin/ablation_layout.rs

crates/bench/src/bin/ablation_layout.rs:
