/root/repo/target/debug/deps/proptest_storage-79fedcba7295cb8d.d: crates/storage/tests/proptest_storage.rs

/root/repo/target/debug/deps/proptest_storage-79fedcba7295cb8d: crates/storage/tests/proptest_storage.rs

crates/storage/tests/proptest_storage.rs:
