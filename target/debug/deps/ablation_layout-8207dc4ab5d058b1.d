/root/repo/target/debug/deps/ablation_layout-8207dc4ab5d058b1.d: crates/bench/src/bin/ablation_layout.rs

/root/repo/target/debug/deps/ablation_layout-8207dc4ab5d058b1: crates/bench/src/bin/ablation_layout.rs

crates/bench/src/bin/ablation_layout.rs:
