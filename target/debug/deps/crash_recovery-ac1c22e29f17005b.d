/root/repo/target/debug/deps/crash_recovery-ac1c22e29f17005b.d: crates/storage/tests/crash_recovery.rs

/root/repo/target/debug/deps/crash_recovery-ac1c22e29f17005b: crates/storage/tests/crash_recovery.rs

crates/storage/tests/crash_recovery.rs:
