/root/repo/target/debug/deps/proptest_storage-cd5cf7be7d9cf793.d: crates/storage/tests/proptest_storage.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_storage-cd5cf7be7d9cf793.rmeta: crates/storage/tests/proptest_storage.rs Cargo.toml

crates/storage/tests/proptest_storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
