/root/repo/target/debug/deps/ablation_layout-5b4b8fc7d934e6d9.d: crates/bench/src/bin/ablation_layout.rs

/root/repo/target/debug/deps/ablation_layout-5b4b8fc7d934e6d9: crates/bench/src/bin/ablation_layout.rs

crates/bench/src/bin/ablation_layout.rs:
