/root/repo/target/debug/deps/serde-bb17da705c06d873.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-bb17da705c06d873.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
