/root/repo/target/debug/deps/concurrency-e375cf41c57e19aa.d: tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-e375cf41c57e19aa.rmeta: tests/concurrency.rs Cargo.toml

tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
