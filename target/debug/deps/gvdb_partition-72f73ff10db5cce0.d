/root/repo/target/debug/deps/gvdb_partition-72f73ff10db5cce0.d: crates/partition/src/lib.rs crates/partition/src/coarsen.rs crates/partition/src/initial.rs crates/partition/src/kway.rs crates/partition/src/matching.rs crates/partition/src/quality.rs crates/partition/src/refine.rs crates/partition/src/wgraph.rs

/root/repo/target/debug/deps/libgvdb_partition-72f73ff10db5cce0.rmeta: crates/partition/src/lib.rs crates/partition/src/coarsen.rs crates/partition/src/initial.rs crates/partition/src/kway.rs crates/partition/src/matching.rs crates/partition/src/quality.rs crates/partition/src/refine.rs crates/partition/src/wgraph.rs

crates/partition/src/lib.rs:
crates/partition/src/coarsen.rs:
crates/partition/src/initial.rs:
crates/partition/src/kway.rs:
crates/partition/src/matching.rs:
crates/partition/src/quality.rs:
crates/partition/src/refine.rs:
crates/partition/src/wgraph.rs:
