/root/repo/target/debug/deps/figure3-feb4b456dc3e595e.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-feb4b456dc3e595e: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
