/root/repo/target/debug/deps/gvdb_layout-134fe7dce1397875.d: crates/layout/src/lib.rs crates/layout/src/bounds.rs crates/layout/src/circular.rs crates/layout/src/force.rs crates/layout/src/grid.rs crates/layout/src/hierarchical.rs crates/layout/src/parallel.rs crates/layout/src/random.rs crates/layout/src/star.rs

/root/repo/target/debug/deps/gvdb_layout-134fe7dce1397875: crates/layout/src/lib.rs crates/layout/src/bounds.rs crates/layout/src/circular.rs crates/layout/src/force.rs crates/layout/src/grid.rs crates/layout/src/hierarchical.rs crates/layout/src/parallel.rs crates/layout/src/random.rs crates/layout/src/star.rs

crates/layout/src/lib.rs:
crates/layout/src/bounds.rs:
crates/layout/src/circular.rs:
crates/layout/src/force.rs:
crates/layout/src/grid.rs:
crates/layout/src/hierarchical.rs:
crates/layout/src/parallel.rs:
crates/layout/src/random.rs:
crates/layout/src/star.rs:
