/root/repo/target/debug/deps/gvdb_spatial-4461ad90cd19b92f.d: crates/spatial/src/lib.rs crates/spatial/src/geom.rs crates/spatial/src/morton.rs crates/spatial/src/rtree/mod.rs crates/spatial/src/rtree/bulk.rs crates/spatial/src/rtree/node.rs crates/spatial/src/rtree/query.rs crates/spatial/src/rtree/split.rs

/root/repo/target/debug/deps/libgvdb_spatial-4461ad90cd19b92f.rlib: crates/spatial/src/lib.rs crates/spatial/src/geom.rs crates/spatial/src/morton.rs crates/spatial/src/rtree/mod.rs crates/spatial/src/rtree/bulk.rs crates/spatial/src/rtree/node.rs crates/spatial/src/rtree/query.rs crates/spatial/src/rtree/split.rs

/root/repo/target/debug/deps/libgvdb_spatial-4461ad90cd19b92f.rmeta: crates/spatial/src/lib.rs crates/spatial/src/geom.rs crates/spatial/src/morton.rs crates/spatial/src/rtree/mod.rs crates/spatial/src/rtree/bulk.rs crates/spatial/src/rtree/node.rs crates/spatial/src/rtree/query.rs crates/spatial/src/rtree/split.rs

crates/spatial/src/lib.rs:
crates/spatial/src/geom.rs:
crates/spatial/src/morton.rs:
crates/spatial/src/rtree/mod.rs:
crates/spatial/src/rtree/bulk.rs:
crates/spatial/src/rtree/node.rs:
crates/spatial/src/rtree/query.rs:
crates/spatial/src/rtree/split.rs:
