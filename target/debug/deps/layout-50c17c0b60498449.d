/root/repo/target/debug/deps/layout-50c17c0b60498449.d: crates/bench/benches/layout.rs Cargo.toml

/root/repo/target/debug/deps/liblayout-50c17c0b60498449.rmeta: crates/bench/benches/layout.rs Cargo.toml

crates/bench/benches/layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
