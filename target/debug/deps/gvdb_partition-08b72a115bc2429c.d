/root/repo/target/debug/deps/gvdb_partition-08b72a115bc2429c.d: crates/partition/src/lib.rs crates/partition/src/coarsen.rs crates/partition/src/initial.rs crates/partition/src/kway.rs crates/partition/src/matching.rs crates/partition/src/quality.rs crates/partition/src/refine.rs crates/partition/src/wgraph.rs Cargo.toml

/root/repo/target/debug/deps/libgvdb_partition-08b72a115bc2429c.rmeta: crates/partition/src/lib.rs crates/partition/src/coarsen.rs crates/partition/src/initial.rs crates/partition/src/kway.rs crates/partition/src/matching.rs crates/partition/src/quality.rs crates/partition/src/refine.rs crates/partition/src/wgraph.rs Cargo.toml

crates/partition/src/lib.rs:
crates/partition/src/coarsen.rs:
crates/partition/src/initial.rs:
crates/partition/src/kway.rs:
crates/partition/src/matching.rs:
crates/partition/src/quality.rs:
crates/partition/src/refine.rs:
crates/partition/src/wgraph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
