/root/repo/target/debug/deps/parking_lot-fb38ccd189626a07.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-fb38ccd189626a07.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
