/root/repo/target/debug/deps/criterion-8cf0117caaa53a68.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-8cf0117caaa53a68.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
