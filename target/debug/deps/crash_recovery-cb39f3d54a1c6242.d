/root/repo/target/debug/deps/crash_recovery-cb39f3d54a1c6242.d: crates/storage/tests/crash_recovery.rs

/root/repo/target/debug/deps/crash_recovery-cb39f3d54a1c6242: crates/storage/tests/crash_recovery.rs

crates/storage/tests/crash_recovery.rs:
