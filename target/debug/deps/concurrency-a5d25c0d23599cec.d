/root/repo/target/debug/deps/concurrency-a5d25c0d23599cec.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-a5d25c0d23599cec: tests/concurrency.rs

tests/concurrency.rs:
