/root/repo/target/debug/deps/gvdb-d2cd609036bf5788.d: src/bin/gvdb.rs

/root/repo/target/debug/deps/gvdb-d2cd609036bf5788: src/bin/gvdb.rs

src/bin/gvdb.rs:
