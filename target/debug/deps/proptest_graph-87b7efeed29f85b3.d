/root/repo/target/debug/deps/proptest_graph-87b7efeed29f85b3.d: crates/graph/tests/proptest_graph.rs

/root/repo/target/debug/deps/proptest_graph-87b7efeed29f85b3: crates/graph/tests/proptest_graph.rs

crates/graph/tests/proptest_graph.rs:
