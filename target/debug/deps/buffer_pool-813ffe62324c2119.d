/root/repo/target/debug/deps/buffer_pool-813ffe62324c2119.d: crates/bench/benches/buffer_pool.rs Cargo.toml

/root/repo/target/debug/deps/libbuffer_pool-813ffe62324c2119.rmeta: crates/bench/benches/buffer_pool.rs Cargo.toml

crates/bench/benches/buffer_pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
