/root/repo/target/debug/deps/gvdb-1be29b5c5b27d1c4.d: src/bin/gvdb.rs

/root/repo/target/debug/deps/gvdb-1be29b5c5b27d1c4: src/bin/gvdb.rs

src/bin/gvdb.rs:
