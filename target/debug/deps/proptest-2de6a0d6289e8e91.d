/root/repo/target/debug/deps/proptest-2de6a0d6289e8e91.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2de6a0d6289e8e91.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
