/root/repo/target/debug/deps/property_tests-cd624c8361db93a8.d: tests/property_tests.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_tests-cd624c8361db93a8.rmeta: tests/property_tests.rs Cargo.toml

tests/property_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
