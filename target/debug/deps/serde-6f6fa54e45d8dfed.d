/root/repo/target/debug/deps/serde-6f6fa54e45d8dfed.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-6f6fa54e45d8dfed.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
