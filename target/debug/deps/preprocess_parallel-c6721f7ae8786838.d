/root/repo/target/debug/deps/preprocess_parallel-c6721f7ae8786838.d: crates/bench/benches/preprocess_parallel.rs

/root/repo/target/debug/deps/preprocess_parallel-c6721f7ae8786838: crates/bench/benches/preprocess_parallel.rs

crates/bench/benches/preprocess_parallel.rs:
