/root/repo/target/debug/deps/figure3-405e2b18eee48171.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/libfigure3-405e2b18eee48171.rmeta: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
