/root/repo/target/debug/deps/gvdb_bench-9be343f99f939a95.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgvdb_bench-9be343f99f939a95.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgvdb_bench-9be343f99f939a95.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
