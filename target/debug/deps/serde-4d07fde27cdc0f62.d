/root/repo/target/debug/deps/serde-4d07fde27cdc0f62.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-4d07fde27cdc0f62.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-4d07fde27cdc0f62.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
