/root/repo/target/debug/deps/figure3-6dde861dc43d6749.d: crates/bench/src/bin/figure3.rs Cargo.toml

/root/repo/target/debug/deps/libfigure3-6dde861dc43d6749.rmeta: crates/bench/src/bin/figure3.rs Cargo.toml

crates/bench/src/bin/figure3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
