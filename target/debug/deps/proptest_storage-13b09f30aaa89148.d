/root/repo/target/debug/deps/proptest_storage-13b09f30aaa89148.d: crates/storage/tests/proptest_storage.rs

/root/repo/target/debug/deps/proptest_storage-13b09f30aaa89148: crates/storage/tests/proptest_storage.rs

crates/storage/tests/proptest_storage.rs:
