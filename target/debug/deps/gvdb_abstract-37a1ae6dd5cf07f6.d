/root/repo/target/debug/deps/gvdb_abstract-37a1ae6dd5cf07f6.d: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs

/root/repo/target/debug/deps/gvdb_abstract-37a1ae6dd5cf07f6: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs

crates/abstraction/src/lib.rs:
crates/abstraction/src/filter.rs:
crates/abstraction/src/hierarchy.rs:
crates/abstraction/src/rank.rs:
crates/abstraction/src/summarize.rs:
