/root/repo/target/debug/deps/cache_hit-234bfcbe9877818f.d: crates/bench/benches/cache_hit.rs

/root/repo/target/debug/deps/cache_hit-234bfcbe9877818f: crates/bench/benches/cache_hit.rs

crates/bench/benches/cache_hit.rs:
