/root/repo/target/debug/deps/graphvizdb-b87ff567131f03e9.d: src/lib.rs

/root/repo/target/debug/deps/libgraphvizdb-b87ff567131f03e9.rlib: src/lib.rs

/root/repo/target/debug/deps/libgraphvizdb-b87ff567131f03e9.rmeta: src/lib.rs

src/lib.rs:
