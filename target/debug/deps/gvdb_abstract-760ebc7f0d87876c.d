/root/repo/target/debug/deps/gvdb_abstract-760ebc7f0d87876c.d: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs

/root/repo/target/debug/deps/gvdb_abstract-760ebc7f0d87876c: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs

crates/abstraction/src/lib.rs:
crates/abstraction/src/filter.rs:
crates/abstraction/src/hierarchy.rs:
crates/abstraction/src/rank.rs:
crates/abstraction/src/summarize.rs:
