/root/repo/target/debug/deps/cache_hit-dbed5e299c93e5ab.d: crates/bench/benches/cache_hit.rs

/root/repo/target/debug/deps/cache_hit-dbed5e299c93e5ab: crates/bench/benches/cache_hit.rs

crates/bench/benches/cache_hit.rs:
