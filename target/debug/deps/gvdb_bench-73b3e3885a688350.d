/root/repo/target/debug/deps/gvdb_bench-73b3e3885a688350.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgvdb_bench-73b3e3885a688350.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
