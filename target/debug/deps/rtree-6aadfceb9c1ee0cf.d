/root/repo/target/debug/deps/rtree-6aadfceb9c1ee0cf.d: crates/bench/benches/rtree.rs

/root/repo/target/debug/deps/rtree-6aadfceb9c1ee0cf: crates/bench/benches/rtree.rs

crates/bench/benches/rtree.rs:
