/root/repo/target/debug/deps/gvdb_core-4e36ae81fd4a1de9.d: crates/core/src/lib.rs crates/core/src/birdview.rs crates/core/src/cache.rs crates/core/src/client.rs crates/core/src/json.rs crates/core/src/organizer.rs crates/core/src/preprocess.rs crates/core/src/query.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/workspace.rs

/root/repo/target/debug/deps/libgvdb_core-4e36ae81fd4a1de9.rlib: crates/core/src/lib.rs crates/core/src/birdview.rs crates/core/src/cache.rs crates/core/src/client.rs crates/core/src/json.rs crates/core/src/organizer.rs crates/core/src/preprocess.rs crates/core/src/query.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/workspace.rs

/root/repo/target/debug/deps/libgvdb_core-4e36ae81fd4a1de9.rmeta: crates/core/src/lib.rs crates/core/src/birdview.rs crates/core/src/cache.rs crates/core/src/client.rs crates/core/src/json.rs crates/core/src/organizer.rs crates/core/src/preprocess.rs crates/core/src/query.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/birdview.rs:
crates/core/src/cache.rs:
crates/core/src/client.rs:
crates/core/src/json.rs:
crates/core/src/organizer.rs:
crates/core/src/preprocess.rs:
crates/core/src/query.rs:
crates/core/src/session.rs:
crates/core/src/stats.rs:
crates/core/src/workspace.rs:
