/root/repo/target/debug/deps/parking_lot-c780d1aa83a7de6b.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-c780d1aa83a7de6b: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
