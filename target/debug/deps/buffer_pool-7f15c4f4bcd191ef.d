/root/repo/target/debug/deps/buffer_pool-7f15c4f4bcd191ef.d: crates/bench/benches/buffer_pool.rs

/root/repo/target/debug/deps/buffer_pool-7f15c4f4bcd191ef: crates/bench/benches/buffer_pool.rs

crates/bench/benches/buffer_pool.rs:
