/root/repo/target/debug/deps/graphvizdb-618ea750dadaad1e.d: src/lib.rs

/root/repo/target/debug/deps/libgraphvizdb-618ea750dadaad1e.rmeta: src/lib.rs

src/lib.rs:
