/root/repo/target/debug/deps/serde-6bc000f8ba77f107.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6bc000f8ba77f107.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6bc000f8ba77f107.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
