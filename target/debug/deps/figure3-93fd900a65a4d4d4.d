/root/repo/target/debug/deps/figure3-93fd900a65a4d4d4.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-93fd900a65a4d4d4: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
