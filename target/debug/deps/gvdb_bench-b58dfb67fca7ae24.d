/root/repo/target/debug/deps/gvdb_bench-b58dfb67fca7ae24.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgvdb_bench-b58dfb67fca7ae24.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
