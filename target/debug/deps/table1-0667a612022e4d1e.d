/root/repo/target/debug/deps/table1-0667a612022e4d1e.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-0667a612022e4d1e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
