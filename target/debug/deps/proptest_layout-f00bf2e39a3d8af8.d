/root/repo/target/debug/deps/proptest_layout-f00bf2e39a3d8af8.d: crates/layout/tests/proptest_layout.rs

/root/repo/target/debug/deps/proptest_layout-f00bf2e39a3d8af8: crates/layout/tests/proptest_layout.rs

crates/layout/tests/proptest_layout.rs:
