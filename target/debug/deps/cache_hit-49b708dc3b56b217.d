/root/repo/target/debug/deps/cache_hit-49b708dc3b56b217.d: crates/bench/benches/cache_hit.rs Cargo.toml

/root/repo/target/debug/deps/libcache_hit-49b708dc3b56b217.rmeta: crates/bench/benches/cache_hit.rs Cargo.toml

crates/bench/benches/cache_hit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
