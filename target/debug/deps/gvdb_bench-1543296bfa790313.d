/root/repo/target/debug/deps/gvdb_bench-1543296bfa790313.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgvdb_bench-1543296bfa790313.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
