/root/repo/target/debug/deps/window_query-cc4e60a4d69a2507.d: crates/bench/benches/window_query.rs Cargo.toml

/root/repo/target/debug/deps/libwindow_query-cc4e60a4d69a2507.rmeta: crates/bench/benches/window_query.rs Cargo.toml

crates/bench/benches/window_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
