/root/repo/target/debug/deps/end_to_end-4b2b12d727700ea9.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-4b2b12d727700ea9: tests/end_to_end.rs

tests/end_to_end.rs:
