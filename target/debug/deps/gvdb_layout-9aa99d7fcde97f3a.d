/root/repo/target/debug/deps/gvdb_layout-9aa99d7fcde97f3a.d: crates/layout/src/lib.rs crates/layout/src/bounds.rs crates/layout/src/circular.rs crates/layout/src/force.rs crates/layout/src/grid.rs crates/layout/src/hierarchical.rs crates/layout/src/parallel.rs crates/layout/src/random.rs crates/layout/src/star.rs

/root/repo/target/debug/deps/libgvdb_layout-9aa99d7fcde97f3a.rlib: crates/layout/src/lib.rs crates/layout/src/bounds.rs crates/layout/src/circular.rs crates/layout/src/force.rs crates/layout/src/grid.rs crates/layout/src/hierarchical.rs crates/layout/src/parallel.rs crates/layout/src/random.rs crates/layout/src/star.rs

/root/repo/target/debug/deps/libgvdb_layout-9aa99d7fcde97f3a.rmeta: crates/layout/src/lib.rs crates/layout/src/bounds.rs crates/layout/src/circular.rs crates/layout/src/force.rs crates/layout/src/grid.rs crates/layout/src/hierarchical.rs crates/layout/src/parallel.rs crates/layout/src/random.rs crates/layout/src/star.rs

crates/layout/src/lib.rs:
crates/layout/src/bounds.rs:
crates/layout/src/circular.rs:
crates/layout/src/force.rs:
crates/layout/src/grid.rs:
crates/layout/src/hierarchical.rs:
crates/layout/src/parallel.rs:
crates/layout/src/random.rs:
crates/layout/src/star.rs:
