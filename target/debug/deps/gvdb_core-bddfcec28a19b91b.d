/root/repo/target/debug/deps/gvdb_core-bddfcec28a19b91b.d: crates/core/src/lib.rs crates/core/src/birdview.rs crates/core/src/cache.rs crates/core/src/client.rs crates/core/src/json.rs crates/core/src/organizer.rs crates/core/src/preprocess.rs crates/core/src/query.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/workspace.rs

/root/repo/target/debug/deps/gvdb_core-bddfcec28a19b91b: crates/core/src/lib.rs crates/core/src/birdview.rs crates/core/src/cache.rs crates/core/src/client.rs crates/core/src/json.rs crates/core/src/organizer.rs crates/core/src/preprocess.rs crates/core/src/query.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/workspace.rs

crates/core/src/lib.rs:
crates/core/src/birdview.rs:
crates/core/src/cache.rs:
crates/core/src/client.rs:
crates/core/src/json.rs:
crates/core/src/organizer.rs:
crates/core/src/preprocess.rs:
crates/core/src/query.rs:
crates/core/src/session.rs:
crates/core/src/stats.rs:
crates/core/src/workspace.rs:
