/root/repo/target/debug/deps/gvdb_bench-38d1de49e716a711.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/gvdb_bench-38d1de49e716a711: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
