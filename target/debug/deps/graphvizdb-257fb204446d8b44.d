/root/repo/target/debug/deps/graphvizdb-257fb204446d8b44.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgraphvizdb-257fb204446d8b44.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
