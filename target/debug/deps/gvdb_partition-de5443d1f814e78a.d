/root/repo/target/debug/deps/gvdb_partition-de5443d1f814e78a.d: crates/partition/src/lib.rs crates/partition/src/coarsen.rs crates/partition/src/initial.rs crates/partition/src/kway.rs crates/partition/src/matching.rs crates/partition/src/quality.rs crates/partition/src/refine.rs crates/partition/src/wgraph.rs Cargo.toml

/root/repo/target/debug/deps/libgvdb_partition-de5443d1f814e78a.rmeta: crates/partition/src/lib.rs crates/partition/src/coarsen.rs crates/partition/src/initial.rs crates/partition/src/kway.rs crates/partition/src/matching.rs crates/partition/src/quality.rs crates/partition/src/refine.rs crates/partition/src/wgraph.rs Cargo.toml

crates/partition/src/lib.rs:
crates/partition/src/coarsen.rs:
crates/partition/src/initial.rs:
crates/partition/src/kway.rs:
crates/partition/src/matching.rs:
crates/partition/src/quality.rs:
crates/partition/src/refine.rs:
crates/partition/src/wgraph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
