/root/repo/target/debug/deps/gvdb-36aafe68c9b0731e.d: src/bin/gvdb.rs Cargo.toml

/root/repo/target/debug/deps/libgvdb-36aafe68c9b0731e.rmeta: src/bin/gvdb.rs Cargo.toml

src/bin/gvdb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
