/root/repo/target/debug/deps/table1-5e3790e1277468c4.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5e3790e1277468c4: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
