/root/repo/target/debug/deps/property_tests-40d3b3e4bc721ae9.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-40d3b3e4bc721ae9: tests/property_tests.rs

tests/property_tests.rs:
