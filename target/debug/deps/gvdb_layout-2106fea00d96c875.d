/root/repo/target/debug/deps/gvdb_layout-2106fea00d96c875.d: crates/layout/src/lib.rs crates/layout/src/bounds.rs crates/layout/src/circular.rs crates/layout/src/force.rs crates/layout/src/grid.rs crates/layout/src/hierarchical.rs crates/layout/src/parallel.rs crates/layout/src/random.rs crates/layout/src/star.rs Cargo.toml

/root/repo/target/debug/deps/libgvdb_layout-2106fea00d96c875.rmeta: crates/layout/src/lib.rs crates/layout/src/bounds.rs crates/layout/src/circular.rs crates/layout/src/force.rs crates/layout/src/grid.rs crates/layout/src/hierarchical.rs crates/layout/src/parallel.rs crates/layout/src/random.rs crates/layout/src/star.rs Cargo.toml

crates/layout/src/lib.rs:
crates/layout/src/bounds.rs:
crates/layout/src/circular.rs:
crates/layout/src/force.rs:
crates/layout/src/grid.rs:
crates/layout/src/hierarchical.rs:
crates/layout/src/parallel.rs:
crates/layout/src/random.rs:
crates/layout/src/star.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
