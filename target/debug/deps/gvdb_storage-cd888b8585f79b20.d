/root/repo/target/debug/deps/gvdb_storage-cd888b8585f79b20.d: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/db.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/pager.rs crates/storage/src/record.rs crates/storage/src/spatial_index.rs crates/storage/src/table.rs crates/storage/src/trie.rs crates/storage/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libgvdb_storage-cd888b8585f79b20.rmeta: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/db.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/pager.rs crates/storage/src/record.rs crates/storage/src/spatial_index.rs crates/storage/src/table.rs crates/storage/src/trie.rs crates/storage/src/wal.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/btree.rs:
crates/storage/src/buffer.rs:
crates/storage/src/catalog.rs:
crates/storage/src/db.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
crates/storage/src/pager.rs:
crates/storage/src/record.rs:
crates/storage/src/spatial_index.rs:
crates/storage/src/table.rs:
crates/storage/src/trie.rs:
crates/storage/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
