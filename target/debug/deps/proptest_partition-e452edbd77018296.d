/root/repo/target/debug/deps/proptest_partition-e452edbd77018296.d: crates/partition/tests/proptest_partition.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_partition-e452edbd77018296.rmeta: crates/partition/tests/proptest_partition.rs Cargo.toml

crates/partition/tests/proptest_partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
