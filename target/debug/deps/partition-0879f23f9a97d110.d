/root/repo/target/debug/deps/partition-0879f23f9a97d110.d: crates/bench/benches/partition.rs Cargo.toml

/root/repo/target/debug/deps/libpartition-0879f23f9a97d110.rmeta: crates/bench/benches/partition.rs Cargo.toml

crates/bench/benches/partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
