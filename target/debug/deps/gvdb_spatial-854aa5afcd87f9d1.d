/root/repo/target/debug/deps/gvdb_spatial-854aa5afcd87f9d1.d: crates/spatial/src/lib.rs crates/spatial/src/geom.rs crates/spatial/src/morton.rs crates/spatial/src/rtree/mod.rs crates/spatial/src/rtree/bulk.rs crates/spatial/src/rtree/node.rs crates/spatial/src/rtree/query.rs crates/spatial/src/rtree/split.rs Cargo.toml

/root/repo/target/debug/deps/libgvdb_spatial-854aa5afcd87f9d1.rmeta: crates/spatial/src/lib.rs crates/spatial/src/geom.rs crates/spatial/src/morton.rs crates/spatial/src/rtree/mod.rs crates/spatial/src/rtree/bulk.rs crates/spatial/src/rtree/node.rs crates/spatial/src/rtree/query.rs crates/spatial/src/rtree/split.rs Cargo.toml

crates/spatial/src/lib.rs:
crates/spatial/src/geom.rs:
crates/spatial/src/morton.rs:
crates/spatial/src/rtree/mod.rs:
crates/spatial/src/rtree/bulk.rs:
crates/spatial/src/rtree/node.rs:
crates/spatial/src/rtree/query.rs:
crates/spatial/src/rtree/split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
