/root/repo/target/debug/deps/proptest_rtree-f91579a3d25ea536.d: crates/spatial/tests/proptest_rtree.rs

/root/repo/target/debug/deps/proptest_rtree-f91579a3d25ea536: crates/spatial/tests/proptest_rtree.rs

crates/spatial/tests/proptest_rtree.rs:
