/root/repo/target/debug/deps/table1-ef8e29f0f230f4ca.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-ef8e29f0f230f4ca: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
