/root/repo/target/debug/deps/btree-03e6eeee889dd450.d: crates/bench/benches/btree.rs

/root/repo/target/debug/deps/btree-03e6eeee889dd450: crates/bench/benches/btree.rs

crates/bench/benches/btree.rs:
