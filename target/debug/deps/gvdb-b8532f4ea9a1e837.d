/root/repo/target/debug/deps/gvdb-b8532f4ea9a1e837.d: src/bin/gvdb.rs

/root/repo/target/debug/deps/libgvdb-b8532f4ea9a1e837.rmeta: src/bin/gvdb.rs

src/bin/gvdb.rs:
