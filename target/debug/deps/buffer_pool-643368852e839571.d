/root/repo/target/debug/deps/buffer_pool-643368852e839571.d: crates/bench/benches/buffer_pool.rs

/root/repo/target/debug/deps/buffer_pool-643368852e839571: crates/bench/benches/buffer_pool.rs

crates/bench/benches/buffer_pool.rs:
