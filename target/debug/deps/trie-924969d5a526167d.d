/root/repo/target/debug/deps/trie-924969d5a526167d.d: crates/bench/benches/trie.rs Cargo.toml

/root/repo/target/debug/deps/libtrie-924969d5a526167d.rmeta: crates/bench/benches/trie.rs Cargo.toml

crates/bench/benches/trie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
