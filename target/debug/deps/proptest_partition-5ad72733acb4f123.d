/root/repo/target/debug/deps/proptest_partition-5ad72733acb4f123.d: crates/partition/tests/proptest_partition.rs

/root/repo/target/debug/deps/proptest_partition-5ad72733acb4f123: crates/partition/tests/proptest_partition.rs

crates/partition/tests/proptest_partition.rs:
