/root/repo/target/debug/deps/rtree-ccb41e5038b5d369.d: crates/bench/benches/rtree.rs Cargo.toml

/root/repo/target/debug/deps/librtree-ccb41e5038b5d369.rmeta: crates/bench/benches/rtree.rs Cargo.toml

crates/bench/benches/rtree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
