/root/repo/target/debug/deps/partition-44968e1fae4a70b8.d: crates/bench/benches/partition.rs

/root/repo/target/debug/deps/partition-44968e1fae4a70b8: crates/bench/benches/partition.rs

crates/bench/benches/partition.rs:
