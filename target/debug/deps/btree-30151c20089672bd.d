/root/repo/target/debug/deps/btree-30151c20089672bd.d: crates/bench/benches/btree.rs Cargo.toml

/root/repo/target/debug/deps/libbtree-30151c20089672bd.rmeta: crates/bench/benches/btree.rs Cargo.toml

crates/bench/benches/btree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
