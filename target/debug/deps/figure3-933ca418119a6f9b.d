/root/repo/target/debug/deps/figure3-933ca418119a6f9b.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-933ca418119a6f9b: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
