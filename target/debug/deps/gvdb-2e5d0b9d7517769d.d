/root/repo/target/debug/deps/gvdb-2e5d0b9d7517769d.d: src/bin/gvdb.rs

/root/repo/target/debug/deps/gvdb-2e5d0b9d7517769d: src/bin/gvdb.rs

src/bin/gvdb.rs:
