/root/repo/target/debug/deps/serde-e10235b8e2d32524.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-e10235b8e2d32524.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
