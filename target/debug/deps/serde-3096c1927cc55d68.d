/root/repo/target/debug/deps/serde-3096c1927cc55d68.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-3096c1927cc55d68: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
