/root/repo/target/debug/deps/graphvizdb-39b31c2dba8ee6e2.d: src/lib.rs

/root/repo/target/debug/deps/graphvizdb-39b31c2dba8ee6e2: src/lib.rs

src/lib.rs:
