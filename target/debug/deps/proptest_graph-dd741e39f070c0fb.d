/root/repo/target/debug/deps/proptest_graph-dd741e39f070c0fb.d: crates/graph/tests/proptest_graph.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_graph-dd741e39f070c0fb.rmeta: crates/graph/tests/proptest_graph.rs Cargo.toml

crates/graph/tests/proptest_graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
