/root/repo/target/debug/deps/layout-4d6ddb854d372d5d.d: crates/bench/benches/layout.rs

/root/repo/target/debug/deps/layout-4d6ddb854d372d5d: crates/bench/benches/layout.rs

crates/bench/benches/layout.rs:
