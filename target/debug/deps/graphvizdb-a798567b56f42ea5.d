/root/repo/target/debug/deps/graphvizdb-a798567b56f42ea5.d: src/lib.rs

/root/repo/target/debug/deps/libgraphvizdb-a798567b56f42ea5.rlib: src/lib.rs

/root/repo/target/debug/deps/libgraphvizdb-a798567b56f42ea5.rmeta: src/lib.rs

src/lib.rs:
