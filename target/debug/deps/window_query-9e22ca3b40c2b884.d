/root/repo/target/debug/deps/window_query-9e22ca3b40c2b884.d: crates/bench/benches/window_query.rs

/root/repo/target/debug/deps/window_query-9e22ca3b40c2b884: crates/bench/benches/window_query.rs

crates/bench/benches/window_query.rs:
