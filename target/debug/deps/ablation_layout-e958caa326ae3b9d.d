/root/repo/target/debug/deps/ablation_layout-e958caa326ae3b9d.d: crates/bench/src/bin/ablation_layout.rs

/root/repo/target/debug/deps/ablation_layout-e958caa326ae3b9d: crates/bench/src/bin/ablation_layout.rs

crates/bench/src/bin/ablation_layout.rs:
