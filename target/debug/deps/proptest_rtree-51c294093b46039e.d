/root/repo/target/debug/deps/proptest_rtree-51c294093b46039e.d: crates/spatial/tests/proptest_rtree.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_rtree-51c294093b46039e.rmeta: crates/spatial/tests/proptest_rtree.rs Cargo.toml

crates/spatial/tests/proptest_rtree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
