/root/repo/target/debug/deps/trie-a8cbe7fe203e4910.d: crates/bench/benches/trie.rs

/root/repo/target/debug/deps/trie-a8cbe7fe203e4910: crates/bench/benches/trie.rs

crates/bench/benches/trie.rs:
