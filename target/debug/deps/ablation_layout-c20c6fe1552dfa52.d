/root/repo/target/debug/deps/ablation_layout-c20c6fe1552dfa52.d: crates/bench/src/bin/ablation_layout.rs

/root/repo/target/debug/deps/ablation_layout-c20c6fe1552dfa52: crates/bench/src/bin/ablation_layout.rs

crates/bench/src/bin/ablation_layout.rs:
