/root/repo/target/debug/deps/rtree-bb94f07363761c92.d: crates/bench/benches/rtree.rs

/root/repo/target/debug/deps/rtree-bb94f07363761c92: crates/bench/benches/rtree.rs

crates/bench/benches/rtree.rs:
