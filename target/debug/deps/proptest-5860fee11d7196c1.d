/root/repo/target/debug/deps/proptest-5860fee11d7196c1.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-5860fee11d7196c1.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-5860fee11d7196c1.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
