/root/repo/target/debug/deps/gvdb-78d166f379265e5d.d: src/bin/gvdb.rs Cargo.toml

/root/repo/target/debug/deps/libgvdb-78d166f379265e5d.rmeta: src/bin/gvdb.rs Cargo.toml

src/bin/gvdb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
