/root/repo/target/debug/deps/partition-b328e2432d11070a.d: crates/bench/benches/partition.rs

/root/repo/target/debug/deps/partition-b328e2432d11070a: crates/bench/benches/partition.rs

crates/bench/benches/partition.rs:
