/root/repo/target/debug/deps/btree-7daff826a7d82afb.d: crates/bench/benches/btree.rs

/root/repo/target/debug/deps/btree-7daff826a7d82afb: crates/bench/benches/btree.rs

crates/bench/benches/btree.rs:
