/root/repo/target/debug/deps/proptest_rtree-b529a2d9a1f8835d.d: crates/spatial/tests/proptest_rtree.rs

/root/repo/target/debug/deps/proptest_rtree-b529a2d9a1f8835d: crates/spatial/tests/proptest_rtree.rs

crates/spatial/tests/proptest_rtree.rs:
