/root/repo/target/debug/deps/proptest_graph-be809c38c50c4979.d: crates/graph/tests/proptest_graph.rs

/root/repo/target/debug/deps/proptest_graph-be809c38c50c4979: crates/graph/tests/proptest_graph.rs

crates/graph/tests/proptest_graph.rs:
