/root/repo/target/debug/deps/rand-c6577671b7550f5a.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-c6577671b7550f5a: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
