/root/repo/target/debug/deps/graphvizdb-f83f544ced69d208.d: src/lib.rs

/root/repo/target/debug/deps/graphvizdb-f83f544ced69d208: src/lib.rs

src/lib.rs:
