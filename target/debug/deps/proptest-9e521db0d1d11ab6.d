/root/repo/target/debug/deps/proptest-9e521db0d1d11ab6.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-9e521db0d1d11ab6: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
