/root/repo/target/debug/deps/ablation_layout-7d0b34764ea76342.d: crates/bench/src/bin/ablation_layout.rs Cargo.toml

/root/repo/target/debug/deps/libablation_layout-7d0b34764ea76342.rmeta: crates/bench/src/bin/ablation_layout.rs Cargo.toml

crates/bench/src/bin/ablation_layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
