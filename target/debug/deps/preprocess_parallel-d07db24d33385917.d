/root/repo/target/debug/deps/preprocess_parallel-d07db24d33385917.d: crates/bench/benches/preprocess_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libpreprocess_parallel-d07db24d33385917.rmeta: crates/bench/benches/preprocess_parallel.rs Cargo.toml

crates/bench/benches/preprocess_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
