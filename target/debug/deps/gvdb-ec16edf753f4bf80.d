/root/repo/target/debug/deps/gvdb-ec16edf753f4bf80.d: src/bin/gvdb.rs

/root/repo/target/debug/deps/gvdb-ec16edf753f4bf80: src/bin/gvdb.rs

src/bin/gvdb.rs:
