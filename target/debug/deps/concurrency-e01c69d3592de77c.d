/root/repo/target/debug/deps/concurrency-e01c69d3592de77c.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-e01c69d3592de77c: tests/concurrency.rs

tests/concurrency.rs:
