/root/repo/target/debug/deps/window_query-ccfc859314d49b2c.d: crates/bench/benches/window_query.rs

/root/repo/target/debug/deps/window_query-ccfc859314d49b2c: crates/bench/benches/window_query.rs

crates/bench/benches/window_query.rs:
