/root/repo/target/debug/deps/serde_derive-84ab1e2b0b2b3cae.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-84ab1e2b0b2b3cae.rmeta: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
