/root/repo/target/debug/deps/gvdb_graph-af2706ddd89d8580.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/barabasi_albert.rs crates/graph/src/generators/citation.rs crates/graph/src/generators/community.rs crates/graph/src/generators/erdos_renyi.rs crates/graph/src/generators/grid.rs crates/graph/src/generators/rdf.rs crates/graph/src/generators/rmat.rs crates/graph/src/graph.rs crates/graph/src/io/mod.rs crates/graph/src/io/edge_list.rs crates/graph/src/io/ntriples.rs crates/graph/src/metrics.rs crates/graph/src/traversal.rs crates/graph/src/types.rs

/root/repo/target/debug/deps/libgvdb_graph-af2706ddd89d8580.rlib: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/barabasi_albert.rs crates/graph/src/generators/citation.rs crates/graph/src/generators/community.rs crates/graph/src/generators/erdos_renyi.rs crates/graph/src/generators/grid.rs crates/graph/src/generators/rdf.rs crates/graph/src/generators/rmat.rs crates/graph/src/graph.rs crates/graph/src/io/mod.rs crates/graph/src/io/edge_list.rs crates/graph/src/io/ntriples.rs crates/graph/src/metrics.rs crates/graph/src/traversal.rs crates/graph/src/types.rs

/root/repo/target/debug/deps/libgvdb_graph-af2706ddd89d8580.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/barabasi_albert.rs crates/graph/src/generators/citation.rs crates/graph/src/generators/community.rs crates/graph/src/generators/erdos_renyi.rs crates/graph/src/generators/grid.rs crates/graph/src/generators/rdf.rs crates/graph/src/generators/rmat.rs crates/graph/src/graph.rs crates/graph/src/io/mod.rs crates/graph/src/io/edge_list.rs crates/graph/src/io/ntriples.rs crates/graph/src/metrics.rs crates/graph/src/traversal.rs crates/graph/src/types.rs

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/generators/mod.rs:
crates/graph/src/generators/barabasi_albert.rs:
crates/graph/src/generators/citation.rs:
crates/graph/src/generators/community.rs:
crates/graph/src/generators/erdos_renyi.rs:
crates/graph/src/generators/grid.rs:
crates/graph/src/generators/rdf.rs:
crates/graph/src/generators/rmat.rs:
crates/graph/src/graph.rs:
crates/graph/src/io/mod.rs:
crates/graph/src/io/edge_list.rs:
crates/graph/src/io/ntriples.rs:
crates/graph/src/metrics.rs:
crates/graph/src/traversal.rs:
crates/graph/src/types.rs:
