/root/repo/target/debug/deps/gvdb_storage-5d6325ec37b52de4.d: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/db.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/pager.rs crates/storage/src/record.rs crates/storage/src/spatial_index.rs crates/storage/src/table.rs crates/storage/src/trie.rs crates/storage/src/wal.rs

/root/repo/target/debug/deps/gvdb_storage-5d6325ec37b52de4: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/db.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/pager.rs crates/storage/src/record.rs crates/storage/src/spatial_index.rs crates/storage/src/table.rs crates/storage/src/trie.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/btree.rs:
crates/storage/src/buffer.rs:
crates/storage/src/catalog.rs:
crates/storage/src/db.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
crates/storage/src/pager.rs:
crates/storage/src/record.rs:
crates/storage/src/spatial_index.rs:
crates/storage/src/table.rs:
crates/storage/src/trie.rs:
crates/storage/src/wal.rs:
