/root/repo/target/debug/deps/end_to_end-3ddca49e9308f3a1.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3ddca49e9308f3a1: tests/end_to_end.rs

tests/end_to_end.rs:
