/root/repo/target/debug/deps/proptest_layout-04b5a1aec1a539f4.d: crates/layout/tests/proptest_layout.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_layout-04b5a1aec1a539f4.rmeta: crates/layout/tests/proptest_layout.rs Cargo.toml

crates/layout/tests/proptest_layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
