/root/repo/target/debug/deps/table1-f1f6a121777edd19.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f1f6a121777edd19: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
