/root/repo/target/debug/deps/preprocess_parallel-7d12b1d550425b7e.d: crates/bench/benches/preprocess_parallel.rs

/root/repo/target/debug/deps/preprocess_parallel-7d12b1d550425b7e: crates/bench/benches/preprocess_parallel.rs

crates/bench/benches/preprocess_parallel.rs:
