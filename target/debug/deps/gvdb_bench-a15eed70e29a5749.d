/root/repo/target/debug/deps/gvdb_bench-a15eed70e29a5749.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/gvdb_bench-a15eed70e29a5749: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
