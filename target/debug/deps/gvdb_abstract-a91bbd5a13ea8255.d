/root/repo/target/debug/deps/gvdb_abstract-a91bbd5a13ea8255.d: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs

/root/repo/target/debug/deps/libgvdb_abstract-a91bbd5a13ea8255.rlib: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs

/root/repo/target/debug/deps/libgvdb_abstract-a91bbd5a13ea8255.rmeta: crates/abstraction/src/lib.rs crates/abstraction/src/filter.rs crates/abstraction/src/hierarchy.rs crates/abstraction/src/rank.rs crates/abstraction/src/summarize.rs

crates/abstraction/src/lib.rs:
crates/abstraction/src/filter.rs:
crates/abstraction/src/hierarchy.rs:
crates/abstraction/src/rank.rs:
crates/abstraction/src/summarize.rs:
