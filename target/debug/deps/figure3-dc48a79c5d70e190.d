/root/repo/target/debug/deps/figure3-dc48a79c5d70e190.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-dc48a79c5d70e190: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
