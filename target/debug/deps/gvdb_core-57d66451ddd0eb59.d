/root/repo/target/debug/deps/gvdb_core-57d66451ddd0eb59.d: crates/core/src/lib.rs crates/core/src/birdview.rs crates/core/src/cache.rs crates/core/src/client.rs crates/core/src/json.rs crates/core/src/organizer.rs crates/core/src/preprocess.rs crates/core/src/query.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/workspace.rs Cargo.toml

/root/repo/target/debug/deps/libgvdb_core-57d66451ddd0eb59.rmeta: crates/core/src/lib.rs crates/core/src/birdview.rs crates/core/src/cache.rs crates/core/src/client.rs crates/core/src/json.rs crates/core/src/organizer.rs crates/core/src/preprocess.rs crates/core/src/query.rs crates/core/src/session.rs crates/core/src/stats.rs crates/core/src/workspace.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/birdview.rs:
crates/core/src/cache.rs:
crates/core/src/client.rs:
crates/core/src/json.rs:
crates/core/src/organizer.rs:
crates/core/src/preprocess.rs:
crates/core/src/query.rs:
crates/core/src/session.rs:
crates/core/src/stats.rs:
crates/core/src/workspace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
