/root/repo/target/debug/deps/gvdb_bench-22630b1875f9673d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgvdb_bench-22630b1875f9673d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgvdb_bench-22630b1875f9673d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
