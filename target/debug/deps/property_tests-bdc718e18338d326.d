/root/repo/target/debug/deps/property_tests-bdc718e18338d326.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-bdc718e18338d326: tests/property_tests.rs

tests/property_tests.rs:
