/root/repo/target/debug/deps/layout-307d4a57a1f39a08.d: crates/bench/benches/layout.rs

/root/repo/target/debug/deps/layout-307d4a57a1f39a08: crates/bench/benches/layout.rs

crates/bench/benches/layout.rs:
