(function() {
    const implementors = Object.fromEntries([["gvdb_graph",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"struct\" href=\"gvdb_graph/types/struct.EdgeId.html\" title=\"struct gvdb_graph::types::EdgeId\">EdgeId</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"struct\" href=\"gvdb_graph/types/struct.NodeId.html\" title=\"struct gvdb_graph::types::NodeId\">NodeId</a>",0]]],["gvdb_storage",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"struct\" href=\"gvdb_storage/heap/struct.RowId.html\" title=\"struct gvdb_storage::heap::RowId\">RowId</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"struct\" href=\"gvdb_storage/page/struct.PageId.html\" title=\"struct gvdb_storage::page::PageId\">PageId</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[574,578]}