(function() {
    const implementors = Object.fromEntries([["gvdb_spatial",[["impl&lt;'a, T&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/iterator/trait.Iterator.html\" title=\"trait core::iter::traits::iterator::Iterator\">Iterator</a> for <a class=\"struct\" href=\"gvdb_spatial/rtree/struct.Nearest.html\" title=\"struct gvdb_spatial::rtree::Nearest\">Nearest</a>&lt;'a, T&gt;",0],["impl&lt;'a, T&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/iterator/trait.Iterator.html\" title=\"trait core::iter::traits::iterator::Iterator\">Iterator</a> for <a class=\"struct\" href=\"gvdb_spatial/rtree/struct.Window.html\" title=\"struct gvdb_spatial::rtree::Window\">Window</a>&lt;'a, T&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[699]}