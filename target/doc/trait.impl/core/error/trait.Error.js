(function() {
    const implementors = Object.fromEntries([["gvdb_storage",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"gvdb_storage/error/enum.StorageError.html\" title=\"enum gvdb_storage::error::StorageError\">StorageError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[302]}