//! Web-graph ranking comparison: the paper's Notre Dame scenario.
//!
//! Builds a scale-free web-like graph, then compares the three abstraction
//! criteria the demo exposes (degree, PageRank, HITS) on the same graph:
//! how much do their top layers overlap, and what survives at each level?
//!
//! ```text
//! cargo run --release --example web_graph_ranks
//! ```

use graphvizdb::abstraction::{
    build_hierarchy, AbstractionMethod, HierarchyConfig, RankingCriterion,
};
use graphvizdb::prelude::*;
use std::collections::HashSet;

fn main() {
    // RMAT approximates the Notre Dame web graph's structure.
    let graph = rmat(RmatConfig {
        scale: 12,
        edge_factor: 6,
        ..Default::default()
    });
    println!(
        "web-like graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // Shared layer-0 layout so the criteria are compared apples-to-apples.
    let positions: Vec<(f64, f64)> = {
        let layout = ForceDirected {
            iterations: 30,
            ..Default::default()
        }
        .layout(&graph);
        layout.positions().iter().map(|p| (p.x, p.y)).collect()
    };

    let criteria = [
        ("degree", RankingCriterion::Degree),
        ("pagerank", RankingCriterion::PageRank),
        ("hits-authority", RankingCriterion::HitsAuthority),
    ];

    let mut survivors: Vec<(&str, HashSet<u32>)> = Vec::new();
    for (name, criterion) in criteria {
        let cfg = HierarchyConfig {
            levels: 3,
            method: AbstractionMethod::Filter {
                criterion,
                fraction: 0.2,
            },
        };
        let h = build_hierarchy(&graph, &positions, &cfg);
        println!("\ncriterion {name}:");
        for (i, layer) in h.layers.iter().enumerate() {
            println!(
                "  layer {i}: {} nodes, {} edges",
                layer.graph.node_count(),
                layer.graph.edge_count()
            );
        }
        // Which original nodes survive to the top layer? Filter layers map
        // 1:1 through `members`; compose the mappings.
        let mut alive: Vec<u32> = (0..graph.node_count() as u32).collect();
        for layer in &h.layers[1..] {
            alive = layer.members.iter().map(|m| alive[m[0] as usize]).collect();
        }
        println!("  survivors at the top: {}", alive.len());
        survivors.push((name, alive.into_iter().collect()));
    }

    // Pairwise overlap of the top layers: important under one criterion is
    // usually (but not always) important under another.
    println!("\ntop-layer overlap (Jaccard):");
    for i in 0..survivors.len() {
        for j in (i + 1)..survivors.len() {
            let (na, a) = &survivors[i];
            let (nb, b) = &survivors[j];
            let inter = a.intersection(b).count();
            let union = a.union(b).count();
            println!(
                "  {na} vs {nb}: {:.2} ({} shared)",
                inter as f64 / union.max(1) as f64,
                inter
            );
        }
    }

    // Summarization as the alternative abstraction family.
    let cfg = HierarchyConfig {
        levels: 2,
        method: AbstractionMethod::Summarize {
            ratio: 0.1,
            seed: 7,
        },
    };
    let h = build_hierarchy(&graph, &positions, &cfg);
    println!("\ncluster summarization:");
    for (i, layer) in h.layers.iter().enumerate() {
        println!(
            "  layer {i}: {} nodes, {} edges",
            layer.graph.node_count(),
            layer.graph.edge_count()
        );
    }
    let top = h.layers.last().unwrap();
    let first_node = top.graph.node_ids().next();
    if let Some(v) = first_node {
        println!("  sample supernode: {:?}", top.graph.node_label(v));
    }
}
