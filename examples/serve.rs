//! The serving layer demo: a synthetic RDF dataset behind the real
//! [`graphvizdb::server`] stack — bounded worker pool, session registry
//! with delta-pan anchoring, per-shard `/stats`.
//!
//! By default the example starts the server, issues demo requests against
//! itself (including a session-anchored pan that rides the incremental
//! delta path) and exits (CI-friendly). Pass `--serve` to keep listening.
//!
//! ```text
//! cargo run --release --example serve             # self-demo
//! cargo run --release --example serve -- --serve  # keep serving
//! ```
//!
//! For a real database use the CLI instead: `gvdb serve <db>`.

use graphvizdb::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() {
    let graph = wikidata_like(RdfConfig {
        entities: 1_000,
        ..Default::default()
    });
    let mut path = std::env::temp_dir();
    path.push(format!("gvdb-serve-{}.db", std::process::id()));
    let (db, _) = preprocess(&graph, &path, &PreprocessConfig::default()).expect("preprocess");
    let qm = Arc::new(QueryManager::new(db));

    let server = Server::start(qm.clone(), ServerConfig::default()).expect("bind");
    let addr = server.addr();
    println!("graphvizdb serving on http://{addr}");

    if std::env::args().any(|a| a == "--serve") {
        server.wait();
        return;
    }

    // Self-demo: act as our own client. The window request is issued
    // twice (the repeat is an exact cache hit), then a session is
    // registered and panned by 20% — the overlap is served by the
    // incremental delta path (see the X-Gvdb-Source headers and /stats).
    let demo = |path_q: &str| {
        let (headers, body) = http_get(addr, path_q);
        let source = headers
            .lines()
            .find(|l| l.starts_with("X-Gvdb-Source"))
            .unwrap_or("")
            .trim();
        let preview: String = body.chars().take(160).collect();
        println!(
            "\nGET {path_q}  {source}\n{preview}{}",
            if body.len() > 160 { "…" } else { "" }
        );
        body
    };
    demo("/layers");
    demo("/window?layer=0&minx=0&miny=0&maxx=1200&maxy=1200");
    demo("/window?layer=0&minx=0&miny=0&maxx=1200&maxy=1200");
    let session = demo("/session/new")
        .trim_start_matches("{\"session\":")
        .trim_end_matches('}')
        .parse::<u64>()
        .expect("session id");
    demo(&format!(
        "/window?layer=0&session={session}&minx=0&miny=0&maxx=1200&maxy=1200"
    ));
    demo(&format!(
        "/window?layer=0&session={session}&minx=240&miny=0&maxx=1440&maxy=1200"
    ));
    demo("/search?layer=0&q=Faloutsos");
    demo("/cache");
    demo("/stats");

    // Focus on the first search hit.
    let hits = qm.keyword_search(0, "Faloutsos").expect("search");
    if let Some(hit) = hits.first() {
        demo(&format!("/focus?layer=0&node={}", hit.node_id));
    }
    println!("\nself-demo complete (pass --serve to keep the server running)");
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    match response.split_once("\r\n\r\n") {
        Some((head, body)) => (head.to_string(), body.to_string()),
        None => (response, String::new()),
    }
}
