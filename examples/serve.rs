//! The serving layer demo: two synthetic datasets behind the real
//! [`graphvizdb::server`] stack, speaking the typed `/v1` protocol —
//! multi-dataset selection, session-anchored delta pans, an HTTP
//! mutation observing its own epoch, per-dataset `/v1/stats` — all over
//! **one keep-alive connection**.
//!
//! By default the example starts the server, issues the demo requests
//! against itself and exits (CI-friendly). Pass `--serve` to keep
//! listening.
//!
//! ```text
//! cargo run --release --example serve             # self-demo
//! cargo run --release --example serve -- --serve  # keep serving
//! ```
//!
//! For real databases use the CLI instead:
//! `gvdb serve acm=acm.gvdb dblp=dblp.gvdb`.

use graphvizdb::core::SharedWorkspace;
use graphvizdb::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() {
    let mut rdf_path = std::env::temp_dir();
    rdf_path.push(format!("gvdb-serve-rdf-{}.db", std::process::id()));
    let mut cite_path = std::env::temp_dir();
    cite_path.push(format!("gvdb-serve-cite-{}.db", std::process::id()));

    let rdf = wikidata_like(RdfConfig {
        entities: 1_000,
        ..Default::default()
    });
    let cite = patent_like(CitationConfig {
        nodes: 1_500,
        ..Default::default()
    });
    let (rdf_db, _) =
        preprocess(&rdf, &rdf_path, &PreprocessConfig::default()).expect("preprocess");
    let (cite_db, _) =
        preprocess(&cite, &cite_path, &PreprocessConfig::default()).expect("preprocess");

    let workspace = Arc::new(SharedWorkspace::new());
    workspace.add("dblp", rdf_db).expect("register dblp");
    workspace.add("patents", cite_db).expect("register patents");

    // The event-driven core makes connection capacity explicit: idle
    // keep-alive connections cost a registered fd in the reactor, not a
    // thread, so `max_connections` can dwarf `workers`. `outbox_bytes`
    // bounds the per-connection response queue a slow reader can pin.
    let server = Server::start(
        workspace,
        ServerConfig {
            max_connections: 1024,
            outbox_bytes: 1 << 20,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    println!("graphvizdb serving 2 datasets on http://{addr} (v1 API + legacy shims)");

    if std::env::args().any(|a| a == "--serve") {
        server.wait();
        return;
    }

    // Self-demo: one keep-alive client walks the protocol. Every request
    // below reuses the same TCP connection.
    let mut client = Client::connect(addr);
    let demo = |client: &mut Client, method: &str, path: &str, body: Option<&str>| -> String {
        let (headers, body) = client.request(method, path, body);
        let source = headers
            .lines()
            .find(|l| l.starts_with("X-Gvdb-Source"))
            .unwrap_or("")
            .trim();
        let preview: String = body.chars().take(160).collect();
        println!(
            "\n{method} {path}  {source}\n{preview}{}",
            if body.len() > 160 { "…" } else { "" }
        );
        body
    };

    demo(&mut client, "GET", "/v1/datasets", None);
    demo(&mut client, "GET", "/v1/layers?dataset=dblp", None);
    // Cold, then exact cache hit.
    demo(
        &mut client,
        "GET",
        "/v1/window?dataset=dblp&layer=0&minx=0&miny=0&maxx=1200&maxy=1200",
        None,
    );
    demo(
        &mut client,
        "GET",
        "/v1/window?dataset=dblp&layer=0&minx=0&miny=0&maxx=1200&maxy=1200",
        None,
    );
    // Session-anchored pan: the 80% overlap rides the delta path.
    let session = demo(&mut client, "GET", "/v1/session/new?dataset=dblp", None);
    let session: u64 = session
        .split("\"session\":")
        .nth(1)
        .and_then(|s| s.trim_end_matches('}').parse().ok())
        .expect("session id");
    demo(
        &mut client,
        "GET",
        &format!(
            "/v1/window?dataset=dblp&layer=0&session={session}&minx=0&miny=0&maxx=1200&maxy=1200"
        ),
        None,
    );
    demo(
        &mut client,
        "GET",
        &format!(
            "/v1/window?dataset=dblp&layer=0&session={session}&minx=240&miny=0&maxx=1440&maxy=1200"
        ),
        None,
    );
    // Search.
    demo(
        &mut client,
        "GET",
        "/v1/search?dataset=dblp&layer=0&q=Faloutsos",
        None,
    );
    // An HTTP mutation: insert an edge into dblp; the response carries
    // the layer's NEW epoch, and the panned window (same session) now
    // re-queries instead of serving the stale cache entry.
    demo(
        &mut client,
        "POST",
        "/v1/edge",
        Some(
            r#"{"dataset":"dblp","layer":0,"edge":{"node1_id":990001,"node1_label":"demo A","node2_id":990002,"node2_label":"demo B","edge_label":"hand-drawn","x1":600.0,"y1":600.0,"x2":700.0,"y2":700.0,"directed":false}}"#,
        ),
    );
    demo(
        &mut client,
        "GET",
        &format!(
            "/v1/window?dataset=dblp&layer=0&session={session}&minx=240&miny=0&maxx=1440&maxy=1200"
        ),
        None,
    );
    // Patents was untouched by the dblp edit: its epochs stay 0.
    demo(&mut client, "GET", "/v1/layers?dataset=patents", None);
    // Per-dataset stats (cache/pool shards, sessions, epochs).
    demo(&mut client, "GET", "/v1/stats", None);

    println!("\nself-demo complete over ONE keep-alive connection (pass --serve to keep the server running)");
    server.shutdown();
    std::fs::remove_file(&rdf_path).ok();
    std::fs::remove_file(&cite_path).ok();
}

/// A minimal keep-alive HTTP client for the self-demo.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> (String, String) {
        let body = body.unwrap_or("");
        // `Accept: application/json` keeps `/v1/window` and `/v1/search`
        // on the buffered envelope this little client parses; drop it (or
        // use `gvdb-client`) to get the streamed frame protocol instead.
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nAccept: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(request.as_bytes()).expect("request");
        let mut headers = String::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("headers");
            assert!(n > 0, "server closed the demo connection");
            if line == "\r\n" {
                break;
            }
            headers.push_str(&line);
        }
        let length: usize = headers
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(|v| v.trim().to_string())
            })
            .expect("content-length")
            .parse()
            .expect("length");
        let mut buf = vec![0u8; length];
        self.reader.read_exact(&mut buf).expect("body");
        (headers, String::from_utf8(buf).expect("utf8"))
    }
}
