//! A real HTTP endpoint for the platform: the Query Manager behind a
//! hand-rolled HTTP/1.1 server (std::net only), serving the same JSON a
//! browser frontend would consume.
//!
//! Endpoints:
//! * `GET /layers` — layer inventory
//! * `GET /window?layer=0&minx=..&miny=..&maxx=..&maxy=..` — window query
//!   (served through the sharded LRU window cache; exact repeats are
//!   hits, overlapping pans run the incremental delta path — the
//!   `X-Gvdb-Source` response header says `hit`, `delta`, or `cold`, and
//!   `X-Gvdb-Rows-Reused`/`X-Gvdb-Rows-Fetched` report the split)
//! * `GET /search?layer=0&q=keyword` — keyword search
//! * `GET /focus?layer=0&node=ID` — focus-on-node neighborhood
//! * `GET /cache` — window-cache hit/partial/miss/occupancy counters plus
//!   buffer-pool page hit rate
//!
//! By default the example starts the server, issues demo requests against
//! itself, prints the responses and exits (CI-friendly). Pass `--serve` to
//! keep listening.
//!
//! ```text
//! cargo run --release --example serve             # self-demo
//! cargo run --release --example serve -- --serve  # keep serving
//! ```

use graphvizdb::core::json::escape_into;
use graphvizdb::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn main() {
    let graph = wikidata_like(RdfConfig {
        entities: 1_000,
        ..Default::default()
    });
    let mut path = std::env::temp_dir();
    path.push(format!("gvdb-serve-{}.db", std::process::id()));
    let (db, _) = preprocess(&graph, &path, &PreprocessConfig::default()).expect("preprocess");
    let qm = Arc::new(QueryManager::new(db));

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    println!("graphvizdb serving on http://{addr}");

    let server_qm = qm.clone();
    let server = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let qm = server_qm.clone();
            std::thread::spawn(move || handle(stream, &qm));
        }
    });

    let keep_serving = std::env::args().any(|a| a == "--serve");
    if keep_serving {
        server.join().ok();
        return;
    }

    // Self-demo: act as our own client. The window request is issued
    // twice (the repeat is an exact cache hit), then panned by 20% (the
    // overlap is served by the incremental delta path — see /cache).
    for path_q in [
        "/layers".to_string(),
        "/window?layer=0&minx=0&miny=0&maxx=1200&maxy=1200".to_string(),
        "/window?layer=0&minx=0&miny=0&maxx=1200&maxy=1200".to_string(),
        "/window?layer=0&minx=240&miny=0&maxx=1440&maxy=1200".to_string(),
        "/search?layer=0&q=Faloutsos".to_string(),
        "/cache".to_string(),
    ] {
        let body = http_get(addr, &path_q);
        let preview: String = body.chars().take(160).collect();
        println!(
            "\nGET {path_q}\n{preview}{}",
            if body.len() > 160 { "…" } else { "" }
        );
    }
    // Focus on the first search hit.
    let hits = qm.keyword_search(0, "Faloutsos").expect("search");
    if let Some(hit) = hits.first() {
        let body = http_get(addr, &format!("/focus?layer=0&node={}", hit.node_id));
        let preview: String = body.chars().take(160).collect();
        println!("\nGET /focus?layer=0&node={}\n{preview}…", hit.node_id);
    }
    println!("\nself-demo complete (pass --serve to keep the server running)");
    std::fs::remove_file(&path).ok();
    std::process::exit(0);
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(response)
}

/// Response body: either built for this request, or the cached window
/// JSON shared by `Arc` (no per-request copy of the payload).
enum Body {
    Owned(String),
    Shared(Arc<graphvizdb::core::GraphJson>),
}

impl Body {
    fn as_str(&self) -> &str {
        match self {
            Body::Owned(s) => s,
            Body::Shared(json) => &json.text,
        }
    }
}

impl From<String> for Body {
    fn from(s: String) -> Self {
        Body::Owned(s)
    }
}

fn handle(mut stream: TcpStream, qm: &QueryManager) {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers.
    let mut line = String::new();
    while reader.read_line(&mut line).is_ok() && line != "\r\n" && !line.is_empty() {
        line.clear();
    }
    let target = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let params: Vec<(&str, &str)> = query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .collect();
    let get = |k: &str| params.iter().find(|(key, _)| *key == k).map(|(_, v)| *v);
    let layer: usize = get("layer").and_then(|v| v.parse().ok()).unwrap_or(0);

    // Extra response headers (the delta-path telemetry for /window).
    let mut extra_headers = String::new();
    let (status, body): (&str, Body) = match path {
        "/layers" => {
            let mut out = String::from("{\"layers\":[");
            for i in 0..qm.layer_count() {
                if i > 0 {
                    out.push(',');
                }
                let rows = qm.db().layer(i).map(|l| l.row_count()).unwrap_or(0);
                out.push_str(&format!("{{\"index\":{i},\"rows\":{rows}}}"));
            }
            out.push_str("]}");
            ("200 OK", out.into())
        }
        "/window" => {
            let parse = |k: &str| get(k).and_then(|v| v.parse::<f64>().ok());
            match (parse("minx"), parse("miny"), parse("maxx"), parse("maxy")) {
                (Some(minx), Some(miny), Some(maxx), Some(maxy))
                    if minx <= maxx && miny <= maxy =>
                {
                    match qm.window_query(layer, &Rect::new(minx, miny, maxx, maxy)) {
                        Ok(resp) => {
                            let source = if resp.cache_hit {
                                "hit"
                            } else if resp.delta {
                                "delta"
                            } else {
                                "cold"
                            };
                            extra_headers = format!(
                                "X-Gvdb-Source: {source}\r\nX-Gvdb-Rows-Reused: {}\r\nX-Gvdb-Rows-Fetched: {}\r\n",
                                resp.rows_reused, resp.rows_fetched
                            );
                            ("200 OK", Body::Shared(resp.json))
                        }
                        Err(e) => ("404 Not Found", format!("{{\"error\":\"{e}\"}}").into()),
                    }
                }
                _ => (
                    "400 Bad Request",
                    "{\"error\":\"need minx,miny,maxx,maxy\"}"
                        .to_string()
                        .into(),
                ),
            }
        }
        "/search" => match get("q") {
            Some(q) => {
                let q = q.replace('+', " ");
                match qm.keyword_search(layer, &q) {
                    Ok(hits) => {
                        let mut out = String::from("{\"hits\":[");
                        for (i, h) in hits.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            out.push_str(&format!(
                                "{{\"node\":{},\"x\":{:.2},\"y\":{:.2},\"label\":\"",
                                h.node_id, h.position.x, h.position.y
                            ));
                            escape_into(&h.label, &mut out);
                            out.push_str("\"}");
                        }
                        out.push_str("]}");
                        ("200 OK", out.into())
                    }
                    Err(e) => ("404 Not Found", format!("{{\"error\":\"{e}\"}}").into()),
                }
            }
            None => (
                "400 Bad Request",
                "{\"error\":\"need q\"}".to_string().into(),
            ),
        },
        "/focus" => match get("node").and_then(|v| v.parse::<u64>().ok()) {
            Some(node) => match qm.focus_on_node(layer, node) {
                Ok(rows) => {
                    let json = graphvizdb::core::build_graph_json(&rows);
                    ("200 OK", json.text.into())
                }
                Err(e) => ("404 Not Found", format!("{{\"error\":\"{e}\"}}").into()),
            },
            None => (
                "400 Bad Request",
                "{\"error\":\"need node\"}".to_string().into(),
            ),
        },
        "/cache" => {
            let stats = qm.cache_stats();
            let pool = qm.pool_stats();
            (
                "200 OK",
                format!(
                    "{{\"hits\":{},\"partial_hits\":{},\"misses\":{},\"entries\":{},\"bytes\":{},\"hit_rate\":{:.3},\"pool\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.3}}}}}",
                    stats.hits,
                    stats.partial_hits,
                    stats.misses,
                    stats.entries,
                    stats.bytes,
                    stats.hit_rate(),
                    pool.hits,
                    pool.misses,
                    pool.hit_rate()
                )
                .into(),
            )
        }
        _ => (
            "404 Not Found",
            "{\"error\":\"unknown endpoint\"}".to_string().into(),
        ),
    };
    let body = body.as_str();
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{extra_headers}Connection: close\r\n\r\n{body}",
        body.len()
    );
}
