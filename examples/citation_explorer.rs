//! Citation-network exploration: the paper's Patent scenario.
//!
//! Demonstrates "Focus on node" pathway navigation and the Filter panel:
//! hide irrelevant edge types and follow citation chains, like the paper's
//! ACM-dataset walkthrough ("a user interested in exploring the citations
//! between articles will be able to filter out irrelevant edges").
//!
//! ```text
//! cargo run --release --example citation_explorer
//! ```

use graphvizdb::core::stats::{format_stats, hierarchy_stats};
use graphvizdb::prelude::*;

fn main() {
    let graph = patent_like(CitationConfig {
        nodes: 5_000,
        ..Default::default()
    });
    let metrics = GraphMetrics::compute(&graph);
    println!(
        "patent-like graph: {} nodes, {} edges, avg degree {:.2}",
        metrics.nodes, metrics.edges, metrics.avg_degree
    );

    let mut path = std::env::temp_dir();
    path.push(format!("gvdb-citation-{}.db", std::process::id()));
    let cfg = PreprocessConfig {
        layout: LayoutChoice::Hierarchical, // layered suits citation DAGs
        ..Default::default()
    };
    let (db, report) = preprocess(&graph, &path, &cfg).expect("preprocess");

    // Statistics panel.
    println!("\nper-layer statistics:");
    print!("{}", format_stats(&hierarchy_stats(&report.hierarchy)));

    let qm = QueryManager::new(db);

    // Find a well-cited patent via keyword search.
    let hits = qm.keyword_search(0, "US3000100").expect("search");
    let hit = hits.first().expect("patent exists");
    println!(
        "\nfocusing on {} at ({:.0}, {:.0})",
        hit.label, hit.position.x, hit.position.y
    );

    // "Focus on node": the patent and everything it cites / is cited by.
    let neighborhood = qm.focus_on_node(0, hit.node_id).expect("focus");
    println!("direct citation neighborhood: {} edges", neighborhood.len());
    for (_, row) in neighborhood.iter().take(5) {
        println!(
            "  {} --{}--> {}",
            row.node1_label, row.edge_label, row.node2_label
        );
    }

    // Follow a citation path: hop from patent to patent, two steps.
    let mut current = hit.node_id;
    print!("\ncitation path: {}", hit.label);
    for _ in 0..2 {
        let rows = qm.focus_on_node(0, current).expect("hop");
        // Follow an outgoing citation (node1 = source = newer patent).
        let next = rows
            .iter()
            .find(|(_, r)| r.node1_id == current && r.node2_id != current);
        match next {
            Some((_, r)) => {
                print!(" -> {}", r.node2_label);
                current = r.node2_id;
            }
            None => break,
        }
    }
    println!();

    // Filter panel: hide "cites" edges entirely -> viewport empties.
    let mut session = Session::new(Rect::centered(hit.position, 2000.0, 2000.0));
    let before = session.view(&qm).expect("view").rows.len();
    session
        .filters_mut()
        .hidden_edge_labels
        .insert("cites".into());
    let after = session.view(&qm).expect("filtered view").rows.len();
    println!("\nfilter 'cites': {before} rows -> {after} rows in window");
    assert!(after <= before);

    std::fs::remove_file(&path).ok();
}
