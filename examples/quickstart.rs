//! Quickstart: preprocess a graph and explore it interactively.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use graphvizdb::prelude::*;

fn main() {
    // A synthetic RDF graph in the shape of the paper's Wikidata dataset
    // (hub entities with literal leaves, |E| ≈ |V|), scaled to demo size.
    let graph = wikidata_like(RdfConfig {
        entities: 2_000,
        ..Default::default()
    });
    println!(
        "input graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // Offline preprocessing: partition -> layout -> organize -> abstraction
    // layers -> store & index (Fig. 1 of the paper).
    let mut path = std::env::temp_dir();
    path.push(format!("gvdb-quickstart-{}.db", std::process::id()));
    // A small per-partition budget spreads the graph over ~16 tiles, so
    // window queries actually select a region (the paper sizes k to the
    // machine's memory; here we size it to the demo).
    let cfg = PreprocessConfig {
        partition_node_budget: 256,
        ..Default::default()
    };
    let (db, report) = preprocess(&graph, &path, &cfg).expect("preprocessing failed");
    println!(
        "preprocessed into {} layers (k = {} partitions, edge cut {}):",
        report.layer_sizes.len(),
        report.k,
        report.edge_cut
    );
    for (i, (nodes, edges)) in report.layer_sizes.iter().enumerate() {
        println!("  layer {i}: {nodes} nodes, {edges} edges");
    }
    println!(
        "step times: partition {:?}, layout {:?}, organize {:?}, abstraction {:?}, indexing {:?}",
        report.times.partitioning,
        report.times.layout,
        report.times.organize,
        report.times.abstraction,
        report.times.indexing
    );

    // Online exploration: every interaction is a spatial window query.
    let qm = QueryManager::new(db);
    let mut session = Session::new(Rect::new(0.0, 0.0, 1500.0, 1500.0));

    let view = session.view(&qm).expect("window query failed");
    println!(
        "\ninitial window: {} nodes, {} edges — db {:.2} ms, json {:.2} ms, comm+render {:.1} ms",
        view.json.node_count,
        view.json.edge_count,
        view.db_ms,
        view.build_json_ms,
        view.client.comm_render_ms
    );

    // Pan right, like dragging the canvas.
    session.pan(1000.0, 0.0);
    let view = session.view(&qm).expect("pan query failed");
    println!(
        "after pan: {} nodes, {} edges in view",
        view.json.node_count, view.json.edge_count
    );

    // Keyword search, then focus the window on the first hit.
    let hits = qm.keyword_search(0, "Faloutsos").expect("search failed");
    println!("\nkeyword 'Faloutsos': {} hit(s)", hits.len());
    if let Some(hit) = hits.first() {
        println!("  first: node {} ({:?})", hit.node_id, hit.label);
        session.focus(hit.position);
        let view = session.view(&qm).expect("focus query failed");
        println!(
            "  focused window has {} nodes / {} edges",
            view.json.node_count, view.json.edge_count
        );
    }

    // Vertical navigation: one layer up (more abstract, fewer objects).
    session.layer_up(&qm).expect("no abstraction layer");
    let abstract_view = session.view(&qm).expect("layer query failed");
    println!(
        "\nlayer {}: {} nodes / {} edges in the same window",
        session.layer(),
        abstract_view.json.node_count,
        abstract_view.json.edge_count
    );

    std::fs::remove_file(&path).ok();
}
