//! RDF graph browsing: N-Triples ingestion, literal filtering, multi-level
//! exploration with PageRank abstraction, and the birdview panel.
//!
//! Mirrors the paper's Wikidata/DBpedia scenario: load RDF triples, hide
//! literal leaves, explore "important" entities at higher layers
//! ("by selecting either PageRank or HITS as the abstraction criterion ...
//! users will be able to view different layers of the graph that contain
//! only the 'important' nodes").
//!
//! ```text
//! cargo run --release --example rdf_browser
//! ```

use graphvizdb::abstraction::{AbstractionMethod, HierarchyConfig, RankingCriterion};
use graphvizdb::core::Birdview;
use graphvizdb::graph::io::{read_ntriples, write_ntriples};
use graphvizdb::prelude::*;

fn main() {
    // Synthesize an RDF dataset and round-trip it through N-Triples to
    // demonstrate the ingestion path a real deployment would use.
    let synthetic = wikidata_like(RdfConfig {
        entities: 1_500,
        ..Default::default()
    });
    let mut nt = Vec::new();
    write_ntriples(&synthetic, &mut nt).expect("serialize n-triples");
    let graph = read_ntriples(nt.as_slice()).expect("parse n-triples");
    println!(
        "loaded RDF graph: {} nodes, {} edges ({} KiB of N-Triples)",
        graph.node_count(),
        graph.edge_count(),
        nt.len() / 1024
    );

    // PageRank-filtered abstraction layers, as in the demo's Layer Panel.
    let mut path = std::env::temp_dir();
    path.push(format!("gvdb-rdf-{}.db", std::process::id()));
    let cfg = PreprocessConfig {
        hierarchy: HierarchyConfig {
            levels: 3,
            method: AbstractionMethod::Filter {
                criterion: RankingCriterion::PageRank,
                fraction: 0.25,
            },
        },
        ..Default::default()
    };
    let (db, report) = preprocess(&graph, &path, &cfg).expect("preprocess");
    println!("layers: {:?}", report.layer_sizes);

    // Birdview of layer 0: the whole plane at a glance.
    let positions = &report.hierarchy.layers[0].positions;
    let bv = Birdview::from_positions(positions, 60, 20);
    println!("\nbirdview (layer 0):\n{}", bv.to_ascii());

    let qm = QueryManager::new(db);

    // Browse with literals hidden (the paper's canonical filter example).
    let bounds = bv.bounds();
    let mut session = Session::new(Rect::new(
        bounds.min_x,
        bounds.min_y,
        bounds.min_x + 2000.0,
        bounds.min_y + 2000.0,
    ));
    let raw = session.view(&qm).expect("view").rows.len();
    session
        .filters_mut()
        .hidden_node_substrings
        .push("\"".into());
    let filtered = session.view(&qm).expect("filtered").rows.len();
    println!("window rows: {raw} with literals, {filtered} without");

    // Climb the PageRank hierarchy over the full plane: each layer keeps
    // only the more important quarter of entities.
    let everything = Rect::new(-1e12, -1e12, 1e12, 1e12);
    for layer in 0..qm.layer_count() {
        let resp = qm.window_query(layer, &everything).expect("layer query");
        println!(
            "layer {layer}: {} nodes / {} edges on the whole plane",
            resp.json.node_count, resp.json.edge_count
        );
    }

    // Zoom-correlated vertical navigation: zoom out, go a layer up.
    session.zoom_by(0.5);
    session.layer_up(&qm).expect("layer up");
    let v = session.view(&qm).expect("abstract view");
    println!(
        "\nzoomed out onto layer {}: {} nodes in the enlarged window",
        session.layer(),
        v.json.node_count
    );

    std::fs::remove_file(&path).ok();
}
