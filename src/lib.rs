//! # graphvizdb
//!
//! A scalable platform for **interactive visualization of very large
//! graphs** — a complete Rust implementation of *"graphVizdb: A Scalable
//! Platform for Interactive Large Graph Visualization"* (Bikakis et al.,
//! ICDE 2016).
//!
//! The idea: lay the whole graph out on a Euclidean plane **once, offline**
//! (partition → per-partition layout → greedy global arrangement), build
//! abstraction layers, and index everything in a disk-backed store with an
//! R-tree over edge geometries. Online, every user interaction — panning,
//! zooming, switching abstraction levels, keyword search — becomes a cheap
//! **spatial window query**, so exploration latency is independent of total
//! graph size and the working set never has to fit in memory.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`graph`] | graph substrate: CSR graphs, generators, IO |
//! | [`partition`] | multilevel k-way partitioner (Metis substitute) |
//! | [`layout`] | layout algorithms (Graphviz substitute) |
//! | [`spatial`] | geometry + in-memory R*-tree |
//! | [`storage`] | paged storage engine: heap files, B+-trees, tries, packed R-tree (MySQL substitute) |
//! | [`abstraction`] | degree/PageRank/HITS filtering + cluster summarization |
//! | [`core`] | preprocessing pipeline, query manager, sessions, client model |
//! | [`api`] | the versioned `v1` wire protocol: typed DTOs + streamed frames |
//! | [`server`] | HTTP serving layer: worker pool, session registry, stats |
//! | [`client`] | typed blocking client: connection pool, buffered calls, frame streams |
//!
//! ## Quickstart
//!
//! ```
//! use graphvizdb::prelude::*;
//!
//! // 1. Get a graph (here: a synthetic citation network).
//! let graph = patent_like(CitationConfig { nodes: 500, ..Default::default() });
//!
//! // 2. Preprocess: partition, lay out, organize, abstract, index.
//! let mut path = std::env::temp_dir();
//! path.push(format!("gvdb-quick-{}.db", std::process::id()));
//! let (db, report) = preprocess(&graph, &path, &PreprocessConfig::default()).unwrap();
//! println!("preprocessing took {:?}", report.times.total());
//!
//! // 3. Explore: every interaction is a window query.
//! let qm = QueryManager::new(db);
//! let mut session = Session::new(Rect::new(0.0, 0.0, 1000.0, 1000.0));
//! let view = session.view(&qm).unwrap();
//! println!("{} nodes, {} edges in view", view.json.node_count, view.json.edge_count);
//! # std::fs::remove_file(&path).ok();
//! ```

pub use gvdb_abstract as abstraction;
pub use gvdb_api as api;
pub use gvdb_client as client;
pub use gvdb_core as core;
pub use gvdb_graph as graph;
pub use gvdb_layout as layout;
pub use gvdb_partition as partition;
pub use gvdb_replication as replication;
pub use gvdb_server as server;
pub use gvdb_spatial as spatial;
pub use gvdb_storage as storage;

/// One-stop imports for applications.
pub mod prelude {
    pub use gvdb_abstract::{
        build_hierarchy, AbstractionMethod, HierarchyConfig, RankingCriterion,
    };
    pub use gvdb_client::{GvdbClient, WindowParams, WindowStream};
    pub use gvdb_core::{
        preprocess, Birdview, ClientModel, LayoutChoice, PreprocessConfig, QueryManager, SearchHit,
        Session,
    };
    pub use gvdb_graph::generators::{
        barabasi_albert, erdos_renyi, grid_graph, patent_like, planted_partition, rmat,
        wikidata_like, CitationConfig, RdfConfig, RmatConfig,
    };
    pub use gvdb_graph::{Graph, GraphBuilder, GraphMetrics, NodeId};
    pub use gvdb_layout::{ForceDirected, LayoutAlgorithm};
    pub use gvdb_partition::{partition, PartitionConfig};
    pub use gvdb_server::{Server, ServerConfig};
    pub use gvdb_spatial::{Point, Rect};
    pub use gvdb_storage::{EdgeGeometry, EdgeRow, GraphDb};
}
