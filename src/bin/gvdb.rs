//! `gvdb` — the graphvizdb command-line tool.
//!
//! ```text
//! gvdb preprocess <edge-list|.nt> <db> [--k N] [--layout force|circular|star|grid|hier]
//!                                      [--levels N] [--criterion degree|pagerank|hits]
//! gvdb info <db>
//! gvdb window <db> <layer> <minx> <miny> <maxx> <maxy>
//! gvdb search <db> <layer> <keyword...>
//! gvdb focus <db> <layer> <node-id>
//! gvdb stats <db>
//! gvdb serve <db> | <name>=<path>... | --workspace <dir>
//!            [--addr HOST:PORT] [--workers N] [--backlog N]
//!            [--max-connections N] [--outbox-bytes N]
//!            [--api-key KEY] [--read-only DATASET]... [--plain-frames]
//! gvdb bench-smoke [--out FILE] [--concurrency-out FILE] [--http-out FILE]
//!                  [--stream-out FILE] [--connections-out FILE]
//!                  [--filter-out FILE]
//!                  [--nodes N] [--pans K] [--overlap F]
//! ```
//!
//! `serve` binds a multi-dataset workspace behind the `/v1` API: a single
//! bare `<db>` serves as dataset `default`, several `<name>=<path>` pairs
//! serve side by side behind `dataset=<name>`, and `--workspace <dir>`
//! loads every `*.gvdb` file in the directory (dataset name = file stem).
//!
//! Input format is inferred from the extension: `.nt` parses as N-Triples,
//! anything else as a (tab/space-separated) edge list.

use graphvizdb::abstraction::{AbstractionMethod, HierarchyConfig, RankingCriterion};
use graphvizdb::core::{preprocess, LayoutChoice, PreprocessConfig, QueryManager};
use graphvizdb::graph::io::{read_edge_list, read_ntriples};
use graphvizdb::graph::Graph;
use graphvizdb::spatial::Rect;
use graphvizdb::storage::GraphDb;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("preprocess") => cmd_preprocess(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("window") => cmd_window(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("focus") => cmd_focus(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench-smoke") => cmd_bench_smoke(&args[1..]),
        _ => {
            eprintln!("{}", USAGE);
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  gvdb preprocess <graph-file> <db> [--k N] [--layout force|circular|star|grid|hier]
                                    [--levels N] [--criterion degree|pagerank|hits]
  gvdb info <db>
  gvdb window <db> <layer> <minx> <miny> <maxx> <maxy>
  gvdb search <db> <layer> <keyword...>
  gvdb focus <db> <layer> <node-id>
  gvdb stats <db>
  gvdb serve <db> | <name>=<path>... | --workspace <dir>
             [--addr HOST:PORT] [--workers N] [--backlog N]
             [--max-connections N] [--outbox-bytes N]
             [--api-key KEY] [--read-only DATASET]... [--plain-frames]
             [--replicate-to HOST:PORT]... [--ship-interval-ms N]
             [--follow HOST:PORT] [--poll-ms N]
  gvdb serve --router --shard HOST:PORT... [--addr HOST:PORT]
             [--shardmap-out FILE] [server flags]
  gvdb bench-smoke [--out FILE] [--concurrency-out FILE] [--http-out FILE]
                   [--stream-out FILE] [--connections-out FILE]
                   [--filter-out FILE] [--cluster-out FILE]
                   [--nodes N] [--pans K] [--overlap F]";

fn load_graph(path: &str) -> Result<Graph, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    if path.ends_with(".nt") {
        read_ntriples(file).map_err(|e| format!("parse {path}: {e}"))
    } else {
        read_edge_list(file, true).map_err(|e| format!("parse {path}: {e}"))
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Every value of a repeatable flag (`--read-only a --read-only b`).
fn flag_all<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

/// `serve`'s value-taking flags: the positional scan skips each together
/// with its value. A new `serve` flag MUST be listed here (or in the
/// boolean set inside [`serve_positionals`]) or it is rejected as unknown.
const SERVE_VALUE_FLAGS: &[&str] = &[
    "--addr",
    "--workers",
    "--backlog",
    "--max-connections",
    "--outbox-bytes",
    "--workspace",
    "--api-key",
    "--read-only",
    "--replicate-to",
    "--ship-interval-ms",
    "--follow",
    "--poll-ms",
    "--shard",
    "--shardmap-out",
];

/// The non-flag arguments of `serve` (dataset specs), with unknown
/// `--flags` rejected.
fn serve_positionals(args: &[String]) -> Result<Vec<&str>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if SERVE_VALUE_FLAGS.contains(&arg) {
            i += 2;
            continue;
        }
        if arg == "--plain-frames" || arg == "--router" {
            i += 1;
            continue;
        }
        if arg.starts_with("--") {
            return Err(format!("unknown flag {arg}"));
        }
        out.push(arg);
        i += 1;
    }
    Ok(out)
}

fn cmd_preprocess(args: &[String]) -> Result<(), String> {
    let [input, db_path, ..] = args else {
        return Err("preprocess needs <graph-file> <db>".into());
    };
    let graph = load_graph(input)?;
    println!(
        "loaded {}: {} nodes, {} edges",
        input,
        graph.node_count(),
        graph.edge_count()
    );
    let mut cfg = PreprocessConfig::default();
    if let Some(k) = flag(args, "--k") {
        cfg.k = Some(k.parse().map_err(|_| format!("bad --k {k}"))?);
    }
    if let Some(layout) = flag(args, "--layout") {
        cfg.layout = match layout {
            "force" => LayoutChoice::ForceDirected,
            "circular" => LayoutChoice::Circular,
            "star" => LayoutChoice::Star,
            "grid" => LayoutChoice::Grid,
            "hier" => LayoutChoice::Hierarchical,
            other => return Err(format!("unknown layout {other}")),
        };
    }
    let levels: usize = match flag(args, "--levels") {
        Some(v) => v.parse().map_err(|_| format!("bad --levels {v}"))?,
        None => 4,
    };
    let criterion = match flag(args, "--criterion") {
        Some("pagerank") => RankingCriterion::PageRank,
        Some("hits") => RankingCriterion::HitsAuthority,
        Some("degree") | None => RankingCriterion::Degree,
        Some(other) => return Err(format!("unknown criterion {other}")),
    };
    cfg.hierarchy = HierarchyConfig {
        levels,
        method: AbstractionMethod::Filter {
            criterion,
            fraction: 0.3,
        },
    };
    let (_db, report) = preprocess(&graph, Path::new(db_path), &cfg).map_err(|e| e.to_string())?;
    println!(
        "built {} layers into {db_path} (k = {}, edge cut {})",
        report.layer_sizes.len(),
        report.k,
        report.edge_cut
    );
    let t = &report.times;
    println!(
        "step times: 1) partition {:.2?}  2) layout {:.2?}  3) organize {:.2?}  4) abstraction {:.2?}  5) indexing {:.2?}",
        t.partitioning, t.layout, t.organize, t.abstraction, t.indexing
    );
    Ok(())
}

fn open_db(path: &str) -> Result<GraphDb, String> {
    GraphDb::open(Path::new(path)).map_err(|e| format!("open {path}: {e}"))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [db_path, ..] = args else {
        return Err("info needs <db>".into());
    };
    let db = open_db(db_path)?;
    println!("{db_path}: {} layers", db.layer_count());
    for i in 0..db.layer_count() {
        let layer = db.layer(i).expect("index in range");
        println!("  layer {i} ({}): {} rows", layer.name(), layer.row_count());
    }
    Ok(())
}

fn cmd_window(args: &[String]) -> Result<(), String> {
    let [db_path, layer, minx, miny, maxx, maxy, ..] = args else {
        return Err("window needs <db> <layer> <minx> <miny> <maxx> <maxy>".into());
    };
    let layer: usize = layer.parse().map_err(|_| "bad layer index")?;
    let parse = |v: &String| v.parse::<f64>().map_err(|_| format!("bad coordinate {v}"));
    let rect = Rect::new(parse(minx)?, parse(miny)?, parse(maxx)?, parse(maxy)?);
    let qm = QueryManager::new(open_db(db_path)?);
    let resp = qm.window_query(layer, &rect).map_err(|e| e.to_string())?;
    println!("{}", resp.json.text);
    let source = if resp.cache_hit {
        "cache-hit"
    } else if resp.delta {
        "delta"
    } else {
        "cold"
    };
    eprintln!(
        "# {} nodes, {} edges; db {:.3} ms, json {:.3} ms; {source}, {} reused / {} fetched",
        resp.json.node_count,
        resp.json.edge_count,
        resp.db_ms,
        resp.build_json_ms,
        resp.rows_reused,
        resp.rows_fetched
    );
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let [db_path, layer, keyword @ ..] = args else {
        return Err("search needs <db> <layer> <keyword...>".into());
    };
    if keyword.is_empty() {
        return Err("search needs a keyword".into());
    }
    let layer: usize = layer.parse().map_err(|_| "bad layer index")?;
    let qm = QueryManager::new(open_db(db_path)?);
    let hits = qm
        .keyword_search(layer, &keyword.join(" "))
        .map_err(|e| e.to_string())?;
    println!("{} hit(s)", hits.len());
    for h in hits.iter().take(25) {
        println!(
            "  node {} @ ({:.1}, {:.1}): {}",
            h.node_id, h.position.x, h.position.y, h.label
        );
    }
    Ok(())
}

fn cmd_focus(args: &[String]) -> Result<(), String> {
    let [db_path, layer, node, ..] = args else {
        return Err("focus needs <db> <layer> <node-id>".into());
    };
    let layer: usize = layer.parse().map_err(|_| "bad layer index")?;
    let node: u64 = node.parse().map_err(|_| "bad node id")?;
    let qm = QueryManager::new(open_db(db_path)?);
    let rows = qm.focus_on_node(layer, node).map_err(|e| e.to_string())?;
    println!("{} incident edge(s)", rows.len());
    for (_, r) in rows.iter().take(25) {
        println!(
            "  {} --{}--> {}",
            r.node1_label, r.edge_label, r.node2_label
        );
    }
    Ok(())
}

/// `gvdb serve`: open one or more preprocessed databases as a shared
/// workspace and serve them over HTTP (the `/v1` typed API, plus the
/// deprecated legacy routes) until the process is killed.
///
/// * `gvdb serve graph.db` — one dataset, named `default`.
/// * `gvdb serve acm=acm.gvdb dblp=dblp.gvdb` — several datasets behind
///   the `dataset=` selector, each with its own sessions and epochs.
/// * `gvdb serve --workspace ./data` — every `*.gvdb` in the directory.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use graphvizdb::core::SharedWorkspace;
    use graphvizdb::replication::{FollowerRepl, LeaderRepl, RouterRepl, RouterService};
    use graphvizdb::server::{Server, ServerConfig};
    use std::sync::Arc;
    use std::time::Duration;

    let mut config = ServerConfig::default();
    if let Some(addr) = flag(args, "--addr") {
        config.addr = addr.to_string();
    }
    if let Some(workers) = flag(args, "--workers") {
        config.workers = workers
            .parse()
            .map_err(|_| format!("bad --workers {workers}"))?;
    }
    if let Some(backlog) = flag(args, "--backlog") {
        config.backlog = backlog
            .parse()
            .map_err(|_| format!("bad --backlog {backlog}"))?;
    }
    if let Some(max) = flag(args, "--max-connections") {
        config.max_connections = max
            .parse()
            .map_err(|_| format!("bad --max-connections {max}"))?;
    }
    if let Some(bytes) = flag(args, "--outbox-bytes") {
        config.outbox_bytes = bytes
            .parse()
            .map_err(|_| format!("bad --outbox-bytes {bytes}"))?;
    }
    if let Some(key) = flag(args, "--api-key") {
        config.api_key = Some(key.to_string());
    }
    config.read_only = flag_all(args, "--read-only")
        .into_iter()
        .map(String::from)
        .collect();
    // Operational escape hatch: refuse `encoding=packed` negotiation and
    // serve every stream as plain JSON frames (e.g. when debugging a
    // client with a packet capture).
    config.plain_frames = args.iter().any(|a| a == "--plain-frames");

    // Replication / sharding roles.
    let replicate_to: Vec<String> = flag_all(args, "--replicate-to")
        .into_iter()
        .map(String::from)
        .collect();
    let follow = flag(args, "--follow").map(String::from);
    let router_mode = args.iter().any(|a| a == "--router");
    let shards: Vec<String> = flag_all(args, "--shard")
        .into_iter()
        .map(String::from)
        .collect();
    let ship_ms: u64 = match flag(args, "--ship-interval-ms") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad --ship-interval-ms {v}"))?,
        None => 500,
    };
    let poll_ms: u64 = match flag(args, "--poll-ms") {
        Some(v) => v.parse().map_err(|_| format!("bad --poll-ms {v}"))?,
        None => 500,
    };
    let shardmap_out = flag(args, "--shardmap-out");
    if follow.is_some() && !replicate_to.is_empty() {
        return Err("--follow and --replicate-to are different roles; pick one".into());
    }
    if router_mode && (follow.is_some() || !replicate_to.is_empty()) {
        return Err("--router cannot be combined with --follow or --replicate-to".into());
    }
    if !shards.is_empty() && !router_mode {
        return Err("--shard only makes sense with --router".into());
    }

    // Router: no local datasets at all — just shard addresses to fan out
    // over. Short-circuits before any workspace handling.
    if router_mode {
        if shards.is_empty() {
            return Err("--router needs at least one --shard HOST:PORT".into());
        }
        if !serve_positionals(args)?.is_empty() {
            return Err("--router takes no dataset arguments; list --shard peers instead".into());
        }
        let shard_count = shards.len();
        let router = RouterService::connect(shards).map_err(|e| format!("router: {e}"))?;
        if let Some(out) = shardmap_out {
            std::fs::write(out, router.shard_map_json())
                .map_err(|e| format!("write {out}: {e}"))?;
        }
        config.repl = Some(Arc::new(RouterRepl::new(&router)));
        let server = Server::start(Arc::new(router), config).map_err(|e| format!("bind: {e}"))?;
        println!(
            "graphvizdb router over {shard_count} shard(s) on http://{}",
            server.addr()
        );
        println!("windows/searches/aggregates fan out and merge; shard map at /v1/shardmap");
        println!("writes are refused here — apply them on the leader");
        server.wait();
        return Ok(());
    }

    let workspace = Arc::new(SharedWorkspace::new());
    if let Some(dir) = flag(args, "--workspace") {
        let entries = std::fs::read_dir(dir).map_err(|e| format!("read {dir}: {e}"))?;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("gvdb") {
                continue;
            }
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| format!("unusable file name {}", path.display()))?
                .to_string();
            workspace
                .open(&name, &path)
                .map_err(|e| format!("open {}: {e}", path.display()))?;
        }
        if workspace.is_empty() {
            return Err(format!("no *.gvdb files in {dir}"));
        }
    }
    // Positional dataset specs: `<name>=<path>`, or a bare `<path>`
    // serving as dataset `default` (the backwards-compatible form).
    for arg in serve_positionals(args)? {
        let (name, path) = match arg.split_once('=') {
            Some((name, path)) if !name.is_empty() => (name, path),
            _ => ("default", arg),
        };
        workspace
            .open(name, Path::new(path))
            .map_err(|e| format!("open {path}: {e}"))?;
    }
    if workspace.is_empty() {
        return Err("serve needs <db>, <name>=<path>... or --workspace <dir>".into());
    }

    // Wire the replication personality. Any single-dataset server is a
    // potential leader — it serves `/v1/repl/*` so followers can pull —
    // and `--replicate-to` additionally pushes fresh checkpoints.
    // `--follow` makes this node a read-only replica of a leader.
    let mut _follower_loop = None;
    let mut _shipper_loop = None;
    if let Some(leader_addr) = follow {
        if workspace.len() != 1 {
            return Err("--follow replicates exactly one dataset; serve a single <db>".into());
        }
        let (name, qm) = workspace.entries().pop().expect("one dataset");
        let follower = FollowerRepl::new(qm, leader_addr.clone());
        _follower_loop = Some(follower.start(Duration::from_millis(poll_ms.max(1))));
        // A replica that took local writes would diverge from the shipped
        // checkpoint stream, so the followed dataset is forced read-only.
        if !config.read_only.contains(&name) {
            config.read_only.push(name);
        }
        config.repl = Some(follower);
        println!("following {leader_addr} (poll every {poll_ms}ms); local writes are refused");
    } else if workspace.len() == 1 {
        let (_, qm) = workspace.entries().pop().expect("one dataset");
        let leader = LeaderRepl::new(qm);
        if !replicate_to.is_empty() {
            _shipper_loop = Some(leader.start_shipper(
                replicate_to.clone(),
                config.api_key.clone(),
                Duration::from_millis(ship_ms.max(1)),
            ));
            println!(
                "shipping checkpoints to {} every {ship_ms}ms",
                replicate_to.join(", ")
            );
        }
        config.repl = Some(leader);
    } else if !replicate_to.is_empty() {
        return Err("--replicate-to requires serving exactly one dataset".into());
    }

    let datasets = workspace.names().join(", ");
    let count = workspace.len();
    let gated = config.api_key.is_some();
    let read_only = config.read_only.join(", ");
    let server = Server::start(workspace, config).map_err(|e| format!("bind: {e}"))?;
    println!(
        "graphvizdb serving {count} dataset(s) [{datasets}] on http://{}",
        server.addr()
    );
    println!("v1 API: /v1/datasets /v1/layers /v1/window /v1/search /v1/focus /v1/edge (POST) /v1/edge/delete (POST) /v1/session/new /v1/session/close /v1/flush (POST) /v1/stats /v1/healthz");
    println!("window/search stream typed frames over chunked encoding (stream=0 or Accept: application/json for the buffered envelope)");
    if gated {
        println!("mutations + flush require 'Authorization: Bearer <api-key>'");
    }
    if !read_only.is_empty() {
        println!("read-only dataset(s): {read_only}");
    }
    println!("legacy routes (/window /search /stats ...) remain as deprecated shims");
    server.wait();
    Ok(())
}

/// The perf-trajectory smoke bench: a synthetic patent-like dataset, one
/// interactive pan trajectory, cold vs delta execution, written to a JSON
/// file (`BENCH_pan.json` by default) so successive PRs can diff the
/// numbers. Runs in seconds; CI executes it on every push.
fn cmd_bench_smoke(args: &[String]) -> Result<(), String> {
    use graphvizdb::prelude::{patent_like, CitationConfig};
    use gvdb_bench::{pan_trajectory, prepare};
    use std::time::Instant;

    let out = flag(args, "--out").unwrap_or("BENCH_pan.json");
    // Default dataset size is chosen so one viewport's heap pages exceed
    // the default buffer pool: cold pans then pay real page I/O, which is
    // exactly the regime the delta path exists for (and the paper's own
    // setting — datasets far larger than the 6 GB MySQL cache).
    let nodes: usize = match flag(args, "--nodes") {
        Some(v) => v.parse().map_err(|_| format!("bad --nodes {v}"))?,
        None => 12_000,
    };
    let pans: usize = match flag(args, "--pans") {
        Some(v) => v.parse().map_err(|_| format!("bad --pans {v}"))?,
        None => 40,
    };
    let overlap: f64 = match flag(args, "--overlap") {
        Some(v) => v.parse().map_err(|_| format!("bad --overlap {v}"))?,
        None => 0.8,
    };
    let side_frac: f64 = match flag(args, "--side") {
        Some(v) => v.parse().map_err(|_| format!("bad --side {v}"))?,
        None => 0.3,
    };
    if !(0.0..1.0).contains(&overlap) {
        return Err(format!("--overlap must be in [0, 1), got {overlap}"));
    }

    let graph = patent_like(CitationConfig {
        nodes,
        avg_citations: 4.34,
        ..Default::default()
    });
    eprintln!(
        "bench-smoke: {} nodes, {} edges; preprocessing…",
        graph.node_count(),
        graph.edge_count()
    );
    let (db, _report, bounds, path) = prepare(&graph, "smoke");
    let side = (bounds.width().min(bounds.height()) * side_frac).max(1.0);
    let windows = pan_trajectory(&bounds, side, overlap, pans);

    // Delta manager: the default incremental path. Cold manager: a second
    // handle on the same file with partial hits disabled and a single
    // one-entry cache shard (each insert evicts the previous window), so
    // every query re-runs the full R-tree descent + heap fetch even if
    // the trajectory ever revisits a window.
    let qm_delta = QueryManager::new(db);
    let qm_cold = QueryManager::with_cache_config(
        GraphDb::open(Path::new(&path)).map_err(|e| e.to_string())?,
        gvdb_bench::uncached_cache_config(),
    );

    let mut cold_ms = Vec::with_capacity(windows.len());
    let mut delta_ms = Vec::with_capacity(windows.len());
    let mut cold_db = Vec::new();
    let mut cold_json = Vec::new();
    let mut delta_db = Vec::new();
    let mut delta_json = Vec::new();
    let (mut cold_fetched, mut delta_fetched, mut delta_reused) = (0u64, 0u64, 0u64);
    let cold_pool0 = qm_cold.pool_stats();
    let delta_pool0 = qm_delta.pool_stats();
    for (i, w) in windows.iter().enumerate() {
        let t = Instant::now();
        let cold = qm_cold.window_query(0, w).map_err(|e| e.to_string())?;
        cold_ms.push(t.elapsed().as_secs_f64() * 1e3);
        cold_fetched += cold.rows_fetched as u64;
        cold_db.push(cold.db_ms);
        cold_json.push(cold.build_json_ms);
        if cold.delta || cold.cache_hit {
            return Err(format!("pan {i}: cold baseline was served from cache"));
        }

        let t = Instant::now();
        let delta = qm_delta.window_query(0, w).map_err(|e| e.to_string())?;
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if i > 0 {
            // The first query has no anchor; it is cold by definition and
            // excluded from the delta series.
            delta_ms.push(ms);
            delta_fetched += delta.rows_fetched as u64;
            delta_reused += delta.rows_reused as u64;
            delta_db.push(delta.db_ms);
            delta_json.push(delta.build_json_ms);
            if !delta.delta {
                eprintln!("warning: pan {i} did not take the delta path");
            }
        }
        if delta.rows != cold.rows {
            return Err(format!("pan {i}: delta result diverged from cold"));
        }
    }
    let cold_pool = qm_cold.pool_stats().since(&cold_pool0);
    let delta_pool = qm_delta.pool_stats().since(&delta_pool0);

    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if xs.is_empty() {
            0.0
        } else {
            xs[xs.len() / 2]
        }
    };
    let cold_median = median(&mut cold_ms);
    let delta_median = median(&mut delta_ms);
    let speedup = if delta_median > 0.0 {
        cold_median / delta_median
    } else {
        f64::INFINITY
    };

    // Residency gauges from the delta manager's pool after the full
    // trajectory. With delta/RLE leaf pages a resident frame carries
    // `compression_ratio`× the plain-format bytes — and therefore that
    // many times the rows — so the pool's effective row capacity per
    // physical byte is the plain-page figure scaled by the ratio.
    // `rows_per_pool_byte` prices the resident logical bytes at the
    // dataset's average plain row cost (heap record + index entry ≈
    // logical bytes / rows when fully resident); recorded so CI can
    // watch the pool's effective capacity across PRs.
    let rows_per_pool_byte = if delta_pool.physical_bytes > 0 {
        let plain_bytes_per_row = if delta_pool.logical_bytes > 0 {
            delta_pool.logical_bytes as f64 / graph.edge_count().max(1) as f64
        } else {
            1.0
        };
        delta_pool.compression_ratio() / plain_bytes_per_row.max(f64::MIN_POSITIVE)
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"dataset\": \"patent_like\",\n  \"nodes\": {},\n  \"edges\": {},\n  \"pans\": {},\n  \"overlap\": {:.2},\n  \"window_side\": {:.1},\n  \"cold\": {{ \"median_ms\": {:.4}, \"db_ms\": {:.4}, \"json_ms\": {:.4}, \"rows_fetched\": {} }},\n  \"delta\": {{ \"median_ms\": {:.4}, \"db_ms\": {:.4}, \"json_ms\": {:.4}, \"rows_fetched\": {}, \"rows_reused\": {} }},\n  \"speedup\": {:.2},\n  \"pool_hit_rate\": {{ \"cold\": {:.4}, \"delta\": {:.4} }},\n  \"pool_residency\": {{ \"logical_bytes\": {}, \"physical_bytes\": {}, \"compression_ratio\": {:.2}, \"rows_per_pool_byte\": {:.5} }}\n}}\n",
        graph.node_count(),
        graph.edge_count(),
        pans,
        overlap,
        side,
        cold_median,
        median(&mut cold_db),
        median(&mut cold_json),
        cold_fetched,
        delta_median,
        median(&mut delta_db),
        median(&mut delta_json),
        delta_fetched,
        delta_reused,
        speedup,
        cold_pool.hit_rate(),
        delta_pool.hit_rate(),
        delta_pool.logical_bytes,
        delta_pool.physical_bytes,
        delta_pool.compression_ratio(),
        rows_per_pool_byte
    );
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("{json}");
    println!(
        "wrote {out}: delta {:.3} ms vs cold {:.3} ms median ({speedup:.1}x), {} vs {} rows fetched",
        delta_median, cold_median, delta_fetched, cold_fetched
    );

    let conc_out = flag(args, "--concurrency-out").unwrap_or("BENCH_concurrency.json");
    bench_concurrency(Path::new(&path), &bounds, conc_out)?;

    let http_out = flag(args, "--http-out").unwrap_or("BENCH_http.json");
    bench_http(Path::new(&path), &bounds, http_out)?;

    let stream_out = flag(args, "--stream-out").unwrap_or("BENCH_stream.json");
    bench_stream(Path::new(&path), &bounds, stream_out)?;

    let connections_out = flag(args, "--connections-out").unwrap_or("BENCH_connections.json");
    bench_connections(Path::new(&path), &bounds, connections_out)?;

    let filter_out = flag(args, "--filter-out").unwrap_or("BENCH_filter.json");
    bench_filter(Path::new(&path), &bounds, filter_out)?;

    let cluster_out = flag(args, "--cluster-out").unwrap_or("BENCH_cluster.json");
    bench_cluster(Path::new(&path), &bounds, cluster_out)?;

    std::fs::remove_file(&path).ok();
    Ok(())
}

/// The attribute-pushdown smoke bench: one selective label-prefix
/// predicate over the whole plane, answered through the chooser's index
/// path (trie probe + B+-tree row lookups + residual filter) and through
/// a forced scan (full R-tree descent + heap fetch, filter after). Both
/// run on a manager whose cache evicts every insert — and filtered cold
/// windows are never cached anyway — so every iteration pays the real
/// access-path cost. The two paths must return identical row sets, the
/// predicate must stay at or under 10% selectivity, and the index median
/// must never lose to the scan median; CI additionally gates a 2x win.
/// Filtered aggregation (count + degree histogram) is timed on the same
/// predicate.
fn bench_filter(
    db_path: &Path,
    bounds: &graphvizdb::spatial::Rect,
    out: &str,
) -> Result<(), String> {
    use graphvizdb::api::{AggOp, Field, Predicate};
    use graphvizdb::core::FilterMode;
    use std::time::Instant;

    const ITERS: usize = 15;
    const BUCKETS: usize = 16;

    let qm = QueryManager::with_cache_config(
        GraphDb::open(db_path).map_err(|e| e.to_string())?,
        gvdb_bench::uncached_cache_config(),
    );
    let total_rows = {
        let db = qm.db();
        db.layer(0).ok_or("bench db has no layer 0")?.row_count()
    };
    // patent_like labels every node `patent US3xxxxxx`; this prefix keeps
    // roughly 100 of the 12 000 default nodes, so the rows touching them
    // sit well under the 10% selectivity bound the acceptance gate wants.
    let pred = Predicate::NodeLabelPrefix("patent US30000".into());

    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if xs.is_empty() {
            0.0
        } else {
            xs[xs.len() / 2]
        }
    };
    let rids_of = |resp: &graphvizdb::core::WindowResponse| -> Vec<graphvizdb::storage::RowId> {
        let mut rids: Vec<_> = resp.rows.iter().map(|(rid, _)| *rid).collect();
        rids.sort_unstable();
        rids
    };

    let mut index_ms = Vec::with_capacity(ITERS);
    let mut scan_ms = Vec::with_capacity(ITERS);
    let mut matched_rows = 0u64;
    for i in 0..ITERS {
        let t = Instant::now();
        let via_index = qm
            .window_query_filtered(0, bounds, None, &pred, FilterMode::ForceIndex)
            .map_err(|e| e.to_string())?;
        index_ms.push(t.elapsed().as_secs_f64() * 1e3);

        let t = Instant::now();
        let via_scan = qm
            .window_query_filtered(0, bounds, None, &pred, FilterMode::ForceScan)
            .map_err(|e| e.to_string())?;
        scan_ms.push(t.elapsed().as_secs_f64() * 1e3);

        if via_index.cache_hit || via_scan.cache_hit || via_index.delta || via_scan.delta {
            return Err(format!("filter iter {i}: a mode was served from cache"));
        }
        if rids_of(&via_index) != rids_of(&via_scan) {
            return Err(format!("filter iter {i}: index and scan rows diverged"));
        }
        matched_rows = via_index.rows.len() as u64;
    }
    let selectivity = matched_rows as f64 / total_rows.max(1) as f64;
    if selectivity > 0.10 {
        return Err(format!(
            "filter predicate selects {selectivity:.3} of the window; the bench needs <= 0.10"
        ));
    }

    // One Auto-mode query to record which path the chooser actually picks
    // at this selectivity.
    let (idx0, scan0) = qm.chooser_counts();
    qm.window_query_filtered(0, bounds, None, &pred, FilterMode::Auto)
        .map_err(|e| e.to_string())?;
    let (idx1, scan1) = qm.chooser_counts();
    let auto_decision = if idx1 > idx0 {
        "index"
    } else if scan1 > scan0 {
        "scan"
    } else {
        "unknown"
    };

    let mut count_ms = Vec::with_capacity(ITERS);
    let mut hist_ms = Vec::with_capacity(ITERS);
    let mut agg_rows = 0u64;
    let mut agg_nodes = 0u64;
    for _ in 0..ITERS {
        let t = Instant::now();
        let (count, _) = qm
            .aggregate_window(0, bounds, Some(&pred), &AggOp::Count, FilterMode::Auto)
            .map_err(|e| e.to_string())?;
        count_ms.push(t.elapsed().as_secs_f64() * 1e3);
        agg_rows = count.rows;
        agg_nodes = count.nodes;

        let t = Instant::now();
        qm.aggregate_window(
            0,
            bounds,
            Some(&pred),
            &AggOp::Histogram {
                field: Field::Degree,
                buckets: BUCKETS,
            },
            FilterMode::Auto,
        )
        .map_err(|e| e.to_string())?;
        hist_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    if agg_rows != matched_rows {
        return Err(format!(
            "aggregate counted {agg_rows} rows but the filtered window held {matched_rows}"
        ));
    }

    let index_median = median(&mut index_ms);
    let scan_median = median(&mut scan_ms);
    if index_median > scan_median {
        return Err(format!(
            "pushdown regression: index path {index_median:.3} ms is slower than scan {scan_median:.3} ms"
        ));
    }
    let speedup = if index_median > 0.0 {
        scan_median / index_median
    } else {
        f64::INFINITY
    };

    let json = format!(
        "{{\n  \"predicate\": \"node_label_prefix:patent US30000\",\n  \"iters\": {ITERS},\n  \"window_rows\": {total_rows},\n  \"matched_rows\": {matched_rows},\n  \"matched_nodes\": {agg_nodes},\n  \"selectivity\": {selectivity:.5},\n  \"pushdown_index_median_ms\": {index_median:.4},\n  \"scan_filter_median_ms\": {scan_median:.4},\n  \"speedup\": {speedup:.2},\n  \"auto_decision\": \"{auto_decision}\",\n  \"aggregate\": {{ \"count_median_ms\": {:.4}, \"histogram_median_ms\": {:.4}, \"buckets\": {BUCKETS} }}\n}}\n",
        median(&mut count_ms),
        median(&mut hist_ms),
    );
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("{json}");
    println!(
        "wrote {out}: index {index_median:.3} ms vs scan {scan_median:.3} ms median ({speedup:.1}x) at {selectivity:.4} selectivity"
    );
    Ok(())
}

/// The scale-out smoke bench: a real 3-node replication cluster (one
/// leader, two followers bootstrapped from a file copy and synced over
/// HTTP) plus a fan-out router, all in-process. Every node gets **one**
/// worker thread, so a node is a fixed unit of serving capacity and the
/// cluster's read throughput can actually exceed a single node's on the
/// same host — that is the claim replicas exist to prove. Measures:
///
/// * **single** — N client threads all hammering the leader.
/// * **replicated** — the same N threads spread round-robin across all
///   three replicas (each serves the identical dataset).
/// * **router** — whole-bounds windows through the fan-out/merge router
///   vs the same window asked of the leader directly: the price of
///   shard fan-out + RowId-ordered merge on one host.
///
/// `host_cpus` is recorded because replica scaling on a single host is
/// physically capped by the core count: CI only holds the ≥2x scaling
/// line when the host has at least 4 CPUs, and otherwise just requires
/// the cluster not to be slower than one node.
fn bench_cluster(
    db_path: &Path,
    bounds: &graphvizdb::spatial::Rect,
    out: &str,
) -> Result<(), String> {
    use graphvizdb::api::RectDto;
    use graphvizdb::client::{ClusterClient, GvdbClient, WindowParams};
    use graphvizdb::replication::{FollowerRepl, LeaderRepl, RouterRepl, RouterService};
    use graphvizdb::server::{Server, ServerConfig};
    use std::sync::Arc;
    use std::time::Instant;

    const CLIENT_THREADS: usize = 6;
    const REQUESTS: usize = 80;
    const ROUTER_ITERS: usize = 12;

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let one_worker = || ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };

    // Leader: the bench db itself, serving checkpoints via its provider.
    let leader_qm = Arc::new(QueryManager::new(
        GraphDb::open(db_path).map_err(|e| e.to_string())?,
    ));
    let leader_seq = leader_qm.checkpoint_seq();
    let mut config = one_worker();
    config.repl = Some(LeaderRepl::new(Arc::clone(&leader_qm)));
    let leader_srv = Server::start(leader_qm, config).map_err(|e| format!("bind: {e}"))?;
    let leader_addr = leader_srv.addr().to_string();

    // Followers: deployment bootstrap is a copy of the quiescent leader
    // file; one sync pass against the live leader proves each replica
    // sits at the leader's checkpoint position before any timing runs.
    let mut copies = Vec::new();
    let mut followers = Vec::new();
    let mut servers = vec![leader_srv];
    for i in 1..3 {
        let copy = db_path.with_extension(format!("replica{i}.gvdb"));
        std::fs::copy(db_path, &copy).map_err(|e| format!("copy {}: {e}", copy.display()))?;
        let qm = Arc::new(QueryManager::new(
            GraphDb::open(&copy).map_err(|e| e.to_string())?,
        ));
        let follower = FollowerRepl::new(Arc::clone(&qm), leader_addr.clone());
        let synced = follower.sync_once().map_err(|e| format!("sync: {e}"))?;
        if synced != leader_seq {
            return Err(format!(
                "replica {i} synced to seq {synced}, leader is at {leader_seq}"
            ));
        }
        let mut config = one_worker();
        config.repl = Some(follower.clone());
        let srv = Server::start(qm, config).map_err(|e| format!("bind: {e}"))?;
        copies.push(copy);
        followers.push(follower);
        servers.push(srv);
    }
    let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();

    // The interactive workload: a small ring of viewports, so after one
    // warm lap the servers answer from their window caches and the
    // measurement prices the serving path (HTTP + cache + serialization),
    // not cold disk — a node's single worker is then the honest
    // bottleneck the replicas multiply.
    let side = (bounds.width().min(bounds.height()) * 0.25).max(1.0);
    let view = |j: usize| -> RectDto {
        let step = side * 0.5 * (j % 8) as f64;
        RectDto {
            min_x: bounds.min_x + step,
            min_y: bounds.min_y,
            max_x: bounds.min_x + step + side,
            max_y: bounds.min_y + side,
        }
    };
    let run = |targets: &[&str]| -> Result<(f64, f64), String> {
        let total = CLIENT_THREADS * REQUESTS;
        let t0 = Instant::now();
        let mut lat: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENT_THREADS)
                .map(|t| {
                    let addr = targets[t % targets.len()].to_string();
                    scope.spawn(move || -> Result<Vec<f64>, String> {
                        let client = GvdbClient::new(addr);
                        let mut lat = Vec::with_capacity(REQUESTS);
                        for j in 0..REQUESTS {
                            let params = WindowParams {
                                window: view(t + j),
                                ..WindowParams::default()
                            };
                            let t = Instant::now();
                            client.window(&params).map_err(|e| e.to_string())?;
                            lat.push(t.elapsed().as_secs_f64() * 1e3);
                        }
                        Ok(lat)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|_| "client thread panicked".to_string())?)
                .collect::<Result<Vec<_>, _>>()
        })?
        .into_iter()
        .flatten()
        .collect();
        let elapsed = t0.elapsed().as_secs_f64();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = lat.get(lat.len() / 2).copied().unwrap_or(0.0);
        Ok((total as f64 / elapsed.max(f64::MIN_POSITIVE), median))
    };

    // One warm lap across every replica, then the timed runs.
    for addr in &addrs {
        run(&[addr])?;
    }
    let (single_qps, single_median) = run(&[&addrs[0]])?;
    let targets: Vec<&str> = addrs.iter().map(String::as_str).collect();
    let (repl_qps, repl_median) = run(&targets)?;
    let scaling = if single_qps > 0.0 {
        repl_qps / single_qps
    } else {
        f64::INFINITY
    };

    // Router fan-out: the whole bench plane through shard slices +
    // RowId-ordered merge, against the same window answered by the
    // leader alone.
    let router = RouterService::connect(addrs.clone()).map_err(|e| format!("router: {e}"))?;
    let config = ServerConfig {
        repl: Some(Arc::new(RouterRepl::new(&router))),
        ..ServerConfig::default()
    };
    let router_srv = Server::start(Arc::new(router), config).map_err(|e| format!("bind: {e}"))?;
    let cluster = ClusterClient::from_router(&router_srv.addr().to_string())
        .map_err(|e| format!("cluster client: {e}"))?;
    let whole = WindowParams {
        window: RectDto {
            min_x: bounds.min_x - 1.0,
            min_y: bounds.min_y - 1.0,
            max_x: bounds.max_x + 1.0,
            max_y: bounds.max_y + 1.0,
        },
        ..WindowParams::default()
    };
    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if xs.is_empty() {
            0.0
        } else {
            xs[xs.len() / 2]
        }
    };
    let direct_client = GvdbClient::new(addrs[0].clone());
    let mut fanout_ms = Vec::with_capacity(ROUTER_ITERS);
    let mut direct_ms = Vec::with_capacity(ROUTER_ITERS);
    for _ in 0..ROUTER_ITERS {
        let t = Instant::now();
        cluster
            .window_graph(&whole)
            .map_err(|e| format!("fan-out window: {e}"))?;
        fanout_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        direct_client
            .window(&whole)
            .map_err(|e| format!("direct window: {e}"))?;
        direct_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let fanout_median = median(&mut fanout_ms);
    let direct_median = median(&mut direct_ms);
    let fanout_overhead = if direct_median > 0.0 {
        fanout_median / direct_median
    } else {
        f64::INFINITY
    };

    router_srv.shutdown();
    for srv in servers {
        srv.shutdown();
    }
    drop(followers);
    for copy in &copies {
        std::fs::remove_file(copy).ok();
    }

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"replicas\": 3,\n  \"workers_per_node\": 1,\n  \"client_threads\": {CLIENT_THREADS},\n  \"requests_per_thread\": {REQUESTS},\n  \"checkpoint_seq\": {leader_seq},\n  \"single\": {{ \"qps\": {single_qps:.1}, \"median_ms\": {single_median:.4} }},\n  \"replicated\": {{ \"qps\": {repl_qps:.1}, \"median_ms\": {repl_median:.4} }},\n  \"scaling\": {scaling:.2},\n  \"router\": {{ \"fanout_median_ms\": {fanout_median:.4}, \"direct_median_ms\": {direct_median:.4}, \"overhead\": {fanout_overhead:.2}, \"iters\": {ROUTER_ITERS} }}\n}}\n"
    );
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("{json}");
    println!(
        "wrote {out}: 3-replica cluster {repl_qps:.0} qps vs single node {single_qps:.0} qps ({scaling:.2}x on {host_cpus} cpus); router fan-out {fanout_median:.2} ms vs direct {direct_median:.2} ms"
    );
    Ok(())
}

/// The connection-scaling smoke bench for the event-driven server core:
/// an active client's cache-hit `/v1/window` latency is measured twice on
/// a `--workers 4` server — first with 10 idle keep-alive connections
/// open, then with 1000. Idle connections are just registered fds in the
/// reactor (no thread, no worker), so the loaded median must stay within
/// 1.5x of the baseline. Every idle connection is proven live with one
/// served request when opened and one more after the measurement.
fn bench_connections(
    db_path: &Path,
    bounds: &graphvizdb::spatial::Rect,
    out: &str,
) -> Result<(), String> {
    use graphvizdb::api::ApiResponse;
    use graphvizdb::server::{Server, ServerConfig};
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;
    use std::sync::Arc;
    use std::time::Instant;

    const IDLE_BASELINE: usize = 10;
    const IDLE_LOADED: usize = 1000;
    const REQUESTS: usize = 200;
    const TARGET_RATIO: f64 = 1.5;

    let qm = Arc::new(QueryManager::new(
        GraphDb::open(db_path).map_err(|e| e.to_string())?,
    ));
    let server = Server::start(
        qm,
        ServerConfig {
            workers: 4,
            ..Default::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    let side = (bounds.width().min(bounds.height()) * 0.25).max(1.0);
    let target = format!(
        "/v1/window?stream=0&layer=0&minx={:.1}&miny={:.1}&maxx={:.1}&maxy={:.1}",
        bounds.min_x,
        bounds.min_y,
        bounds.min_x + side,
        bounds.min_y + side
    );
    let request_bytes = format!("GET {target} HTTP/1.1\r\nHost: b\r\n\r\n").into_bytes();

    fn read_response(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
                return Err("connection closed mid-response".into());
            }
            if line == "\r\n" {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().map_err(|_| "bad content-length")?;
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).map_err(|e| e.to_string())?;
        String::from_utf8(body).map_err(|e| e.to_string())
    }

    struct Conn {
        writer: TcpStream,
        reader: BufReader<TcpStream>,
    }
    let open_conn = |request: &[u8]| -> Result<Conn, String> {
        let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        let writer = stream.try_clone().map_err(|e| e.to_string())?;
        let mut conn = Conn {
            writer,
            reader: BufReader::new(stream),
        };
        // Prove the connection live (and registered) with one request.
        conn.writer.write_all(request).map_err(|e| e.to_string())?;
        read_response(&mut conn.reader)?;
        Ok(conn)
    };
    let measure = |request: &[u8]| -> Result<f64, String> {
        let mut active = open_conn(request)?;
        let mut ms = Vec::with_capacity(REQUESTS);
        for _ in 0..REQUESTS {
            let t = Instant::now();
            active
                .writer
                .write_all(request)
                .map_err(|e| e.to_string())?;
            read_response(&mut active.reader)?;
            ms.push(t.elapsed().as_secs_f64() * 1e3);
        }
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Ok(ms[ms.len() / 2])
    };
    let open_connections_gauge = || -> Result<u64, String> {
        let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        write!(
            stream,
            "GET /v1/stats HTTP/1.1\r\nHost: b\r\nAccept: application/json\r\nConnection: close\r\n\r\n"
        )
        .map_err(|e| e.to_string())?;
        let body = read_response(&mut BufReader::new(stream))?;
        match ApiResponse::from_json(&body) {
            Ok(ApiResponse::Stats(stats)) => Ok(stats.open_connections),
            other => Err(format!("not a stats response: {other:?}")),
        }
    };

    // Warm the window cache so the active client measures the hit path.
    let mut idle: Vec<Conn> = Vec::with_capacity(IDLE_LOADED);
    idle.push(open_conn(&request_bytes)?);

    // Baseline: 10 idle keep-alive connections open.
    while idle.len() < IDLE_BASELINE {
        idle.push(open_conn(&request_bytes)?);
    }
    let baseline_median = measure(&request_bytes)?;

    // Loaded: 1000 idle keep-alive connections open, all simultaneously
    // registered (the stats gauge proves it — it excludes its own probe).
    while idle.len() < IDLE_LOADED {
        idle.push(open_conn(&request_bytes)?);
    }
    let open_now = open_connections_gauge()?;
    if (open_now as usize) < IDLE_LOADED {
        return Err(format!(
            "only {open_now} connections open, expected >= {IDLE_LOADED}"
        ));
    }
    let loaded_median = measure(&request_bytes)?;

    // Every idle connection still serves (in opening order, so none has
    // sat idle past the keep-alive budget).
    for (i, conn) in idle.iter_mut().enumerate() {
        conn.writer
            .write_all(&request_bytes)
            .map_err(|e| format!("idle connection {i} is dead: {e}"))?;
        read_response(&mut conn.reader).map_err(|e| format!("idle connection {i}: {e}"))?;
    }
    server.shutdown();

    let ratio = if baseline_median > 0.0 {
        loaded_median / baseline_median
    } else {
        f64::INFINITY
    };
    let json = format!(
        "{{\n  \"path\": \"cache-hit /v1/window\",\n  \"workers\": 4,\n  \"requests\": {REQUESTS},\n  \"idle_connections_baseline\": {IDLE_BASELINE},\n  \"idle_connections_loaded\": {IDLE_LOADED},\n  \"open_connections_observed\": {open_now},\n  \"baseline_median_ms\": {baseline_median:.4},\n  \"loaded_median_ms\": {loaded_median:.4},\n  \"latency_ratio\": {ratio:.3},\n  \"target_ratio\": {TARGET_RATIO}\n}}\n"
    );
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("{json}");
    println!(
        "wrote {out}: active median {loaded_median:.3} ms with {IDLE_LOADED} idle connections vs {baseline_median:.3} ms with {IDLE_BASELINE} ({ratio:.2}x)"
    );
    if ratio > TARGET_RATIO {
        eprintln!(
            "warning: latency ratio {ratio:.2}x exceeds the {TARGET_RATIO}x target under idle-connection load"
        );
    }
    Ok(())
}

/// The streaming smoke bench: one large `/v1/window` request measured two
/// ways through `gvdb-client` — the **buffered** envelope (the whole body
/// must arrive before the client can paint anything) vs the **streamed**
/// frame protocol's time-to-first-row-batch. The request is identical
/// both ways, so the server-side query cost is too (at the default smoke
/// size the whole-plane result exceeds the window cache's per-shard byte
/// budget, so every query runs the full cold path on both variants); the
/// difference is the latency the frame protocol removes — with
/// streaming, the first paintable batch lands one chunk after the query,
/// regardless of how large the full payload is. Writes medians to `out`.
fn bench_stream(
    db_path: &Path,
    bounds: &graphvizdb::spatial::Rect,
    out: &str,
) -> Result<(), String> {
    use graphvizdb::server::{Server, ServerConfig};
    use gvdb_client::{GvdbClient, WindowParams};
    use std::sync::Arc;
    use std::time::Instant;

    const REQUESTS: usize = 40;

    let qm = Arc::new(QueryManager::new(
        GraphDb::open(db_path).map_err(|e| e.to_string())?,
    ));
    let server = Server::start(qm, ServerConfig::default()).map_err(|e| format!("bind: {e}"))?;
    let client = GvdbClient::new(server.addr().to_string());

    // The whole layer-0 plane: the largest window the dataset can serve,
    // which is exactly where buffered time-to-first-row is worst.
    let params = WindowParams {
        window: gvdb_api::RectDto {
            min_x: bounds.min_x,
            min_y: bounds.min_y,
            max_x: bounds.max_x,
            max_y: bounds.max_y,
        },
        ..Default::default()
    };

    // Warm-up: one buffered request primes the buffer pool (the result
    // itself is too large for the window cache, so the measured queries
    // below all run the cold path — identically for both variants).
    let (_, graph) = client.window(&params).map_err(|e| e.to_string())?;
    let payload_bytes = graph.len();

    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if xs.is_empty() {
            0.0
        } else {
            xs[xs.len() / 2]
        }
    };

    let mut buffered_ms = Vec::with_capacity(REQUESTS);
    let mut rows = 0u64;
    for _ in 0..REQUESTS {
        let t = Instant::now();
        let (meta, graph) = client.window(&params).map_err(|e| e.to_string())?;
        buffered_ms.push(t.elapsed().as_secs_f64() * 1e3);
        rows = (meta.rows_reused + meta.rows_fetched) as u64;
        std::hint::black_box(graph);
    }

    let mut first_frame_ms = Vec::with_capacity(REQUESTS);
    let mut first_rows_ms = Vec::with_capacity(REQUESTS);
    let mut stream_total_ms = Vec::with_capacity(REQUESTS);
    let mut frames = 0u64;
    let mut streamed_rows = 0u64;
    let mut packed_payload = 0u64;
    for _ in 0..REQUESTS {
        let mut stream = client.window_stream(&params).map_err(|e| e.to_string())?;
        // The stream reports its own decode timing, measured from request
        // send — no wall-clock bookkeeping around the calls.
        first_frame_ms.push(stream.header_ms());
        let first = stream
            .next_batch_timed()
            .map_err(|e| e.to_string())?
            .ok_or("empty stream")?;
        // The client could paint `first.batch` right here.
        first_rows_ms.push(first.recv_ms);
        let mut batch_count = 1u64;
        let mut row_count = first.batch.len() as u64;
        while let Some(batch) = stream.next_batch().map_err(|e| e.to_string())? {
            batch_count += 1;
            row_count += batch.len() as u64;
        }
        stream_total_ms.push(stream.elapsed_ms());
        frames = batch_count;
        streamed_rows = row_count;
        // Streams negotiate `encoding=packed` by default, so this is the
        // compact row payload as it actually crossed the wire (frame
        // envelopes and base64 included) — comparable against the
        // buffered plain-JSON `payload_bytes` above.
        packed_payload = stream.rows_wire_bytes();
    }
    server.shutdown();
    if streamed_rows != rows {
        return Err(format!(
            "streamed rows {streamed_rows} diverged from buffered {rows}"
        ));
    }

    let buffered_median = median(&mut buffered_ms);
    let first_frame_median = median(&mut first_frame_ms);
    let first_rows_median = median(&mut first_rows_ms);
    let stream_total_median = median(&mut stream_total_ms);
    let ttff_speedup = if first_frame_median > 0.0 {
        buffered_median / first_frame_median
    } else {
        f64::INFINITY
    };
    let speedup = if first_rows_median > 0.0 {
        buffered_median / first_rows_median
    } else {
        f64::INFINITY
    };
    let total_ratio = if buffered_median > 0.0 {
        stream_total_median / buffered_median
    } else {
        f64::INFINITY
    };
    let chunk_rows = gvdb_api::DEFAULT_CHUNK_ROWS;
    let compression_ratio = if packed_payload > 0 {
        payload_bytes as f64 / packed_payload as f64
    } else {
        f64::INFINITY
    };
    let json = format!(
        "{{\n  \"requests\": {REQUESTS},\n  \"path\": \"whole layer-0 plane /v1/window (uncacheably large: every query runs cold)\",\n  \"rows\": {rows},\n  \"payload_bytes\": {payload_bytes},\n  \"payload_bytes_compressed\": {packed_payload},\n  \"payload_compression_ratio\": {compression_ratio:.2},\n  \"row_frames\": {frames},\n  \"chunk_rows\": {chunk_rows},\n  \"buffered_full_body_median_ms\": {buffered_median:.4},\n  \"stream_first_frame_median_ms\": {first_frame_median:.4},\n  \"stream_first_rows_median_ms\": {first_rows_median:.4},\n  \"stream_total_median_ms\": {stream_total_median:.4},\n  \"total_vs_buffered_ratio\": {total_ratio:.3},\n  \"ttff_speedup_vs_buffered\": {ttff_speedup:.2},\n  \"ttfr_speedup_vs_buffered\": {speedup:.2}\n}}\n"
    );
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("{json}");
    println!(
        "wrote {out}: first row batch in {first_rows_median:.3} ms vs {buffered_median:.3} ms buffered full body ({speedup:.1}x, {rows} rows / {frames} frames, total {stream_total_median:.3} ms = {total_ratio:.2}x buffered)"
    );
    if speedup < 3.0 {
        eprintln!("warning: time-to-first-rows speedup {speedup:.1}x is below the 3x target");
    }
    if total_ratio > 1.0 {
        eprintln!(
            "warning: streamed total {stream_total_median:.3} ms exceeds the buffered full body {buffered_median:.3} ms — the streamed path must strictly dominate"
        );
    }
    Ok(())
}

/// The HTTP smoke bench: the same cache-hit `/v1/window` request measured
/// two ways — **keep-alive** (one persistent connection, requests in
/// sequence) vs **connection-per-request** (`Connection: close`, a fresh
/// TCP handshake every time). Server-side the work is identical (an exact
/// window-cache hit, ~µs), so the difference is pure connection overhead —
/// the cost HTTP/1.1 keep-alive removes. Writes medians to `out`.
fn bench_http(db_path: &Path, bounds: &graphvizdb::spatial::Rect, out: &str) -> Result<(), String> {
    use graphvizdb::server::{Server, ServerConfig};
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;
    use std::sync::Arc;
    use std::time::Instant;

    const REQUESTS: usize = 300;

    let qm = Arc::new(QueryManager::new(
        GraphDb::open(db_path).map_err(|e| e.to_string())?,
    ));
    let server = Server::start(qm, ServerConfig::default()).map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    let side = (bounds.width().min(bounds.height()) * 0.25).max(1.0);
    let target = format!(
        "/v1/window?stream=0&layer=0&minx={:.1}&miny={:.1}&maxx={:.1}&maxy={:.1}",
        bounds.min_x,
        bounds.min_y,
        bounds.min_x + side,
        bounds.min_y + side
    );

    /// Read exactly one HTTP response (headers + Content-Length body).
    fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(), String> {
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
                return Err("connection closed mid-response".into());
            }
            if line == "\r\n" {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().map_err(|_| "bad content-length")?;
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).map_err(|e| e.to_string())?;
        Ok(())
    }

    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if xs.is_empty() {
            0.0
        } else {
            xs[xs.len() / 2]
        }
    };

    // Warm the window cache so both variants measure the hit path.
    {
        let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n"
        )
        .map_err(|e| e.to_string())?;
        let mut sink = String::new();
        stream
            .read_to_string(&mut sink)
            .map_err(|e| e.to_string())?;
    }

    // Keep-alive: one connection, REQUESTS sequential request/response
    // round-trips. The request is one `write_all` on a no-delay socket —
    // fragmented writes on a reused connection would measure Nagle +
    // delayed-ACK stalls, not the server.
    let keepalive_request = format!("GET {target} HTTP/1.1\r\nHost: b\r\n\r\n").into_bytes();
    let mut keepalive_ms = Vec::with_capacity(REQUESTS);
    {
        let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        for _ in 0..REQUESTS {
            let t = Instant::now();
            writer
                .write_all(&keepalive_request)
                .map_err(|e| e.to_string())?;
            read_response(&mut reader)?;
            keepalive_ms.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }

    // Connection-per-request: a fresh TCP handshake before every request.
    let close_request =
        format!("GET {target} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n").into_bytes();
    let mut per_conn_ms = Vec::with_capacity(REQUESTS);
    for _ in 0..REQUESTS {
        let t = Instant::now();
        let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        writer
            .write_all(&close_request)
            .map_err(|e| e.to_string())?;
        read_response(&mut reader)?;
        per_conn_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    server.shutdown();

    let keepalive_median = median(&mut keepalive_ms);
    let per_conn_median = median(&mut per_conn_ms);
    let speedup = if keepalive_median > 0.0 {
        per_conn_median / keepalive_median
    } else {
        f64::INFINITY
    };
    let json = format!(
        "{{\n  \"requests\": {REQUESTS},\n  \"path\": \"cache-hit /v1/window\",\n  \"keepalive_median_ms\": {keepalive_median:.4},\n  \"per_connection_median_ms\": {per_conn_median:.4},\n  \"keepalive_speedup\": {speedup:.2}\n}}\n"
    );
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("{json}");
    println!(
        "wrote {out}: keep-alive {keepalive_median:.3} ms vs connection-per-request {per_conn_median:.3} ms median ({speedup:.1}x)"
    );
    Ok(())
}

/// The concurrency smoke bench: 1/2/4/8 reader threads hammering
/// `window_query` on per-thread distinct windows of a shared
/// [`QueryManager`], over a warm buffer pool. Two paths are measured:
///
/// * **cached** — the default manager; after the first round every query
///   is an exact window-cache hit, so this stresses the sharded cache and
///   the read-lock fast path.
/// * **uncached** — a manager with the cache reduced to one entry and the
///   delta path disabled, so every query runs the full R-tree descent and
///   batched heap fetch through the sharded buffer pool (pages resident
///   after the warm-up round: pure lock-striping, no disk).
///
/// Writes queries/sec per thread count plus the per-shard pool counters
/// to `out`. `host_cpus` is recorded because aggregate throughput cannot
/// scale past the core count regardless of locking.
fn bench_concurrency(
    db_path: &Path,
    bounds: &graphvizdb::spatial::Rect,
    out: &str,
) -> Result<(), String> {
    use graphvizdb::spatial::Rect;
    use gvdb_bench::{
        concurrency_window, concurrency_window_side, uncached_cache_config, CONCURRENCY_THREADS,
        CONCURRENCY_WINDOWS_PER_THREAD,
    };
    use std::sync::Arc;
    use std::time::Instant;

    // Per-variant work: cache hits are ~µs, so they need many more
    // iterations than full index+heap queries for a stable wall time.
    const CACHED_QUERIES_PER_THREAD: usize = 20_000;
    const UNCACHED_QUERIES_PER_THREAD: usize = 150;
    let side = concurrency_window_side(bounds);
    let thread_counts = CONCURRENCY_THREADS;

    let open = || GraphDb::open(db_path).map_err(|e| e.to_string());
    let qm_hot = Arc::new(QueryManager::new(open()?));
    let qm_cold = Arc::new(QueryManager::with_cache_config(
        open()?,
        uncached_cache_config(),
    ));

    // Deterministic per-thread windows (shared with the criterion bench
    // so both harnesses measure the same workload).
    let window = |t: usize, i: usize| -> Rect { concurrency_window(bounds, side, t, i) };

    let run = |qm: &Arc<QueryManager>, threads: usize, queries: usize| -> Result<f64, String> {
        // Warm-up round: touch every window once so the pool is resident
        // and (for the hot manager) the cache is populated.
        for t in 0..threads {
            for i in 0..CONCURRENCY_WINDOWS_PER_THREAD {
                qm.window_query(0, &window(t, i))
                    .map_err(|e| e.to_string())?;
            }
        }
        let started = Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let qm = Arc::clone(qm);
                let windows: Vec<Rect> = (0..CONCURRENCY_WINDOWS_PER_THREAD)
                    .map(|i| window(t, i))
                    .collect();
                std::thread::spawn(move || {
                    for q in 0..queries {
                        qm.window_query(0, &windows[q % windows.len()])
                            .expect("window query");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().map_err(|_| "bench thread panicked".to_string())?;
        }
        let secs = started.elapsed().as_secs_f64();
        Ok(threads as f64 * queries as f64 / secs.max(1e-9))
    };

    let mut cached_qps = Vec::new();
    let mut uncached_qps = Vec::new();
    for &threads in &thread_counts {
        cached_qps.push(run(&qm_hot, threads, CACHED_QUERIES_PER_THREAD)?);
        uncached_qps.push(run(&qm_cold, threads, UNCACHED_QUERIES_PER_THREAD)?);
    }
    let ratio = |qps: &[f64], threads: usize| {
        let idx = thread_counts
            .iter()
            .position(|&t| t == threads)
            .unwrap_or(0);
        if qps[0] > 0.0 {
            qps[idx] / qps[0]
        } else {
            0.0
        }
    };

    let shard_stats = qm_cold.pool_shard_stats();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let fmt_list = |xs: &[f64]| {
        xs.iter()
            .map(|v| format!("{v:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let threads_list = thread_counts
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"threads\": [{threads_list}],\n  \"queries_per_thread\": {{\"cached\": {CACHED_QUERIES_PER_THREAD}, \"uncached\": {UNCACHED_QUERIES_PER_THREAD}}},\n  \"cached_qps\": [{}],\n  \"uncached_qps\": [{}],\n  \"cached_speedup_4t\": {:.2},\n  \"uncached_speedup_4t\": {:.2},\n  \"pool_shards\": {},\n  \"pool_shard_pins\": [{}]\n}}\n",
        fmt_list(&cached_qps),
        fmt_list(&uncached_qps),
        ratio(&cached_qps, 4),
        ratio(&uncached_qps, 4),
        shard_stats.len(),
        shard_stats
            .iter()
            .map(|s| (s.hits + s.misses).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("{json}");
    let at4 = thread_counts.iter().position(|&t| t == 4).unwrap_or(0);
    println!(
        "wrote {out}: cached {:.0} -> {:.0} qps (1 -> {} threads), uncached {:.0} -> {:.0} qps, {host_cpus} host cpu(s)",
        cached_qps[0], cached_qps[at4], thread_counts[at4], uncached_qps[0], uncached_qps[at4]
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [db_path, ..] = args else {
        return Err("stats needs <db>".into());
    };
    let db = open_db(db_path)?;
    println!("layer |     rows | searchable");
    for i in 0..db.layer_count() {
        let layer = db.layer(i).expect("index in range");
        println!("{:>5} | {:>8} | yes", i, layer.row_count());
    }
    Ok(())
}
