//! `gvdb` — the graphvizdb command-line tool.
//!
//! ```text
//! gvdb preprocess <edge-list|.nt> <db> [--k N] [--layout force|circular|star|grid|hier]
//!                                      [--levels N] [--criterion degree|pagerank|hits]
//! gvdb info <db>
//! gvdb window <db> <layer> <minx> <miny> <maxx> <maxy>
//! gvdb search <db> <layer> <keyword...>
//! gvdb focus <db> <layer> <node-id>
//! gvdb stats <db>
//! ```
//!
//! Input format is inferred from the extension: `.nt` parses as N-Triples,
//! anything else as a (tab/space-separated) edge list.

use graphvizdb::abstraction::{AbstractionMethod, HierarchyConfig, RankingCriterion};
use graphvizdb::core::{preprocess, LayoutChoice, PreprocessConfig, QueryManager};
use graphvizdb::graph::io::{read_edge_list, read_ntriples};
use graphvizdb::graph::Graph;
use graphvizdb::spatial::Rect;
use graphvizdb::storage::GraphDb;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("preprocess") => cmd_preprocess(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("window") => cmd_window(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("focus") => cmd_focus(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        _ => {
            eprintln!("{}", USAGE);
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  gvdb preprocess <graph-file> <db> [--k N] [--layout force|circular|star|grid|hier]
                                    [--levels N] [--criterion degree|pagerank|hits]
  gvdb info <db>
  gvdb window <db> <layer> <minx> <miny> <maxx> <maxy>
  gvdb search <db> <layer> <keyword...>
  gvdb focus <db> <layer> <node-id>
  gvdb stats <db>";

fn load_graph(path: &str) -> Result<Graph, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    if path.ends_with(".nt") {
        read_ntriples(file).map_err(|e| format!("parse {path}: {e}"))
    } else {
        read_edge_list(file, true).map_err(|e| format!("parse {path}: {e}"))
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_preprocess(args: &[String]) -> Result<(), String> {
    let [input, db_path, ..] = args else {
        return Err("preprocess needs <graph-file> <db>".into());
    };
    let graph = load_graph(input)?;
    println!(
        "loaded {}: {} nodes, {} edges",
        input,
        graph.node_count(),
        graph.edge_count()
    );
    let mut cfg = PreprocessConfig::default();
    if let Some(k) = flag(args, "--k") {
        cfg.k = Some(k.parse().map_err(|_| format!("bad --k {k}"))?);
    }
    if let Some(layout) = flag(args, "--layout") {
        cfg.layout = match layout {
            "force" => LayoutChoice::ForceDirected,
            "circular" => LayoutChoice::Circular,
            "star" => LayoutChoice::Star,
            "grid" => LayoutChoice::Grid,
            "hier" => LayoutChoice::Hierarchical,
            other => return Err(format!("unknown layout {other}")),
        };
    }
    let levels: usize = match flag(args, "--levels") {
        Some(v) => v.parse().map_err(|_| format!("bad --levels {v}"))?,
        None => 4,
    };
    let criterion = match flag(args, "--criterion") {
        Some("pagerank") => RankingCriterion::PageRank,
        Some("hits") => RankingCriterion::HitsAuthority,
        Some("degree") | None => RankingCriterion::Degree,
        Some(other) => return Err(format!("unknown criterion {other}")),
    };
    cfg.hierarchy = HierarchyConfig {
        levels,
        method: AbstractionMethod::Filter {
            criterion,
            fraction: 0.3,
        },
    };
    let (_db, report) = preprocess(&graph, Path::new(db_path), &cfg).map_err(|e| e.to_string())?;
    println!(
        "built {} layers into {db_path} (k = {}, edge cut {})",
        report.layer_sizes.len(),
        report.k,
        report.edge_cut
    );
    let t = &report.times;
    println!(
        "step times: 1) partition {:.2?}  2) layout {:.2?}  3) organize {:.2?}  4) abstraction {:.2?}  5) indexing {:.2?}",
        t.partitioning, t.layout, t.organize, t.abstraction, t.indexing
    );
    Ok(())
}

fn open_db(path: &str) -> Result<GraphDb, String> {
    GraphDb::open(Path::new(path)).map_err(|e| format!("open {path}: {e}"))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [db_path, ..] = args else {
        return Err("info needs <db>".into());
    };
    let db = open_db(db_path)?;
    println!("{db_path}: {} layers", db.layer_count());
    for i in 0..db.layer_count() {
        let layer = db.layer(i).expect("index in range");
        println!("  layer {i} ({}): {} rows", layer.name(), layer.row_count());
    }
    Ok(())
}

fn cmd_window(args: &[String]) -> Result<(), String> {
    let [db_path, layer, minx, miny, maxx, maxy, ..] = args else {
        return Err("window needs <db> <layer> <minx> <miny> <maxx> <maxy>".into());
    };
    let layer: usize = layer.parse().map_err(|_| "bad layer index")?;
    let parse = |v: &String| v.parse::<f64>().map_err(|_| format!("bad coordinate {v}"));
    let rect = Rect::new(parse(minx)?, parse(miny)?, parse(maxx)?, parse(maxy)?);
    let qm = QueryManager::new(open_db(db_path)?);
    let resp = qm.window_query(layer, &rect).map_err(|e| e.to_string())?;
    println!("{}", resp.json.text);
    eprintln!(
        "# {} nodes, {} edges; db {:.3} ms, json {:.3} ms",
        resp.json.node_count, resp.json.edge_count, resp.db_ms, resp.build_json_ms
    );
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let [db_path, layer, keyword @ ..] = args else {
        return Err("search needs <db> <layer> <keyword...>".into());
    };
    if keyword.is_empty() {
        return Err("search needs a keyword".into());
    }
    let layer: usize = layer.parse().map_err(|_| "bad layer index")?;
    let qm = QueryManager::new(open_db(db_path)?);
    let hits = qm
        .keyword_search(layer, &keyword.join(" "))
        .map_err(|e| e.to_string())?;
    println!("{} hit(s)", hits.len());
    for h in hits.iter().take(25) {
        println!(
            "  node {} @ ({:.1}, {:.1}): {}",
            h.node_id, h.position.x, h.position.y, h.label
        );
    }
    Ok(())
}

fn cmd_focus(args: &[String]) -> Result<(), String> {
    let [db_path, layer, node, ..] = args else {
        return Err("focus needs <db> <layer> <node-id>".into());
    };
    let layer: usize = layer.parse().map_err(|_| "bad layer index")?;
    let node: u64 = node.parse().map_err(|_| "bad node id")?;
    let qm = QueryManager::new(open_db(db_path)?);
    let rows = qm.focus_on_node(layer, node).map_err(|e| e.to_string())?;
    println!("{} incident edge(s)", rows.len());
    for (_, r) in rows.iter().take(25) {
        println!(
            "  {} --{}--> {}",
            r.node1_label, r.edge_label, r.node2_label
        );
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [db_path, ..] = args else {
        return Err("stats needs <db>".into());
    };
    let db = open_db(db_path)?;
    println!("layer |     rows | searchable");
    for i in 0..db.layer_count() {
        let layer = db.layer(i).expect("index in range");
        println!("{:>5} | {:>8} | yes", i, layer.row_count());
    }
    Ok(())
}
