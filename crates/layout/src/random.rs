//! Uniform-random layout: the control baseline for layout-quality
//! ablations (any sane algorithm must beat it on edge length).

use crate::{Layout, LayoutAlgorithm, Position};
use gvdb_graph::Graph;
use rand::prelude::*;

/// Random layout within a square frame.
#[derive(Debug, Clone, Copy)]
pub struct RandomLayout {
    /// Side length of the square frame.
    pub frame: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomLayout {
    fn default() -> Self {
        RandomLayout {
            frame: 1000.0,
            seed: 42,
        }
    }
}

impl LayoutAlgorithm for RandomLayout {
    fn layout(&self, g: &Graph) -> Layout {
        let mut rng = StdRng::seed_from_u64(self.seed);
        Layout::from_positions(
            (0..g.node_count())
                .map(|_| {
                    Position::new(
                        rng.random::<f64>() * self.frame,
                        rng.random::<f64>() * self.frame,
                    )
                })
                .collect(),
        )
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::bounding_box;
    use gvdb_graph::generators::erdos_renyi;

    #[test]
    fn stays_in_frame_and_deterministic() {
        let g = erdos_renyi(64, 64, 5);
        let r = RandomLayout::default();
        let l = r.layout(&g);
        let bb = bounding_box(&l).unwrap();
        assert!(bb.min_x >= 0.0 && bb.max_x <= r.frame);
        assert_eq!(l, r.layout(&g));
    }

    #[test]
    fn force_beats_random_on_edge_length() {
        use crate::force::ForceDirected;
        let g = gvdb_graph::generators::grid_graph(8, 8);
        let rand_len = RandomLayout::default().layout(&g).total_edge_length(&g);
        let force_len = ForceDirected::default().layout(&g).total_edge_length(&g);
        assert!(
            force_len < rand_len,
            "force {force_len:.0} vs random {rand_len:.0}"
        );
    }
}
