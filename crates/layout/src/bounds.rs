//! Bounding boxes and layout normalization utilities.

use crate::{Layout, Position};

/// Axis-aligned bounding box of a set of positions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Minimum x.
    pub min_x: f64,
    /// Minimum y.
    pub min_y: f64,
    /// Maximum x.
    pub max_x: f64,
    /// Maximum y.
    pub max_y: f64,
}

impl BoundingBox {
    /// Width (`>= 0`).
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Height (`>= 0`).
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }
}

/// Bounding box of a layout; `None` when the layout is empty.
pub fn bounding_box(layout: &Layout) -> Option<BoundingBox> {
    let positions = layout.positions();
    if positions.is_empty() {
        return None;
    }
    let mut bb = BoundingBox {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };
    for p in positions {
        bb.min_x = bb.min_x.min(p.x);
        bb.min_y = bb.min_y.min(p.y);
        bb.max_x = bb.max_x.max(p.x);
        bb.max_y = bb.max_y.max(p.y);
    }
    Some(bb)
}

/// Rescale and translate a layout so its bounding box becomes
/// `[0, width] x [0, height]`. Aspect ratio is **not** preserved — partitions
/// are normalized into uniform tiles before the organizer packs them.
/// Degenerate (zero-extent) axes are centered.
pub fn normalize_to(layout: &mut Layout, width: f64, height: f64) {
    let Some(bb) = bounding_box(layout) else {
        return;
    };
    let sx = if bb.width() > f64::EPSILON {
        width / bb.width()
    } else {
        0.0
    };
    let sy = if bb.height() > f64::EPSILON {
        height / bb.height()
    } else {
        0.0
    };
    for i in 0..layout.len() {
        let p = layout.position_mut(gvdb_graph::NodeId(i as u32));
        let nx = if sx > 0.0 {
            (p.x - bb.min_x) * sx
        } else {
            width / 2.0
        };
        let ny = if sy > 0.0 {
            (p.y - bb.min_y) * sy
        } else {
            height / 2.0
        };
        *p = Position::new(nx, ny);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbox_of_points() {
        let l = Layout::from_positions(vec![Position::new(-1.0, 2.0), Position::new(3.0, -4.0)]);
        let bb = bounding_box(&l).unwrap();
        assert_eq!(bb.min_x, -1.0);
        assert_eq!(bb.max_y, 2.0);
        assert_eq!(bb.width(), 4.0);
        assert_eq!(bb.height(), 6.0);
    }

    #[test]
    fn empty_layout_has_no_bbox() {
        assert!(bounding_box(&Layout::default()).is_none());
    }

    #[test]
    fn normalize_fits_target_rect() {
        let mut l =
            Layout::from_positions(vec![Position::new(10.0, 10.0), Position::new(20.0, 30.0)]);
        normalize_to(&mut l, 100.0, 50.0);
        let bb = bounding_box(&l).unwrap();
        assert!((bb.min_x - 0.0).abs() < 1e-9);
        assert!((bb.max_x - 100.0).abs() < 1e-9);
        assert!((bb.max_y - 50.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_degenerate_axis_centers() {
        let mut l = Layout::from_positions(vec![Position::new(5.0, 1.0), Position::new(5.0, 2.0)]);
        normalize_to(&mut l, 10.0, 10.0);
        assert_eq!(l.position(gvdb_graph::NodeId(0)).x, 5.0);
        assert_eq!(l.position(gvdb_graph::NodeId(1)).y, 10.0);
    }

    #[test]
    fn normalize_single_point_centers_both_axes() {
        let mut l = Layout::from_positions(vec![Position::new(7.0, 9.0)]);
        normalize_to(&mut l, 4.0, 6.0);
        assert_eq!(l.position(gvdb_graph::NodeId(0)), Position::new(2.0, 3.0));
    }
}
