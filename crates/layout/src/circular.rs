//! Circular layout: nodes evenly spaced on a circle.
//!
//! Nodes are ordered by a BFS from the highest-degree node so that adjacent
//! graph regions occupy adjacent arcs, which noticeably shortens edges
//! compared to id-order placement.

use crate::{Layout, LayoutAlgorithm, Position};
use gvdb_graph::traversal::bfs_order;
use gvdb_graph::{Graph, NodeId};

/// Circular layout configuration.
#[derive(Debug, Clone, Copy)]
pub struct Circular {
    /// Circle radius.
    pub radius: f64,
    /// Order nodes by BFS from the max-degree node instead of node id.
    pub bfs_order: bool,
}

impl Default for Circular {
    fn default() -> Self {
        Circular {
            radius: 500.0,
            bfs_order: true,
        }
    }
}

impl LayoutAlgorithm for Circular {
    fn layout(&self, g: &Graph) -> Layout {
        let n = g.node_count();
        if n == 0 {
            return Layout::default();
        }
        let order: Vec<NodeId> = if self.bfs_order && n > 0 {
            let start = g
                .node_ids()
                .max_by_key(|&v| g.degree(v))
                .expect("non-empty");
            let mut order = bfs_order(g, start);
            // Append nodes from other components.
            if order.len() < n {
                let mut seen = vec![false; n];
                for &v in &order {
                    seen[v.index()] = true;
                }
                for v in g.node_ids() {
                    if !seen[v.index()] {
                        let extra = bfs_order(g, v);
                        for &w in &extra {
                            if !seen[w.index()] {
                                seen[w.index()] = true;
                                order.push(w);
                            }
                        }
                    }
                }
            }
            order
        } else {
            g.node_ids().collect()
        };
        let center = self.radius;
        let mut positions = vec![Position::default(); n];
        for (i, &v) in order.iter().enumerate() {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            positions[v.index()] = Position::new(
                center + self.radius * theta.cos(),
                center + self.radius * theta.sin(),
            );
        }
        Layout::from_positions(positions)
    }

    fn name(&self) -> &'static str {
        "circular"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_graph::generators::{erdos_renyi, grid_graph};
    use gvdb_graph::GraphBuilder;

    #[test]
    fn all_nodes_on_circle() {
        let g = erdos_renyi(40, 60, 1);
        let c = Circular::default();
        let l = c.layout(&g);
        let center = Position::new(c.radius, c.radius);
        for v in g.node_ids() {
            let d = l.position(v).distance(&center);
            assert!((d - c.radius).abs() < 1e-9, "node {v} off-circle: {d}");
        }
    }

    #[test]
    fn positions_are_distinct() {
        let g = erdos_renyi(32, 10, 2);
        let l = Circular::default().layout(&g);
        for v in 0..32u32 {
            for u in (v + 1)..32 {
                assert!(
                    l.position(NodeId(v)).distance(&l.position(NodeId(u))) > 1e-9,
                    "{v} and {u} collide"
                );
            }
        }
    }

    #[test]
    fn bfs_ordering_shortens_edges_on_path() {
        let g = grid_graph(1, 64); // a path
        let bfs = Circular::default().layout(&g);
        let ids = Circular {
            bfs_order: false,
            ..Default::default()
        }
        .layout(&g);
        // On a path the id order equals BFS order from an endpoint, but BFS
        // starts at the max-degree node (interior), so edge lengths may
        // differ slightly; both must at least produce finite short layouts.
        assert!(bfs.total_edge_length(&g) <= ids.total_edge_length(&g) * 2.0 + 1e-9);
    }

    #[test]
    fn disconnected_components_all_placed() {
        let mut b = GraphBuilder::new_undirected();
        for i in 0..6 {
            b.add_node(format!("{i}"));
        }
        b.add_edge(NodeId(0), NodeId(1), "");
        // nodes 2..6 isolated
        let g = b.build();
        let l = Circular::default().layout(&g);
        assert_eq!(l.len(), 6);
    }

    #[test]
    fn empty_graph() {
        let l = Circular::default().layout(&GraphBuilder::new_undirected().build());
        assert!(l.is_empty());
    }
}
