//! Grid layout: nodes on a square lattice in BFS order.
//!
//! The cheapest layout that still keeps graph neighborhoods spatially
//! local; used as the fast-path option for very large partitions and as a
//! baseline in the layout-quality ablation.

use crate::{Layout, LayoutAlgorithm, Position};
use gvdb_graph::traversal::bfs_order;
use gvdb_graph::Graph;

/// Grid layout configuration.
#[derive(Debug, Clone, Copy)]
pub struct GridLayout {
    /// Distance between adjacent lattice points.
    pub spacing: f64,
    /// Place nodes in BFS order (from the max-degree node) instead of id
    /// order, keeping graph-adjacent nodes in nearby cells.
    pub bfs_order: bool,
}

impl Default for GridLayout {
    fn default() -> Self {
        GridLayout {
            spacing: 100.0,
            bfs_order: true,
        }
    }
}

impl LayoutAlgorithm for GridLayout {
    fn layout(&self, g: &Graph) -> Layout {
        let n = g.node_count();
        if n == 0 {
            return Layout::default();
        }
        let order: Vec<u32> = if self.bfs_order {
            let start = g
                .node_ids()
                .max_by_key(|&v| g.degree(v))
                .expect("non-empty");
            let mut order: Vec<u32> = bfs_order(g, start).iter().map(|v| v.0).collect();
            if order.len() < n {
                let mut seen = vec![false; n];
                for &v in &order {
                    seen[v as usize] = true;
                }
                for v in 0..n as u32 {
                    if !seen[v as usize] {
                        order.push(v);
                    }
                }
            }
            order
        } else {
            (0..n as u32).collect()
        };
        let cols = (n as f64).sqrt().ceil() as usize;
        let mut positions = vec![Position::default(); n];
        for (i, &v) in order.iter().enumerate() {
            let (row, col) = (i / cols, i % cols);
            positions[v as usize] =
                Position::new(col as f64 * self.spacing, row as f64 * self.spacing);
        }
        Layout::from_positions(positions)
    }

    fn name(&self) -> &'static str {
        "grid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_graph::generators::erdos_renyi;
    use gvdb_graph::{GraphBuilder, NodeId};

    #[test]
    fn lattice_positions_are_multiples_of_spacing() {
        let g = erdos_renyi(10, 15, 1);
        let gl = GridLayout::default();
        let l = gl.layout(&g);
        for v in g.node_ids() {
            let p = l.position(v);
            assert!((p.x / gl.spacing).fract().abs() < 1e-9);
            assert!((p.y / gl.spacing).fract().abs() < 1e-9);
        }
    }

    #[test]
    fn no_two_nodes_share_a_cell() {
        let g = erdos_renyi(26, 30, 2);
        let l = GridLayout::default().layout(&g);
        let mut cells: Vec<(i64, i64)> = (0..26u32)
            .map(|v| {
                let p = l.position(NodeId(v));
                ((p.x / 100.0) as i64, (p.y / 100.0) as i64)
            })
            .collect();
        cells.sort();
        let before = cells.len();
        cells.dedup();
        assert_eq!(before, cells.len());
    }

    #[test]
    fn square_ish_aspect() {
        let g = erdos_renyi(100, 50, 3);
        let l = GridLayout::default().layout(&g);
        let bb = crate::bounds::bounding_box(&l).unwrap();
        assert!((bb.width() - bb.height()).abs() <= 100.0 + 1e-9);
    }

    #[test]
    fn empty_graph() {
        assert!(GridLayout::default()
            .layout(&GraphBuilder::new_undirected().build())
            .is_empty());
    }
}
