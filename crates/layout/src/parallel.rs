//! Parallel fan-out over independent layout problems.
//!
//! Step 2 of the graphVizdb pipeline lays out every partition *in
//! isolation* — crossing edges are ignored by construction — so the
//! per-partition layouts are embarrassingly parallel. [`layout_many`] is
//! the crate's parallel entry point: it spreads a batch of graphs across
//! `std::thread::scope` workers and returns the layouts **in input
//! order**, so a parallel run is bit-for-bit identical to a sequential
//! one (each algorithm is itself deterministic given its seed).
//!
//! The underlying [`parallel_map`] is generic and shared with the other
//! fan-out stage of the pipeline (per-layer row building in
//! `gvdb-core`). Scheduling is static: the batch is cut into one
//! contiguous chunk per worker. Partition sizes are balanced by the
//! partitioner (that is its job), so static chunks waste little time
//! compared to work stealing and keep the code free of `unsafe` and
//! synchronization beyond the scope join.

use crate::{Layout, LayoutAlgorithm};
use gvdb_graph::Graph;

/// Map `f` over `items` using up to `threads` scoped worker threads
/// (`0` means one per available CPU). Results are returned in input
/// order; with `threads <= 1` this is exactly `items.iter().map(f)`.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let mut results: Vec<Option<R>> = items.iter().map(|_| None).collect();
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (item_chunk, result_chunk) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in item_chunk.iter().zip(result_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("scope joined all workers"))
        .collect()
}

/// Lay out every graph in `graphs` with `algo`, using up to `threads`
/// worker threads (`0` means one per available CPU). Results are returned
/// in input order; the output is identical to calling
/// `algo.layout(&graphs[i])` serially for every `i`.
pub fn layout_many<A>(algo: &A, graphs: &[Graph], threads: usize) -> Vec<Layout>
where
    A: LayoutAlgorithm + Sync + ?Sized,
{
    parallel_map(graphs, threads, |g| algo.layout(g))
}

/// Resolve a thread-count request: `0` = all available CPUs, otherwise the
/// request itself, in both cases capped by the number of jobs.
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, jobs.max(1))
}

/// Number of workers [`parallel_map`] actually spawns for a request:
/// chunking is contiguous, so `jobs` not divisible by the thread count
/// can need fewer workers than requested (e.g. 6 jobs at 4 threads →
/// chunks of 2 → 3 workers). Use this, not the request, when reporting
/// thread counts.
pub fn planned_workers(requested: usize, jobs: usize) -> usize {
    let t = effective_threads(requested, jobs);
    if jobs <= 1 || t <= 1 {
        return t;
    }
    let chunk = jobs.div_ceil(t);
    jobs.div_ceil(chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ForceDirected;
    use gvdb_graph::generators::grid_graph;

    fn batch() -> Vec<Graph> {
        (2..8u32).map(|n| grid_graph(n as usize, 3)).collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let graphs = batch();
        let algo = ForceDirected::default();
        let serial: Vec<Layout> = graphs.iter().map(|g| algo.layout(g)).collect();
        for threads in [1, 2, 4, 0] {
            let parallel = layout_many(&algo, &graphs, threads);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_batches() {
        let algo = ForceDirected::default();
        assert!(layout_many(&algo, &[], 4).is_empty());
        let one = vec![grid_graph(3, 3)];
        assert_eq!(layout_many(&algo, &one, 4).len(), 1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, 4, |x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(3, 100), 3);
        assert_eq!(effective_threads(8, 2), 2);
        assert_eq!(effective_threads(5, 0), 1);
        assert!(effective_threads(0, 64) >= 1);
    }

    #[test]
    fn planned_workers_accounts_for_chunking() {
        // 6 jobs at 4 threads: chunks of 2 → only 3 workers spawn.
        assert_eq!(planned_workers(4, 6), 3);
        assert_eq!(planned_workers(4, 8), 4);
        assert_eq!(planned_workers(2, 4), 2);
        assert_eq!(planned_workers(1, 10), 1);
        assert_eq!(planned_workers(8, 1), 1);
    }
}
