//! # gvdb-layout
//!
//! Graph layout algorithms — the platform's substitute for Graphviz 2.38
//! (Fig. 1, Step 2 of the graphVizdb pipeline).
//!
//! The paper treats layout as pluggable: *"Any layout algorithm can be used
//! in this step, e.g., circle, star, hierarchical, etc."* Every algorithm
//! here implements the [`LayoutAlgorithm`] trait: given a graph, assign each
//! node a coordinate on a Euclidean plane. Layouts run **per partition**
//! during preprocessing, precisely so their memory footprint stays bounded
//! regardless of total graph size.
//!
//! ```
//! use gvdb_graph::generators::grid_graph;
//! use gvdb_layout::{ForceDirected, LayoutAlgorithm};
//!
//! let g = grid_graph(4, 4);
//! let layout = ForceDirected::default().layout(&g);
//! assert_eq!(layout.len(), 16);
//! ```

pub mod bounds;
pub mod circular;
pub mod force;
pub mod grid;
pub mod hierarchical;
pub mod parallel;
pub mod random;
pub mod star;

pub use bounds::{bounding_box, normalize_to, BoundingBox};
pub use circular::Circular;
pub use force::ForceDirected;
pub use grid::GridLayout;
pub use hierarchical::Hierarchical;
pub use parallel::{effective_threads, layout_many, parallel_map, planned_workers};
pub use random::RandomLayout;
pub use star::Star;

use gvdb_graph::{Graph, NodeId};

/// A 2-D position on the layout plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Position {
    /// Construct a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Node coordinates produced by a layout: indexed by [`NodeId`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Layout {
    positions: Vec<Position>,
}

impl Layout {
    /// Wrap a dense position vector.
    pub fn from_positions(positions: Vec<Position>) -> Self {
        Layout { positions }
    }

    /// Number of positioned nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of node `n`.
    #[inline]
    pub fn position(&self, n: NodeId) -> Position {
        self.positions[n.index()]
    }

    /// Mutable position of node `n`.
    #[inline]
    pub fn position_mut(&mut self, n: NodeId) -> &mut Position {
        &mut self.positions[n.index()]
    }

    /// All positions, indexed by node id.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Translate every position by `(dx, dy)`. Used by the partition
    /// organizer when assigning a partition to its global-plane slot.
    pub fn translate(&mut self, dx: f64, dy: f64) {
        for p in &mut self.positions {
            p.x += dx;
            p.y += dy;
        }
    }

    /// Total length of all edges under this layout.
    pub fn total_edge_length(&self, g: &Graph) -> f64 {
        g.edges()
            .iter()
            .map(|e| self.positions[e.source.index()].distance(&self.positions[e.target.index()]))
            .sum()
    }
}

/// A layout algorithm: assigns plane coordinates to every node of a graph.
pub trait LayoutAlgorithm {
    /// Compute a layout for `g`.
    fn layout(&self, g: &Graph) -> Layout;

    /// Human-readable name used in logs and the control panel.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_graph::GraphBuilder;

    #[test]
    fn position_distance() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn layout_translate_moves_everything() {
        let mut l = Layout::from_positions(vec![Position::new(1.0, 2.0)]);
        l.translate(10.0, -2.0);
        assert_eq!(l.position(NodeId(0)), Position::new(11.0, 0.0));
    }

    #[test]
    fn total_edge_length_sums() {
        let mut b = GraphBuilder::new_undirected();
        let u = b.add_node("u");
        let v = b.add_node("v");
        b.add_edge(u, v, "");
        let g = b.build();
        let l = Layout::from_positions(vec![Position::new(0.0, 0.0), Position::new(0.0, 2.0)]);
        assert!((l.total_edge_length(&g) - 2.0).abs() < 1e-12);
    }
}
