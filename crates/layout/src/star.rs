//! Star layout: highest-degree hub at the center, everything else on
//! concentric rings ordered by BFS distance from the hub.
//!
//! Matches the "star" option the paper lists and suits RDF-ish data where a
//! partition is usually a hub entity plus its satellite literals.

use crate::{Layout, LayoutAlgorithm, Position};
use gvdb_graph::traversal::bfs_distances;
use gvdb_graph::Graph;

/// Star layout configuration.
#[derive(Debug, Clone, Copy)]
pub struct Star {
    /// Radial distance between consecutive rings.
    pub ring_spacing: f64,
}

impl Default for Star {
    fn default() -> Self {
        Star {
            ring_spacing: 120.0,
        }
    }
}

impl LayoutAlgorithm for Star {
    fn layout(&self, g: &Graph) -> Layout {
        let n = g.node_count();
        if n == 0 {
            return Layout::default();
        }
        let hub = g
            .node_ids()
            .max_by_key(|&v| g.degree(v))
            .expect("non-empty");
        let dist = bfs_distances(g, hub);
        // Unreachable nodes go on an outermost ring.
        let max_ring = dist.iter().flatten().copied().max().unwrap_or(0) + 1;
        let ring_of: Vec<u32> = dist.iter().map(|d| d.unwrap_or(max_ring)).collect();
        let mut ring_members: Vec<Vec<usize>> = vec![Vec::new(); (max_ring + 1) as usize];
        for (v, &r) in ring_of.iter().enumerate() {
            ring_members[r as usize].push(v);
        }
        let extent = self.ring_spacing * (max_ring as f64 + 1.0);
        let center = Position::new(extent, extent);
        let mut positions = vec![Position::default(); n];
        for (r, members) in ring_members.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            if r == 0 {
                // ring 0 is the hub alone
                for &v in members {
                    positions[v] = center;
                }
                continue;
            }
            let radius = self.ring_spacing * r as f64;
            for (i, &v) in members.iter().enumerate() {
                let theta =
                    2.0 * std::f64::consts::PI * i as f64 / members.len() as f64 + (r as f64) * 0.5; // stagger rings to avoid radial lines
                positions[v] = Position::new(
                    center.x + radius * theta.cos(),
                    center.y + radius * theta.sin(),
                );
            }
        }
        Layout::from_positions(positions)
    }

    fn name(&self) -> &'static str {
        "star"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_graph::{GraphBuilder, NodeId};

    fn star_graph(leaves: usize) -> Graph {
        let mut b = GraphBuilder::new_undirected();
        let hub = b.add_node("hub");
        for i in 0..leaves {
            let leaf = b.add_node(format!("leaf{i}"));
            b.add_edge(hub, leaf, "spoke");
        }
        b.build()
    }

    #[test]
    fn hub_is_centered() {
        let g = star_graph(8);
        let s = Star::default();
        let l = s.layout(&g);
        let hub = l.position(NodeId(0));
        for i in 1..9u32 {
            let d = l.position(NodeId(i)).distance(&hub);
            assert!((d - s.ring_spacing).abs() < 1e-9, "leaf {i} at {d}");
        }
    }

    #[test]
    fn rings_follow_bfs_distance() {
        // path: 0-1-2, hub is node 1 (degree 2)
        let mut b = GraphBuilder::new_undirected();
        let a = b.add_node("a");
        let c = b.add_node("b");
        let d = b.add_node("c");
        b.add_edge(a, c, "");
        b.add_edge(c, d, "");
        let g = b.build();
        let s = Star::default();
        let l = s.layout(&g);
        let hub = l.position(c);
        assert!((l.position(a).distance(&hub) - s.ring_spacing).abs() < 1e-9);
        assert!((l.position(d).distance(&hub) - s.ring_spacing).abs() < 1e-9);
    }

    #[test]
    fn unreachable_nodes_on_outer_ring() {
        let mut b = GraphBuilder::new_undirected();
        let hub = b.add_node("hub");
        for i in 0..2 {
            let leaf = b.add_node(format!("leaf{i}"));
            b.add_edge(hub, leaf, "");
        }
        let iso = b.add_node("isolated");
        let g = b.build();
        let s = Star::default();
        let l = s.layout(&g);
        // hub has degree 2 (unique max), leaves on ring 1, isolated on ring 2
        let d = l.position(iso).distance(&l.position(hub));
        assert!(
            (d - 2.0 * s.ring_spacing).abs() < 1e-9,
            "isolated node not on outer ring: {d}"
        );
    }

    #[test]
    fn empty_graph() {
        assert!(Star::default()
            .layout(&GraphBuilder::new_undirected().build())
            .is_empty());
    }
}
