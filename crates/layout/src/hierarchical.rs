//! Hierarchical (layered / Sugiyama-style) layout.
//!
//! A pragmatic three-stage pipeline suited to the DAG-ish data the paper
//! demos (citation graphs, RDF class hierarchies):
//!
//! 1. **Layering** — longest-path layering over the directed edges (cycles
//!    are tolerated: back edges simply span upward).
//! 2. **Crossing reduction** — a few barycenter-ordering sweeps.
//! 3. **Coordinates** — layers become rows; nodes are spread evenly within
//!    their row.

use crate::{Layout, LayoutAlgorithm, Position};
use gvdb_graph::{Graph, NodeId};

/// Hierarchical layout configuration.
#[derive(Debug, Clone, Copy)]
pub struct Hierarchical {
    /// Vertical distance between layers.
    pub layer_spacing: f64,
    /// Horizontal distance between adjacent nodes in a layer.
    pub node_spacing: f64,
    /// Barycenter ordering sweeps (down+up counts as one).
    pub sweeps: usize,
}

impl Default for Hierarchical {
    fn default() -> Self {
        Hierarchical {
            layer_spacing: 150.0,
            node_spacing: 100.0,
            sweeps: 3,
        }
    }
}

impl Hierarchical {
    /// Longest-path layering: `layer[v] = max(layer[pred]) + 1` computed via
    /// Kahn-style propagation; nodes in cycles fall back to layer 0 order.
    fn layering(&self, g: &Graph) -> Vec<u32> {
        let n = g.node_count();
        let mut layer = vec![0u32; n];
        // Iterate a bounded number of rounds of Bellman-Ford-ish relaxation
        // over directed edges. DAGs converge in <= depth rounds; we cap at
        // n rounds but break as soon as nothing changes; cycles get cut by
        // the cap on layer value.
        let cap = (n as u32).max(1);
        for _ in 0..n.min(64) {
            let mut changed = false;
            for e in g.edges() {
                let (s, t) = (e.source.index(), e.target.index());
                if s == t {
                    continue;
                }
                // Edges point source -> target; draw source above target
                // for citation-style data ("newer cites older" reads top
                // down). So layer[target] >= layer[source] + 1.
                if layer[t] < layer[s].saturating_add(1) && layer[s] + 1 < cap {
                    layer[t] = layer[s] + 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        layer
    }
}

impl LayoutAlgorithm for Hierarchical {
    fn layout(&self, g: &Graph) -> Layout {
        let n = g.node_count();
        if n == 0 {
            return Layout::default();
        }
        let layer = self.layering(g);
        let max_layer = *layer.iter().max().unwrap();
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); (max_layer + 1) as usize];
        for v in 0..n {
            rows[layer[v] as usize].push(v as u32);
        }
        // order[v] = position of v within its row
        let mut order = vec![0f64; n];
        for row in &rows {
            for (i, &v) in row.iter().enumerate() {
                order[v as usize] = i as f64;
            }
        }
        // Barycenter sweeps.
        for _ in 0..self.sweeps {
            for row in rows.iter_mut() {
                let mut keyed: Vec<(f64, u32)> = row
                    .iter()
                    .map(|&v| {
                        let nbrs = g.neighbors(NodeId(v));
                        let (sum, cnt) = nbrs.iter().fold((0.0, 0usize), |(s, c), &(u, _)| {
                            (s + order[u.index()], c + 1)
                        });
                        let bary = if cnt == 0 {
                            order[v as usize]
                        } else {
                            sum / cnt as f64
                        };
                        (bary, v)
                    })
                    .collect();
                keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
                for (i, &(_, v)) in keyed.iter().enumerate() {
                    order[v as usize] = i as f64;
                }
                *row = keyed.into_iter().map(|(_, v)| v).collect();
            }
        }
        // Coordinates: center each row horizontally.
        let widest = rows.iter().map(|r| r.len()).max().unwrap_or(1);
        let total_width = (widest.saturating_sub(1)) as f64 * self.node_spacing;
        let mut positions = vec![Position::default(); n];
        for (li, row) in rows.iter().enumerate() {
            let row_width = (row.len().saturating_sub(1)) as f64 * self.node_spacing;
            let x0 = (total_width - row_width) / 2.0;
            for (i, &v) in row.iter().enumerate() {
                positions[v as usize] = Position::new(
                    x0 + i as f64 * self.node_spacing,
                    li as f64 * self.layer_spacing,
                );
            }
        }
        Layout::from_positions(positions)
    }

    fn name(&self) -> &'static str {
        "hierarchical (layered)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_graph::generators::{patent_like, CitationConfig};
    use gvdb_graph::GraphBuilder;

    #[test]
    fn chain_gets_one_node_per_layer() {
        let mut b = GraphBuilder::new_directed();
        let a = b.add_node("a");
        let c = b.add_node("b");
        let d = b.add_node("c");
        b.add_edge(a, c, "");
        b.add_edge(c, d, "");
        let g = b.build();
        let h = Hierarchical::default();
        let l = h.layout(&g);
        assert!(l.position(a).y < l.position(c).y);
        assert!(l.position(c).y < l.position(d).y);
    }

    #[test]
    fn dag_edges_point_downward() {
        let g = patent_like(CitationConfig {
            nodes: 200,
            ..Default::default()
        });
        let l = Hierarchical::default().layout(&g);
        for e in g.edges() {
            assert!(
                l.position(e.source).y < l.position(e.target).y + 1e-9,
                "edge {} -> {} goes up",
                e.source,
                e.target
            );
        }
    }

    #[test]
    fn cycle_terminates() {
        let mut b = GraphBuilder::new_directed();
        let a = b.add_node("a");
        let c = b.add_node("b");
        b.add_edge(a, c, "");
        b.add_edge(c, a, "");
        let l = Hierarchical::default().layout(&b.build());
        assert_eq!(l.len(), 2);
        assert!(l
            .positions()
            .iter()
            .all(|p| p.x.is_finite() && p.y.is_finite()));
    }

    #[test]
    fn same_layer_nodes_do_not_collide() {
        let mut b = GraphBuilder::new_directed();
        let root = b.add_node("root");
        for i in 0..5 {
            let c = b.add_node(format!("c{i}"));
            b.add_edge(root, c, "");
        }
        let g = b.build();
        let l = Hierarchical::default().layout(&g);
        let mut xs: Vec<i64> = (1..6u32)
            .map(|v| l.position(gvdb_graph::NodeId(v)).x as i64)
            .collect();
        xs.sort();
        let before = xs.len();
        xs.dedup();
        assert_eq!(before, xs.len());
    }

    #[test]
    fn empty_graph() {
        assert!(Hierarchical::default()
            .layout(&GraphBuilder::new_directed().build())
            .is_empty());
    }
}
