//! Fruchterman–Reingold force-directed layout with spatial-grid
//! acceleration.
//!
//! The classic spring-embedder: edges attract, all node pairs repel, a
//! cooling temperature bounds displacement per iteration. Repulsion is the
//! O(n²) term; we cut it to near-linear by binning nodes into a uniform grid
//! of cell size `2k` (k = ideal edge length) and only repelling against the
//! 3×3 neighborhood — distant repulsion decays as 1/d and is dominated by
//! the cooling schedule anyway. Partitions in graphVizdb are a few thousand
//! nodes, where this is fast and visually indistinguishable from the exact
//! algorithm.

use crate::{Layout, LayoutAlgorithm, Position};
use gvdb_graph::Graph;
use rand::prelude::*;

/// Fruchterman–Reingold force-directed layout.
#[derive(Debug, Clone, Copy)]
pub struct ForceDirected {
    /// Number of iterations (cooling steps).
    pub iterations: usize,
    /// Side length of the square layout frame.
    pub frame: f64,
    /// RNG seed for the initial random placement.
    pub seed: u64,
    /// Use the exact O(n²) repulsion instead of the grid approximation.
    /// Exposed for the ablation benchmark.
    pub exact_repulsion: bool,
}

impl Default for ForceDirected {
    fn default() -> Self {
        ForceDirected {
            iterations: 50,
            frame: 1000.0,
            seed: 42,
            exact_repulsion: false,
        }
    }
}

impl LayoutAlgorithm for ForceDirected {
    fn layout(&self, g: &Graph) -> Layout {
        let n = g.node_count();
        if n == 0 {
            return Layout::default();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut pos: Vec<Position> = (0..n)
            .map(|_| {
                Position::new(
                    rng.random::<f64>() * self.frame,
                    rng.random::<f64>() * self.frame,
                )
            })
            .collect();
        if n == 1 {
            return Layout::from_positions(pos);
        }
        let area = self.frame * self.frame;
        let k = (area / n as f64).sqrt();
        let mut disp = vec![(0.0f64, 0.0f64); n];
        let mut temperature = self.frame / 10.0;
        let cool = temperature / (self.iterations as f64 + 1.0);

        for _ in 0..self.iterations {
            disp.fill((0.0, 0.0));
            if self.exact_repulsion {
                self.repel_exact(&pos, k, &mut disp);
            } else {
                self.repel_grid(&pos, k, &mut disp);
            }
            // Attraction along edges: f_a(d) = d^2 / k.
            for e in g.edges() {
                let (s, t) = (e.source.index(), e.target.index());
                if s == t {
                    continue;
                }
                let dx = pos[s].x - pos[t].x;
                let dy = pos[s].y - pos[t].y;
                let dist = (dx * dx + dy * dy).sqrt().max(1e-9);
                let f = dist * dist / k;
                let (ux, uy) = (dx / dist, dy / dist);
                disp[s].0 -= ux * f;
                disp[s].1 -= uy * f;
                disp[t].0 += ux * f;
                disp[t].1 += uy * f;
            }
            // Displace, capped by temperature, clamped to the frame.
            for v in 0..n {
                let (dx, dy) = disp[v];
                let len = (dx * dx + dy * dy).sqrt();
                if len > 1e-12 {
                    let step = len.min(temperature);
                    pos[v].x = (pos[v].x + dx / len * step).clamp(0.0, self.frame);
                    pos[v].y = (pos[v].y + dy / len * step).clamp(0.0, self.frame);
                }
            }
            temperature = (temperature - cool).max(0.01);
        }
        Layout::from_positions(pos)
    }

    fn name(&self) -> &'static str {
        "force-directed (Fruchterman-Reingold)"
    }
}

impl ForceDirected {
    /// Exact all-pairs repulsion: f_r(d) = k^2 / d.
    fn repel_exact(&self, pos: &[Position], k: f64, disp: &mut [(f64, f64)]) {
        let n = pos.len();
        for v in 0..n {
            for u in (v + 1)..n {
                Self::repel_pair(pos, k, disp, v, u);
            }
        }
    }

    /// Grid-binned repulsion against the 3x3 cell neighborhood.
    fn repel_grid(&self, pos: &[Position], k: f64, disp: &mut [(f64, f64)]) {
        let cell = 2.0 * k;
        let cols = ((self.frame / cell).ceil() as usize).max(1);
        let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cols * cols];
        let idx = |p: &Position| -> usize {
            let cx = ((p.x / cell) as usize).min(cols - 1);
            let cy = ((p.y / cell) as usize).min(cols - 1);
            cy * cols + cx
        };
        for (v, p) in pos.iter().enumerate() {
            grid[idx(p)].push(v as u32);
        }
        for cy in 0..cols {
            for cx in 0..cols {
                let cell_nodes = &grid[cy * cols + cx];
                for &v in cell_nodes {
                    for ny in cy.saturating_sub(1)..=(cy + 1).min(cols - 1) {
                        for nx in cx.saturating_sub(1)..=(cx + 1).min(cols - 1) {
                            for &u in &grid[ny * cols + nx] {
                                if u > v {
                                    Self::repel_pair(pos, k, disp, v as usize, u as usize);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[inline]
    fn repel_pair(pos: &[Position], k: f64, disp: &mut [(f64, f64)], v: usize, u: usize) {
        let dx = pos[v].x - pos[u].x;
        let dy = pos[v].y - pos[u].y;
        let d2 = (dx * dx + dy * dy).max(1e-9);
        let dist = d2.sqrt();
        let f = k * k / dist;
        let (ux, uy) = (dx / dist, dy / dist);
        disp[v].0 += ux * f;
        disp[v].1 += uy * f;
        disp[u].0 -= ux * f;
        disp[u].1 -= uy * f;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::bounding_box;
    use gvdb_graph::generators::{erdos_renyi, grid_graph};
    use gvdb_graph::{GraphBuilder, NodeId};

    #[test]
    fn positions_stay_in_frame() {
        let g = erdos_renyi(100, 200, 1);
        let l = ForceDirected::default().layout(&g);
        let bb = bounding_box(&l).unwrap();
        assert!(bb.min_x >= 0.0 && bb.max_x <= 1000.0);
        assert!(bb.min_y >= 0.0 && bb.max_y <= 1000.0);
    }

    #[test]
    fn connected_nodes_closer_than_random_pairs() {
        let g = grid_graph(8, 8);
        let l = ForceDirected {
            iterations: 100,
            ..Default::default()
        }
        .layout(&g);
        let mut edge_dist = 0.0;
        for e in g.edges() {
            edge_dist += l.position(e.source).distance(&l.position(e.target));
        }
        edge_dist /= g.edge_count() as f64;
        // Average over all pairs.
        let mut all = 0.0;
        let mut count = 0usize;
        for v in 0..g.node_count() {
            for u in (v + 1)..g.node_count() {
                all += l
                    .position(NodeId(v as u32))
                    .distance(&l.position(NodeId(u as u32)));
                count += 1;
            }
        }
        all /= count as f64;
        assert!(
            edge_dist < all * 0.8,
            "edges {edge_dist:.1} vs pairs {all:.1}"
        );
    }

    #[test]
    fn grid_and_exact_agree_qualitatively() {
        let g = grid_graph(6, 6);
        let exact = ForceDirected {
            exact_repulsion: true,
            iterations: 80,
            ..Default::default()
        }
        .layout(&g);
        let approx = ForceDirected {
            exact_repulsion: false,
            iterations: 80,
            ..Default::default()
        }
        .layout(&g);
        // Same objective, both should produce short average edge lengths
        // relative to the frame.
        for l in [&exact, &approx] {
            let avg = l.total_edge_length(&g) / g.edge_count() as f64;
            assert!(avg < 500.0, "avg edge length {avg}");
        }
    }

    #[test]
    fn empty_and_single_node() {
        let l = ForceDirected::default().layout(&GraphBuilder::new_undirected().build());
        assert!(l.is_empty());
        let mut b = GraphBuilder::new_undirected();
        b.add_node("solo");
        let l = ForceDirected::default().layout(&b.build());
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = erdos_renyi(50, 100, 2);
        let a = ForceDirected::default().layout(&g);
        let b = ForceDirected::default().layout(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn self_loops_do_not_nan() {
        let mut b = GraphBuilder::new_undirected();
        let a = b.add_node("a");
        b.add_edge(a, a, "loop");
        let l = ForceDirected::default().layout(&b.build());
        assert!(l.position(a).x.is_finite());
    }
}
