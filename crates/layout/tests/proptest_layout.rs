//! Property-based tests for layout algorithms: every algorithm must place
//! every node at finite coordinates, deterministically.

use gvdb_graph::generators::erdos_renyi;
use gvdb_layout::{
    bounding_box, normalize_to, Circular, ForceDirected, GridLayout, Hierarchical, LayoutAlgorithm,
    RandomLayout, Star,
};
use proptest::prelude::*;

fn algorithms() -> Vec<Box<dyn LayoutAlgorithm>> {
    vec![
        Box::new(ForceDirected {
            iterations: 10,
            ..Default::default()
        }),
        Box::new(Circular::default()),
        Box::new(Star::default()),
        Box::new(GridLayout::default()),
        Box::new(Hierarchical::default()),
        Box::new(RandomLayout::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Totality + finiteness + determinism for every algorithm on random
    /// graphs (including disconnected and multi-edge cases).
    #[test]
    fn all_algorithms_total_finite_deterministic(
        n in 1usize..80,
        m in 0usize..160,
        seed in 0u64..50,
    ) {
        let g = erdos_renyi(n.max(2), m, seed);
        for algo in algorithms() {
            let a = algo.layout(&g);
            prop_assert_eq!(a.len(), g.node_count(), "{} not total", algo.name());
            for p in a.positions() {
                prop_assert!(p.x.is_finite() && p.y.is_finite(), "{} NaN", algo.name());
            }
            let b = algo.layout(&g);
            prop_assert_eq!(a, b, "{} not deterministic", algo.name());
        }
    }

    /// normalize_to always lands inside the target rectangle and is
    /// idempotent (up to float error).
    #[test]
    fn normalize_contained_and_idempotent(
        points in prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 1..100),
        w in 1.0f64..10_000.0,
        h in 1.0f64..10_000.0,
    ) {
        use gvdb_layout::{Layout, Position};
        let mut l = Layout::from_positions(
            points.iter().map(|&(x, y)| Position::new(x, y)).collect(),
        );
        normalize_to(&mut l, w, h);
        let bb = bounding_box(&l).unwrap();
        prop_assert!(bb.min_x >= -1e-6 && bb.max_x <= w + 1e-6);
        prop_assert!(bb.min_y >= -1e-6 && bb.max_y <= h + 1e-6);
        let snapshot = l.clone();
        normalize_to(&mut l, w, h);
        for (a, b) in l.positions().iter().zip(snapshot.positions()) {
            prop_assert!((a.x - b.x).abs() < 1e-6 && (a.y - b.y).abs() < 1e-6);
        }
    }
}
