//! The **streamed frame layer** of the `v1` protocol.
//!
//! A buffered `ApiResponse` makes the client wait for the whole result
//! body before it can paint anything; the paper's interactive pipeline
//! instead streams each window's sub-graph in small pieces so transfer
//! overlaps client-side rendering (its Fig. 3 "Communication + Rendering"
//! series). [`ApiFrame`] is that pipeline as a wire type: a streamed
//! result is a **frame sequence**
//!
//! ```text
//! Header · Rows* · (Progress interleaved) · Trailer
//!                                         | Error   (terminal failure)
//! ```
//!
//! * [`ApiFrame::Header`] — what is being answered (op, dataset, layer,
//!   the epoch the rows are consistent with, the window source). Sent
//!   before any row is fetched into the response, so time-to-first-frame
//!   is independent of window size.
//! * [`ApiFrame::Rows`] — one batch of results: a self-contained graph
//!   fragment (`{"nodes":[…],"edges":[…]}`, nodes deduplicated across the
//!   stream — clients merge by id) or a batch of search hits. Graph
//!   frames are **disjoint contiguous slices of the buffered payload**:
//!   concatenating every frame's node bodies (and edge bodies) in order
//!   reassembles the buffered envelope's graph byte-for-byte — see
//!   [`reassemble_graph`]. On delta pans, each frame's `reused` flag says
//!   whether its rows are pure kept region, so the client can repaint
//!   those immediately.
//! * [`ApiFrame::Progress`] — rows sent so far vs total, for progress UI.
//! * [`ApiFrame::Trailer`] — the stats the buffered envelope carries in
//!   `X-Gvdb-*` headers (source, reused/fetched counts) plus the layer
//!   epoch **observed at stream end**: if an edit raced the stream, the
//!   trailer epoch is newer than the header epoch and the client knows
//!   its view is already stale.
//! * [`ApiFrame::Error`] — a typed failure after the stream started (a
//!   failure before the first frame stays a plain HTTP error response).
//!
//! Like the rest of this crate the codec is hand-rolled canonical JSON
//! over [`Json`]; every frame round-trips byte-exactly (graph fragments
//! are spliced verbatim on write and re-canonicalized on read).

use crate::json::Json;
use crate::pack::PackedRows;
use crate::predicate::AggregateDto;
use crate::{need, need_str, need_u64, need_usize, ApiError, ApiResult, SearchHitDto, Source};
use serde::{Deserialize, Serialize};

/// Default rows per [`ApiFrame::Rows`] batch.
///
/// Sized from the `ClientModel` calibration the Fig. 3 harness uses: the
/// simulated browser pipeline streams 16 KiB chunks, and a serialized
/// edge row (edge object + its share of node objects) measures ~128
/// bytes, so a batch of 128 rows fills one calibrated chunk.
pub const DEFAULT_CHUNK_ROWS: usize = 128;

/// The opening frame of a streamed result (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameHeader {
    /// The operation being answered (`window`, `search`, `focus`).
    pub op: String,
    /// The dataset that is answering.
    pub dataset: String,
    /// The layer queried.
    pub layer: usize,
    /// The edit epoch the streamed rows are consistent with.
    pub epoch: u64,
    /// How the result is being produced (window operations only).
    pub source: Option<Source>,
    /// The session that anchored the query, if any.
    pub session: Option<u64>,
}

/// One batch of streamed results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RowBatch {
    /// A self-contained graph fragment: nodes deduplicated across the
    /// stream, clients merge batches by object id. The fragments of one
    /// stream are disjoint contiguous slices of the buffered payload;
    /// [`reassemble_graph`] glues them back byte-for-byte.
    Graph {
        /// The fragment as raw JSON (`{"nodes":[…],"edges":[…]}`),
        /// spliced verbatim into the frame.
        graph: String,
        /// Node objects in the fragment.
        nodes: u64,
        /// Edge objects in the fragment.
        edges: u64,
        /// Whether every row in the batch was reused from the cache /
        /// delta anchor (false as soon as one row was heap-fetched for
        /// this response).
        reused: bool,
    },
    /// A graph fragment in the negotiated compact encoding (see
    /// [`crate::pack`]): the same nodes and edges a [`RowBatch::Graph`]
    /// frame would carry, as a delta/dictionary-coded binary image.
    /// Emitted only when the client asked for it
    /// (`ApiRequest::Window { packed: true }`); decode with
    /// [`RowBatch::into_plain`] to get the exact plain fragment back.
    Packed {
        /// The decoded batch content.
        rows: PackedRows,
        /// Same meaning as [`RowBatch::Graph::reused`].
        reused: bool,
    },
    /// A batch of keyword-search hits.
    Hits {
        /// The hits in this batch.
        hits: Vec<SearchHitDto>,
    },
}

impl RowBatch {
    /// Rows in the batch (edges of a graph fragment, hits of a search
    /// batch).
    pub fn len(&self) -> usize {
        match self {
            RowBatch::Graph { edges, .. } => *edges as usize,
            RowBatch::Packed { rows, .. } => rows.edges.len(),
            RowBatch::Hits { hits } => hits.len(),
        }
    }

    /// Whether the batch carries no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode a [`RowBatch::Packed`] batch into the equivalent
    /// [`RowBatch::Graph`] batch (the fragment is byte-identical to what
    /// the server would have sent unpacked). Plain batches pass through
    /// unchanged, so a consumer can normalize a mixed stream.
    pub fn into_plain(self) -> RowBatch {
        match self {
            RowBatch::Packed { rows, reused } => RowBatch::Graph {
                nodes: rows.nodes.len() as u64,
                edges: rows.edges.len() as u64,
                graph: rows.to_graph_fragment(),
                reused,
            },
            other => other,
        }
    }
}

/// Rows delivered so far vs the total the stream will carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgressFrame {
    /// Rows emitted in the frames before this one.
    pub rows_sent: u64,
    /// Total rows the stream will emit.
    pub rows_total: u64,
}

/// The closing frame: the per-response stats the buffered envelope
/// reports in `X-Gvdb-*` headers, plus the end-of-stream epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrailerFrame {
    /// The layer's edit epoch **observed when the trailer was built** —
    /// newer than the header epoch exactly when an edit raced the
    /// stream.
    pub epoch: u64,
    /// How the result was produced (window operations only).
    pub source: Option<Source>,
    /// Total rows streamed.
    pub rows: u64,
    /// Rows reused from the cache / delta anchor.
    pub rows_reused: u64,
    /// Rows fetched from the heap.
    pub rows_fetched: u64,
    /// Number of [`ApiFrame::Rows`] frames emitted.
    pub frames: u64,
}

/// One frame of a streamed `v1` result (see module docs for the
/// sequence grammar).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ApiFrame {
    /// Stream opening: what is being answered.
    Header(FrameHeader),
    /// One batch of rows.
    Rows(RowBatch),
    /// Delivery progress.
    Progress(ProgressFrame),
    /// The aggregation summary of a streamed `aggregate` result — one
    /// per stream, between the progress frames and the trailer.
    Summary(AggregateDto),
    /// Stream closing: response stats + end-of-stream epoch.
    Trailer(TrailerFrame),
    /// Terminal mid-stream failure.
    Error(ApiError),
}

impl ApiFrame {
    /// The wire tag of this frame.
    pub fn kind(&self) -> &'static str {
        match self {
            ApiFrame::Header(_) => "header",
            ApiFrame::Rows(_) => "rows",
            ApiFrame::Progress(_) => "progress",
            ApiFrame::Summary(_) => "summary",
            ApiFrame::Trailer(_) => "trailer",
            ApiFrame::Error(_) => "error",
        }
    }

    /// Serialize to the wire form `{"frame":…, …}`. Graph fragments are
    /// spliced in verbatim (they are already JSON), mirroring the
    /// zero-copy envelope of [`crate::ApiResponse::to_json`].
    pub fn to_json(&self) -> String {
        match self {
            ApiFrame::Rows(RowBatch::Graph {
                graph,
                nodes,
                edges,
                reused,
            }) => {
                let mut out = String::with_capacity(graph.len() + 64);
                out.push_str("{\"frame\":\"rows\",\"nodes\":");
                out.push_str(&nodes.to_string());
                out.push_str(",\"edges\":");
                out.push_str(&edges.to_string());
                out.push_str(",\"reused\":");
                out.push_str(if *reused { "true" } else { "false" });
                out.push_str(",\"graph\":");
                out.push_str(graph);
                out.push('}');
                out
            }
            ApiFrame::Rows(RowBatch::Packed { rows, reused }) => {
                let packed = rows.encode_b64();
                let mut out = String::with_capacity(packed.len() + 80);
                out.push_str("{\"frame\":\"rows\",\"nodes\":");
                out.push_str(&rows.nodes.len().to_string());
                out.push_str(",\"edges\":");
                out.push_str(&rows.edges.len().to_string());
                out.push_str(",\"reused\":");
                out.push_str(if *reused { "true" } else { "false" });
                out.push_str(",\"packed\":\"");
                out.push_str(&packed); // base64: no JSON escaping needed
                out.push_str("\"}");
                out
            }
            other => other.to_value().to_string(),
        }
    }

    fn to_value(&self) -> Json {
        let mut members: Vec<(String, Json)> =
            vec![("frame".into(), Json::Str(self.kind().into()))];
        match self {
            ApiFrame::Header(h) => {
                members.push(("op".into(), Json::Str(h.op.clone())));
                members.push(("dataset".into(), Json::Str(h.dataset.clone())));
                members.push(("layer".into(), Json::uint(h.layer as u64)));
                members.push(("epoch".into(), Json::uint(h.epoch)));
                if let Some(source) = h.source {
                    members.push(("source".into(), Json::Str(source.as_str().into())));
                }
                if let Some(session) = h.session {
                    members.push(("session".into(), Json::uint(session)));
                }
            }
            ApiFrame::Rows(RowBatch::Graph { .. }) | ApiFrame::Rows(RowBatch::Packed { .. }) => {
                unreachable!("graph and packed batches serialize in to_json")
            }
            ApiFrame::Rows(RowBatch::Hits { hits }) => {
                members.push((
                    "hits".into(),
                    Json::Arr(
                        hits.iter()
                            .map(|h| {
                                Json::Obj(vec![
                                    ("node".into(), Json::uint(h.node)),
                                    ("label".into(), Json::Str(h.label.clone())),
                                    ("x".into(), Json::Float(h.x)),
                                    ("y".into(), Json::Float(h.y)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            ApiFrame::Progress(p) => {
                members.push(("rows_sent".into(), Json::uint(p.rows_sent)));
                members.push(("rows_total".into(), Json::uint(p.rows_total)));
            }
            ApiFrame::Summary(s) => {
                members.push(("result".into(), s.to_value()));
            }
            ApiFrame::Trailer(t) => {
                members.push(("epoch".into(), Json::uint(t.epoch)));
                if let Some(source) = t.source {
                    members.push(("source".into(), Json::Str(source.as_str().into())));
                }
                members.push(("rows".into(), Json::uint(t.rows)));
                members.push(("rows_reused".into(), Json::uint(t.rows_reused)));
                members.push(("rows_fetched".into(), Json::uint(t.rows_fetched)));
                members.push(("frames".into(), Json::uint(t.frames)));
            }
            ApiFrame::Error(e) => {
                members.push((
                    "error".into(),
                    Json::Obj(vec![
                        ("kind".into(), Json::Str(e.kind.as_str().into())),
                        ("message".into(), Json::Str(e.message.clone())),
                    ]),
                ));
            }
        }
        Json::Obj(members)
    }

    /// Parse the wire form produced by [`ApiFrame::to_json`]. Graph
    /// fragments are re-canonicalized (parsed and re-serialized), so
    /// round-trips of canonically-formatted fragments are exact.
    pub fn from_json(text: &str) -> ApiResult<ApiFrame> {
        let v = Json::parse(text)
            .map_err(|e| ApiError::bad_request(format!("malformed frame: {e}")))?;
        let kind = need_str(&v, "frame")?;
        Ok(match kind {
            "header" => ApiFrame::Header(FrameHeader {
                op: need_str(&v, "op")?.to_string(),
                dataset: need_str(&v, "dataset")?.to_string(),
                layer: need_usize(&v, "layer")?,
                epoch: need_u64(&v, "epoch")?,
                source: match v.get("source").and_then(Json::as_str) {
                    Some(tag) => Some(
                        Source::parse(tag)
                            .ok_or_else(|| ApiError::bad_request("unknown frame source"))?,
                    ),
                    None => None,
                },
                session: v.get("session").and_then(Json::as_u64),
            }),
            "rows" => {
                if let Some(hits) = v.get("hits") {
                    ApiFrame::Rows(RowBatch::Hits {
                        hits: hits
                            .as_arr()
                            .ok_or_else(|| ApiError::bad_request("hits must be an array"))?
                            .iter()
                            .map(|h| {
                                Ok(SearchHitDto {
                                    node: need_u64(h, "node")?,
                                    label: need_str(h, "label")?.to_string(),
                                    x: crate::need_f64(h, "x")?,
                                    y: crate::need_f64(h, "y")?,
                                })
                            })
                            .collect::<ApiResult<_>>()?,
                    })
                } else if let Some(packed) = v.get("packed") {
                    let text = packed
                        .as_str()
                        .ok_or_else(|| ApiError::bad_request("packed must be a string"))?;
                    let rows = PackedRows::decode_b64(text).map_err(ApiError::bad_request)?;
                    let (nodes, edges) = (need_u64(&v, "nodes")?, need_u64(&v, "edges")?);
                    if nodes != rows.nodes.len() as u64 || edges != rows.edges.len() as u64 {
                        return Err(ApiError::bad_request(
                            "packed frame counts disagree with its image",
                        ));
                    }
                    ApiFrame::Rows(RowBatch::Packed {
                        rows,
                        reused: v.get("reused").and_then(Json::as_bool).unwrap_or(false),
                    })
                } else {
                    ApiFrame::Rows(RowBatch::Graph {
                        graph: need(&v, "graph")?.to_string(),
                        nodes: need_u64(&v, "nodes")?,
                        edges: need_u64(&v, "edges")?,
                        reused: v.get("reused").and_then(Json::as_bool).unwrap_or(false),
                    })
                }
            }
            "progress" => ApiFrame::Progress(ProgressFrame {
                rows_sent: need_u64(&v, "rows_sent")?,
                rows_total: need_u64(&v, "rows_total")?,
            }),
            "summary" => ApiFrame::Summary(AggregateDto::from_value(need(&v, "result")?)?),
            "trailer" => ApiFrame::Trailer(TrailerFrame {
                epoch: need_u64(&v, "epoch")?,
                source: match v.get("source").and_then(Json::as_str) {
                    Some(tag) => Some(
                        Source::parse(tag)
                            .ok_or_else(|| ApiError::bad_request("unknown frame source"))?,
                    ),
                    None => None,
                },
                rows: need_u64(&v, "rows")?,
                rows_reused: need_u64(&v, "rows_reused")?,
                rows_fetched: need_u64(&v, "rows_fetched")?,
                frames: need_u64(&v, "frames")?,
            }),
            "error" => {
                let e = need(&v, "error")?;
                let kind = crate::ErrorKind::parse(need_str(e, "kind")?)
                    .ok_or_else(|| ApiError::bad_request("unknown error kind"))?;
                ApiFrame::Error(ApiError::new(kind, need_str(e, "message")?))
            }
            other => {
                return Err(ApiError::bad_request(format!("unknown frame '{other}'")));
            }
        })
    }
}

/// Split one graph fragment (`{"nodes":[…],"edges":[…]}`) into its node
/// and edge array bodies. String-aware: a label may legally embed the
/// `],"edges":[` separator, so the scan tracks JSON string state instead
/// of pattern-matching blindly.
fn split_graph_fragment(fragment: &str) -> Option<(&str, &str)> {
    const PREFIX: &str = "{\"nodes\":[";
    const SEP: &str = "],\"edges\":[";
    const SUFFIX: &str = "]}";
    let body = fragment.strip_prefix(PREFIX)?;
    let bytes = body.as_bytes();
    let (mut in_string, mut escaped) = (false, false);
    for i in 0..bytes.len() {
        if !in_string && bytes[i..].starts_with(SEP.as_bytes()) {
            let edges = body[i + SEP.len()..].strip_suffix(SUFFIX)?;
            return Some((&body[..i], edges));
        }
        let b = bytes[i];
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
        } else if b == b'"' {
            in_string = true;
        }
    }
    None
}

/// Reassemble the buffered graph payload from the streamed fragments of
/// one window, in emission order. Streamed v2 frames are disjoint
/// contiguous slices of the buffered payload, so the result is
/// **byte-identical** to the buffered envelope's `graph` member — the
/// property the streaming tests pin down. Returns a typed error on a
/// fragment that is not of the `{"nodes":[…],"edges":[…]}` shape.
pub fn reassemble_graph<'a, I>(fragments: I) -> ApiResult<String>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut nodes = String::new();
    let mut edges = String::new();
    for fragment in fragments {
        let (n, e) = split_graph_fragment(fragment)
            .ok_or_else(|| ApiError::bad_request("malformed graph fragment"))?;
        for (body, out) in [(n, &mut nodes), (e, &mut edges)] {
            if body.is_empty() {
                continue;
            }
            if !out.is_empty() {
                out.push(',');
            }
            out.push_str(body);
        }
    }
    Ok(format!("{{\"nodes\":[{nodes}],\"edges\":[{edges}]}}"))
}

/// Encoded bytes a graph [`ApiFrame::Rows`] envelope adds around its
/// payload (the `{"frame":"rows",…,"graph":…}` wrapper) — what the Fig. 3
/// cost model charges per streamed chunk on top of the payload itself.
/// Measured from the real encoder once per process (the cost model calls
/// this on every window response, including µs-scale cache hits).
pub fn rows_envelope_bytes() -> usize {
    static BYTES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *BYTES.get_or_init(|| {
        let placeholder = "{}";
        ApiFrame::Rows(RowBatch::Graph {
            graph: placeholder.into(),
            nodes: 0,
            edges: 0,
            reused: false,
        })
        .to_json()
        .len()
            - placeholder.len()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &ApiFrame) {
        let wire = frame.to_json();
        let back = ApiFrame::from_json(&wire).expect("parse frame");
        assert_eq!(&back, frame, "wire: {wire}");
        // Canonical: a second trip is byte-stable.
        assert_eq!(back.to_json(), wire);
    }

    #[test]
    fn every_frame_kind_round_trips() {
        roundtrip(&ApiFrame::Header(FrameHeader {
            op: "window".into(),
            dataset: "dblp".into(),
            layer: 2,
            epoch: 7,
            source: Some(Source::Delta),
            session: Some(41),
        }));
        roundtrip(&ApiFrame::Header(FrameHeader {
            op: "search".into(),
            dataset: "default".into(),
            layer: 0,
            epoch: 0,
            source: None,
            session: None,
        }));
        roundtrip(&ApiFrame::Rows(RowBatch::Graph {
            graph: "{\"nodes\":[{\"id\":1}],\"edges\":[]}".into(),
            nodes: 1,
            edges: 0,
            reused: true,
        }));
        roundtrip(&ApiFrame::Rows(RowBatch::Packed {
            rows: PackedRows {
                nodes: vec![crate::pack::PackedNode {
                    id: 3,
                    label: "n\"3".into(),
                    xbits: 1.25f64.to_bits(),
                    ybits: 2.5f64.to_bits(),
                }],
                edges: vec![crate::pack::PackedEdge {
                    rid: 17,
                    source: 3,
                    target: 3,
                    label: "loop".into(),
                    directed: true,
                }],
            },
            reused: false,
        }));
        roundtrip(&ApiFrame::Rows(RowBatch::Hits {
            hits: vec![SearchHitDto {
                node: u64::MAX,
                label: "a \"quoted\" hit".into(),
                x: 1.5,
                y: -2.0,
            }],
        }));
        roundtrip(&ApiFrame::Progress(ProgressFrame {
            rows_sent: 256,
            rows_total: 1024,
        }));
        roundtrip(&ApiFrame::Summary(AggregateDto {
            agg: crate::AggOp::Histogram {
                field: crate::Field::Degree,
                buckets: 4,
            },
            rows: 40,
            nodes: 17,
            value: None,
            histogram: Some(crate::HistogramDto {
                lo: 1.0,
                hi: 9.5,
                counts: vec![10, 0, 4, 3],
            }),
        }));
        roundtrip(&ApiFrame::Summary(AggregateDto {
            agg: crate::AggOp::Count,
            rows: 0,
            nodes: 0,
            value: None,
            histogram: None,
        }));
        roundtrip(&ApiFrame::Trailer(TrailerFrame {
            epoch: 8,
            source: Some(Source::Cold),
            rows: 1024,
            rows_reused: 900,
            rows_fetched: 124,
            frames: 8,
        }));
        roundtrip(&ApiFrame::Error(ApiError::internal("disk on fire")));
    }

    #[test]
    fn graph_payload_is_spliced_verbatim() {
        let graph = "{\"nodes\":[],\"edges\":[]}";
        let frame = ApiFrame::Rows(RowBatch::Graph {
            graph: graph.into(),
            nodes: 0,
            edges: 0,
            reused: false,
        });
        let wire = frame.to_json();
        assert!(wire.ends_with(&format!(",\"graph\":{graph}}}")), "{wire}");
    }

    #[test]
    fn unknown_frames_and_sources_are_typed_errors() {
        let err = ApiFrame::from_json("{\"frame\":\"warble\"}").unwrap_err();
        assert_eq!(err.kind, crate::ErrorKind::BadRequest);
        let err = ApiFrame::from_json(
            "{\"frame\":\"header\",\"op\":\"window\",\"dataset\":\"d\",\"layer\":0,\"epoch\":0,\"source\":\"tepid\"}",
        )
        .unwrap_err();
        assert_eq!(err.kind, crate::ErrorKind::BadRequest);
    }

    #[test]
    fn reassembly_glues_fragments_back_together() {
        let full =
            "{\"nodes\":[{\"id\":1},{\"id\":2},{\"id\":3}],\"edges\":[{\"id\":9},{\"id\":10}]}";
        let frames = [
            "{\"nodes\":[{\"id\":1},{\"id\":2}],\"edges\":[{\"id\":9}]}",
            "{\"nodes\":[{\"id\":3}],\"edges\":[{\"id\":10}]}",
        ];
        assert_eq!(reassemble_graph(frames).unwrap(), full);
        // Frames with an empty side contribute nothing but stay legal.
        let sparse = [
            "{\"nodes\":[{\"id\":1},{\"id\":2},{\"id\":3}],\"edges\":[{\"id\":9}]}",
            "{\"nodes\":[],\"edges\":[{\"id\":10}]}",
        ];
        assert_eq!(reassemble_graph(sparse).unwrap(), full);
        assert_eq!(reassemble_graph([]).unwrap(), "{\"nodes\":[],\"edges\":[]}");
        // A label embedding the separator must not fool the splitter.
        let hostile =
            "{\"nodes\":[{\"id\":1,\"label\":\"],\\\"edges\\\":[\"}],\"edges\":[{\"id\":7}]}";
        assert_eq!(reassemble_graph([hostile]).unwrap(), hostile);
        assert!(reassemble_graph(["{\"rows\":[]}"]).is_err());
    }

    #[test]
    fn envelope_overhead_is_small_and_stable() {
        let overhead = rows_envelope_bytes();
        assert!(overhead > 0 && overhead < 128, "overhead {overhead}");
    }

    #[test]
    fn batch_len_counts_rows() {
        assert_eq!(
            RowBatch::Graph {
                graph: "{}".into(),
                nodes: 3,
                edges: 9,
                reused: false
            }
            .len(),
            9
        );
        assert!(RowBatch::Hits { hits: vec![] }.is_empty());
    }
}
