//! A minimal JSON value: recursive-descent parser and canonical writer.
//!
//! The DTOs in this crate serialize through [`Json`] rather than serde —
//! the build environment vendors serde as a no-op marker crate (see
//! `vendor/serde`), so the wire format is hand-rolled here, exactly like
//! the client payload in `gvdb-core::json`. The writer is canonical
//! (objects keep insertion order, no whitespace, shortest float
//! representation), which is what makes DTO round-trips byte-stable.
//!
//! Integers and floats are kept apart ([`Json::Int`] vs [`Json::Float`]):
//! row and session ids are `u64`-precise and must not round-trip through
//! an `f64` mantissa.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional part or exponent (id-safe).
    Int(i64),
    /// An integer above `i64::MAX` (the top half of the `u64` id space —
    /// hashed node ids land here).
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key–value list (no key dedup — the writer
    /// never emits duplicates, the reader takes the first match).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    /// Member `key` of an object (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (integers only; negatives don't convert).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// An integer value, choosing the variant that holds it exactly.
    pub fn uint(v: u64) -> Json {
        match i64::try_from(v) {
            Ok(small) => Json::Int(small),
            Err(_) => Json::UInt(v),
        }
    }

    /// The value as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as `f64` (every number variant converts).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize canonically into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => write_f64(*v, out),
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Shortest-round-trip float formatting; non-finite values (which JSON
/// cannot carry) degrade to `null`.
pub(crate) fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let text = format!("{v}");
        // `{}` prints integral floats without a dot; keep the float-ness
        // visible so a reparse lands in the same variant.
        let needs_marker = !text.contains(['.', 'e', 'E']);
        out.push_str(&text);
        if needs_marker {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// JSON string escaping (quote, backslash, control characters).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte 0x{other:02x} at offset {}",
                self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the maximal escape-free run in one slice.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at offset {}", self.pos)
                            })?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or("truncated \\u escape")?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            // i64 overflow: the top half of the u64 id space.
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number '{text}' at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        Json::parse(text).expect(text).to_string()
    }

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("1.5"), "1.5");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn ids_keep_u64_precision() {
        // RowId::to_u64 packs page<<16|slot: must not pass through f64.
        let big = (1u64 << 60) - 3;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        // The top half of the u64 space (hashed ids) overflows i64 and
        // must land in the UInt variant, not degrade to a float.
        let huge = u64::MAX - 5;
        let v = Json::parse(&huge.to_string()).unwrap();
        assert_eq!(v, Json::UInt(huge));
        assert_eq!(v.as_u64(), Some(huge));
        assert_eq!(v.to_string(), huge.to_string());
        assert_eq!(Json::uint(huge), Json::UInt(huge));
        assert_eq!(Json::uint(big), Json::Int(big as i64));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text =
            r#"{"op":"window","window":{"min_x":-1.5,"max_x":3.0},"ids":[1,2,3],"tag":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("window"));
        assert_eq!(
            v.get("window")
                .and_then(|w| w.get("min_x"))
                .and_then(Json::as_f64),
            Some(-1.5)
        );
        assert_eq!(
            v.get("ids").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        // Canonical output reparses to the same tree.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Json::parse("3.0").unwrap();
        assert_eq!(v, Json::Float(3.0));
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v, "reparse of {text}");
    }

    #[test]
    fn escapes_roundtrip() {
        let original = Json::Str("a \"quote\", a \\ slash,\na tab\t, a nul \u{1} and a 😀".into());
        let text = original.to_string();
        assert_eq!(Json::parse(&text).unwrap(), original);
        // Escaped input parses to the unescaped value.
        let v = Json::parse(r#""Aé😀\t""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀\t"));
    }

    #[test]
    fn garbage_is_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"open",
            "{\"a\" 1}",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : true } ").unwrap();
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
    }
}
