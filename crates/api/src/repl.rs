//! Replication & sharding wire types: checkpoint shipping
//! (`/v1/repl/*`), the shard map (`/v1/shardmap`), and the replication
//! gauges nested in `/v1/stats`.
//!
//! The unit of replication is the **checkpoint WAL image** exactly as the
//! storage layer writes it (`gvdb-storage::wal::encode_checkpoint`): page
//! images with per-page CRCs, a commit record, a monotonic sequence
//! number, and an opaque metadata blob carrying the leader's flush-time
//! per-layer epochs. [`CheckpointDto`] wraps those bytes in base64 with a
//! whole-image CRC so a shipped checkpoint is verified before it touches a
//! follower's disk; the follower then writes it as its local active WAL
//! and reopens — the ordinary crash-recovery path applies it atomically,
//! and a kill mid-apply leaves a torn WAL that recovery discards.

use crate::pack::{b64_decode, b64_encode};
use crate::{need_str, need_u64, ApiError, ApiResult, Json};
use serde::{Deserialize, Serialize};

/// What a serving process is, replication-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplRole {
    /// Accepts writes, ships checkpoints.
    Leader,
    /// Applies shipped checkpoints, serves reads.
    Follower,
    /// Holds no data; fans reads out over a shard map.
    Router,
}

impl ReplRole {
    /// Wire name of the role.
    pub fn as_str(&self) -> &'static str {
        match self {
            ReplRole::Leader => "leader",
            ReplRole::Follower => "follower",
            ReplRole::Router => "router",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<ReplRole> {
        match s {
            "leader" => Some(ReplRole::Leader),
            "follower" => Some(ReplRole::Follower),
            "router" => Some(ReplRole::Router),
            _ => None,
        }
    }
}

/// Replication gauges, nested as the `replication` member of the
/// `/v1/stats` payload when the server runs in a replication role.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplStatsDto {
    /// This process's role.
    pub role: ReplRole,
    /// Leader: newest checkpoint seq acknowledged by any peer (0 until a
    /// ship succeeds). Follower/router: 0.
    pub last_shipped_seq: u64,
    /// Follower: newest checkpoint seq applied locally. Leader: its own
    /// committed checkpoint seq.
    pub last_applied_seq: u64,
    /// Per-layer replication lag (leader epoch − local epoch), empty when
    /// unknown (e.g. the follower has not yet seen a leader status).
    pub lag: Vec<u64>,
    /// Checkpoints shipped (leader: successful pushes; follower: 0).
    pub shipped: u64,
    /// Checkpoints applied (follower) — each apply bumps the dataset's
    /// epochs to the leader's flush-time values.
    pub applied: u64,
    /// Full-snapshot resyncs performed (follower detected a gap older
    /// than the leader's retained archives).
    pub resyncs: u64,
}

impl ReplStatsDto {
    /// Serialize to a JSON value (the `replication` stats member).
    pub fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("role".into(), Json::Str(self.role.as_str().into())),
            ("last_shipped_seq".into(), Json::uint(self.last_shipped_seq)),
            ("last_applied_seq".into(), Json::uint(self.last_applied_seq)),
            (
                "lag".into(),
                Json::Arr(self.lag.iter().map(|&l| Json::uint(l)).collect()),
            ),
            ("shipped".into(), Json::uint(self.shipped)),
            ("applied".into(), Json::uint(self.applied)),
            ("resyncs".into(), Json::uint(self.resyncs)),
        ])
    }

    /// Parse leniently — unknown roles and missing members degrade to
    /// defaults, so stats from newer servers still parse.
    pub fn from_value(v: &Json) -> ReplStatsDto {
        let get = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
        ReplStatsDto {
            role: v
                .get("role")
                .and_then(Json::as_str)
                .and_then(ReplRole::parse)
                .unwrap_or(ReplRole::Leader),
            last_shipped_seq: get("last_shipped_seq"),
            last_applied_seq: get("last_applied_seq"),
            lag: v
                .get("lag")
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(Json::as_u64).collect())
                .unwrap_or_default(),
            shipped: get("shipped"),
            applied: get("applied"),
            resyncs: get("resyncs"),
        }
    }
}

/// A shipped checkpoint: the raw WAL image (page images + CRCs + commit
/// record, see the module doc) in base64, guarded by a whole-image CRC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointDto {
    /// The checkpoint's sequence number (redundant with the image's own
    /// header — cross-checked on decode).
    pub seq: u64,
    /// CRC-32 of the raw image bytes.
    pub crc: u32,
    /// The raw WAL image, base64.
    pub bytes_b64: String,
}

impl CheckpointDto {
    /// Wrap raw checkpoint-WAL bytes for shipping.
    pub fn encode(seq: u64, bytes: &[u8]) -> CheckpointDto {
        CheckpointDto {
            seq,
            crc: crc32(bytes),
            bytes_b64: b64_encode(bytes),
        }
    }

    /// Unwrap and CRC-verify the raw image bytes.
    pub fn decode(&self) -> ApiResult<Vec<u8>> {
        let bytes = b64_decode(&self.bytes_b64)
            .map_err(|e| ApiError::bad_request(format!("checkpoint payload base64: {e}")))?;
        if crc32(&bytes) != self.crc {
            return Err(ApiError::bad_request("checkpoint payload CRC mismatch"));
        }
        Ok(bytes)
    }

    /// Serialize to the `/v1/repl/checkpoint` body.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("seq".into(), Json::uint(self.seq)),
            ("crc".into(), Json::uint(self.crc as u64)),
            ("bytes".into(), Json::Str(self.bytes_b64.clone())),
        ])
        .to_string()
    }

    /// Parse the wire form.
    pub fn from_json(text: &str) -> ApiResult<CheckpointDto> {
        let v = Json::parse(text)
            .map_err(|e| ApiError::bad_request(format!("malformed checkpoint: {e}")))?;
        Ok(CheckpointDto {
            seq: need_u64(&v, "seq")?,
            crc: need_u64(&v, "crc")? as u32,
            bytes_b64: need_str(&v, "bytes")?.to_string(),
        })
    }
}

/// A full-database snapshot for follower resync: the entire database file
/// (its header page carries the catalog and checkpoint seq) plus the
/// flush-time per-layer epochs, taken under the leader's read lock so the
/// bytes and epochs are mutually consistent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDto {
    /// Checkpoint seq the snapshot represents.
    pub seq: u64,
    /// Leader per-layer epochs at that checkpoint.
    pub epochs: Vec<u64>,
    /// CRC-32 of the raw file bytes.
    pub crc: u32,
    /// The database file, base64.
    pub bytes_b64: String,
}

impl SnapshotDto {
    /// Wrap raw database-file bytes for shipping.
    pub fn encode(seq: u64, epochs: Vec<u64>, bytes: &[u8]) -> SnapshotDto {
        SnapshotDto {
            seq,
            epochs,
            crc: crc32(bytes),
            bytes_b64: b64_encode(bytes),
        }
    }

    /// Unwrap and CRC-verify the raw file bytes.
    pub fn decode(&self) -> ApiResult<Vec<u8>> {
        let bytes = b64_decode(&self.bytes_b64)
            .map_err(|e| ApiError::bad_request(format!("snapshot payload base64: {e}")))?;
        if crc32(&bytes) != self.crc {
            return Err(ApiError::bad_request("snapshot payload CRC mismatch"));
        }
        Ok(bytes)
    }

    /// Serialize to the `/v1/repl/snapshot` body.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("seq".into(), Json::uint(self.seq)),
            (
                "epochs".into(),
                Json::Arr(self.epochs.iter().map(|&e| Json::uint(e)).collect()),
            ),
            ("crc".into(), Json::uint(self.crc as u64)),
            ("bytes".into(), Json::Str(self.bytes_b64.clone())),
        ])
        .to_string()
    }

    /// Parse the wire form.
    pub fn from_json(text: &str) -> ApiResult<SnapshotDto> {
        let v = Json::parse(text)
            .map_err(|e| ApiError::bad_request(format!("malformed snapshot: {e}")))?;
        Ok(SnapshotDto {
            seq: need_u64(&v, "seq")?,
            epochs: parse_epochs(&v),
            crc: need_u64(&v, "crc")? as u32,
            bytes_b64: need_str(&v, "bytes")?.to_string(),
        })
    }
}

/// Answer to `GET /v1/repl/status`: where the leader is, what it still
/// has archived, and its flush-time epochs — everything a follower needs
/// to decide between incremental catch-up and a full resync.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplStatusDto {
    /// The responding process's role.
    pub role: ReplRole,
    /// Its committed checkpoint seq.
    pub seq: u64,
    /// Its per-layer epochs at that checkpoint.
    pub epochs: Vec<u64>,
    /// Checkpoint seqs still archived (ascending). A follower at seq `s`
    /// catches up incrementally iff `s + 1 >= archives.first()`.
    pub archives: Vec<u64>,
}

impl ReplStatusDto {
    /// Serialize to the `/v1/repl/status` body.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("role".into(), Json::Str(self.role.as_str().into())),
            ("seq".into(), Json::uint(self.seq)),
            (
                "epochs".into(),
                Json::Arr(self.epochs.iter().map(|&e| Json::uint(e)).collect()),
            ),
            (
                "archives".into(),
                Json::Arr(self.archives.iter().map(|&s| Json::uint(s)).collect()),
            ),
        ])
        .to_string()
    }

    /// Parse the wire form.
    pub fn from_json(text: &str) -> ApiResult<ReplStatusDto> {
        let v = Json::parse(text)
            .map_err(|e| ApiError::bad_request(format!("malformed repl status: {e}")))?;
        Ok(ReplStatusDto {
            role: ReplRole::parse(need_str(&v, "role")?)
                .ok_or_else(|| ApiError::bad_request("unknown repl role"))?,
            seq: need_u64(&v, "seq")?,
            epochs: parse_epochs(&v),
            archives: v
                .get("archives")
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(Json::as_u64).collect())
                .unwrap_or_default(),
        })
    }
}

/// One shard of a sharded dataset: a replica address owning an inclusive
/// slice of rid space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardDto {
    /// Host:port of the replica serving this slice.
    pub addr: String,
    /// First owned rid (inclusive).
    pub rid_lo: u64,
    /// Last owned rid (inclusive).
    pub rid_hi: u64,
}

/// The shard map served at `/v1/shardmap`: disjoint, ascending rid ranges
/// covering all of `[0, u64::MAX]`, one replica address per range. Rows
/// are bulk-loaded in Morton order into densely filled heap pages, so a
/// contiguous rid range is both row-balanced and spatially coherent — the
/// plane tiling of the `partition` crate, expressed in rid space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardMapDto {
    /// The shards, ascending by `rid_lo`.
    pub shards: Vec<ShardDto>,
}

impl ShardMapDto {
    /// Split rid space uniformly over `addrs`, using `rid_max` (the
    /// highest rid of the widest layer, from [`crate::LayerInfo`]) to
    /// place the cut points; the last shard absorbs everything above
    /// `rid_max`. With one address the map is a single full-range shard.
    pub fn split(rid_max: u64, addrs: &[String]) -> ShardMapDto {
        let n = addrs.len().max(1) as u64;
        let step = (rid_max / n).max(1);
        let mut shards = Vec::with_capacity(addrs.len());
        let mut lo = 0u64;
        for (i, addr) in addrs.iter().enumerate() {
            let hi = if i as u64 == n - 1 {
                u64::MAX
            } else {
                lo + step - 1
            };
            shards.push(ShardDto {
                addr: addr.clone(),
                rid_lo: lo,
                rid_hi: hi,
            });
            lo = hi.saturating_add(1);
        }
        ShardMapDto { shards }
    }

    /// The shard owning `rid`, if the map covers it.
    pub fn owner(&self, rid: u64) -> Option<&ShardDto> {
        self.shards
            .iter()
            .find(|s| s.rid_lo <= rid && rid <= s.rid_hi)
    }

    /// Whether the ranges are disjoint, ascending, and cover all of
    /// `[0, u64::MAX]` — the invariant the router's concatenation merge
    /// relies on.
    pub fn is_complete(&self) -> bool {
        if self.shards.is_empty() || self.shards[0].rid_lo != 0 {
            return false;
        }
        let mut expect = 0u64;
        for (i, s) in self.shards.iter().enumerate() {
            if s.rid_lo != expect || s.rid_hi < s.rid_lo {
                return false;
            }
            if i == self.shards.len() - 1 {
                return s.rid_hi == u64::MAX;
            }
            match s.rid_hi.checked_add(1) {
                Some(next) => expect = next,
                None => return false,
            }
        }
        true
    }

    /// Serialize to the `/v1/shardmap` body.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![(
            "shards".into(),
            Json::Arr(
                self.shards
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("addr".into(), Json::Str(s.addr.clone())),
                            ("rid_lo".into(), Json::uint(s.rid_lo)),
                            ("rid_hi".into(), Json::uint(s.rid_hi)),
                        ])
                    })
                    .collect(),
            ),
        )])
        .to_string()
    }

    /// Parse the wire form.
    pub fn from_json(text: &str) -> ApiResult<ShardMapDto> {
        let v = Json::parse(text)
            .map_err(|e| ApiError::bad_request(format!("malformed shard map: {e}")))?;
        let shards = v
            .get("shards")
            .and_then(Json::as_arr)
            .ok_or_else(|| ApiError::bad_request("shard map must carry a shards array"))?
            .iter()
            .map(|s| {
                Ok(ShardDto {
                    addr: need_str(s, "addr")?.to_string(),
                    rid_lo: need_u64(s, "rid_lo")?,
                    rid_hi: need_u64(s, "rid_hi")?,
                })
            })
            .collect::<ApiResult<_>>()?;
        Ok(ShardMapDto { shards })
    }
}

fn parse_epochs(v: &Json) -> Vec<u64> {
    v.get("epochs")
        .and_then(Json::as_arr)
        .map(|a| a.iter().filter_map(Json::as_u64).collect())
        .unwrap_or_default()
}

/// CRC-32 (IEEE 802.3) — same polynomial as the storage WAL, duplicated
/// here because this crate is a leaf and must not depend on storage.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_roundtrips_and_verifies() {
        let bytes = b"fake wal image bytes".to_vec();
        let dto = CheckpointDto::encode(7, &bytes);
        let parsed = CheckpointDto::from_json(&dto.to_json()).unwrap();
        assert_eq!(parsed, dto);
        assert_eq!(parsed.decode().unwrap(), bytes);

        let mut bad = parsed.clone();
        bad.crc ^= 1;
        assert!(bad.decode().is_err());
        let mut bad = parsed;
        bad.bytes_b64 = "@@@not-base64@@@".into();
        assert!(bad.decode().is_err());
    }

    #[test]
    fn snapshot_roundtrips() {
        let dto = SnapshotDto::encode(3, vec![5, 2], b"database file");
        let parsed = SnapshotDto::from_json(&dto.to_json()).unwrap();
        assert_eq!(parsed, dto);
        assert_eq!(parsed.decode().unwrap(), b"database file");
        assert_eq!(parsed.epochs, vec![5, 2]);
    }

    #[test]
    fn status_roundtrips() {
        let dto = ReplStatusDto {
            role: ReplRole::Leader,
            seq: 9,
            epochs: vec![1, 2, 3],
            archives: vec![7, 8, 9],
        };
        assert_eq!(ReplStatusDto::from_json(&dto.to_json()).unwrap(), dto);
    }

    #[test]
    fn stats_roundtrip_is_lenient() {
        let dto = ReplStatsDto {
            role: ReplRole::Follower,
            last_shipped_seq: 0,
            last_applied_seq: 4,
            lag: vec![1, 0],
            shipped: 0,
            applied: 4,
            resyncs: 1,
        };
        let v = dto.to_value();
        assert_eq!(ReplStatsDto::from_value(&v), dto);
        // Members may be absent entirely.
        let empty = ReplStatsDto::from_value(&Json::Obj(vec![]));
        assert_eq!(empty.role, ReplRole::Leader);
        assert_eq!(empty.applied, 0);
        assert!(empty.lag.is_empty());
    }

    #[test]
    fn shard_map_split_covers_rid_space() {
        let addrs: Vec<String> = (0..3).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        let map = ShardMapDto::split(29_999, &addrs);
        assert_eq!(map.shards.len(), 3);
        assert!(map.is_complete());
        assert_eq!(map.shards[0].rid_lo, 0);
        assert_eq!(map.shards[0].rid_hi, 9_998);
        assert_eq!(map.shards[2].rid_hi, u64::MAX);
        assert_eq!(map.owner(0).unwrap().addr, addrs[0]);
        assert_eq!(map.owner(15_000).unwrap().addr, addrs[1]);
        assert_eq!(map.owner(u64::MAX).unwrap().addr, addrs[2]);
        assert_eq!(ShardMapDto::from_json(&map.to_json()).unwrap(), map);
    }

    #[test]
    fn shard_map_completeness_rejects_gaps() {
        let mut map = ShardMapDto::split(100, &["a".into(), "b".into()]);
        assert!(map.is_complete());
        map.shards[1].rid_lo += 1;
        assert!(!map.is_complete());
        assert!(!ShardMapDto { shards: vec![] }.is_complete());
        // Single-shard map covers everything.
        assert!(ShardMapDto::split(0, &["a".into()]).is_complete());
    }

    #[test]
    fn crc_matches_storage_polynomial() {
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }
}
