//! # gvdb-api
//!
//! The **versioned wire protocol** of the platform: every operation a
//! client can ask of a graphvizdb server — dataset discovery, window
//! queries (cold and session-anchored), keyword search, focus,
//! **mutations**, session lifecycle, statistics — expressed as typed
//! request/response DTOs with typed error codes, instead of the ad-hoc
//! query-string dialect each caller used to re-implement.
//!
//! * [`ApiRequest`] / [`ApiResponse`] — the `v1` protocol, one variant per
//!   operation. Both serialize to/from JSON ([`ApiRequest::to_json`],
//!   [`ApiRequest::from_json`], …); the encoding is hand-rolled over
//!   [`Json`] because the build environment vendors serde as a no-op
//!   marker crate (the derives below keep the DTOs serde-annotated for
//!   environments with the real serde).
//! * [`ApiError`] — a typed error (`kind` + `message`) replacing stringly
//!   HTTP errors; [`ErrorKind::http_status`] maps each kind onto a status
//!   line.
//! * [`ApiFrame`] (the [`frame`] module) — the **streamed** result form:
//!   window and search results as a `Header · Rows* · Trailer` frame
//!   sequence, so transfer overlaps client-side rendering and
//!   time-to-first-frame is independent of result size.
//! * This crate is a **leaf**: no storage, no query engine, nothing but
//!   the protocol. `gvdb-core` implements the protocol behind the
//!   `GraphService` trait; `gvdb-server` speaks it over HTTP under
//!   `/v1/*`; the CLI and examples consume the same types.
//!
//! The graph payload itself (the `{"nodes":[…],"edges":[…]}` body built by
//! `gvdb-core::json`) rides inside [`ApiResponse::Window`] /
//! [`ApiResponse::Focus`] as a **raw JSON string**: the server splices the
//! cached `Arc`-shared payload into the envelope verbatim, so the typed
//! protocol costs no payload copy on the hot path.

pub mod frame;
pub mod json;
pub mod pack;
pub mod predicate;
pub mod repl;

pub use frame::{
    reassemble_graph, rows_envelope_bytes, ApiFrame, FrameHeader, ProgressFrame, RowBatch,
    TrailerFrame, DEFAULT_CHUNK_ROWS,
};
pub use json::{escape_into, Json};
pub use pack::{PackedEdge, PackedNode, PackedRows};
pub use predicate::{AggOp, AggregateDto, Field, HistogramDto, Predicate};

use serde::{Deserialize, Serialize};

/// The protocol version every endpoint in this crate describes.
pub const API_VERSION: &str = "v1";

/// Result alias for protocol operations.
pub type ApiResult<T> = Result<T, ApiError>;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed error classes of the protocol. Each maps onto one HTTP status
/// ([`ErrorKind::http_status`]) but is meaningful without HTTP — embedded
/// callers match on the kind instead of parsing message strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The request is malformed (missing/invalid parameters or body).
    BadRequest,
    /// The addressed dataset, layer, session, node or row does not exist.
    NotFound,
    /// The operation conflicts with existing state (e.g. duplicate
    /// dataset name).
    Conflict,
    /// The request body exceeds the configured limit.
    TooLarge,
    /// The request needs credentials it did not present (missing or
    /// wrong `Authorization` bearer token).
    Unauthorized,
    /// The credentials are fine but the operation is not allowed (e.g.
    /// a mutation on a read-only dataset).
    Forbidden,
    /// The server is shedding load (full connection queue).
    Unavailable,
    /// An internal error (storage failure, corruption).
    Internal,
}

impl ErrorKind {
    /// The wire tag of this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::NotFound => "not_found",
            ErrorKind::Conflict => "conflict",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::Unauthorized => "unauthorized",
            ErrorKind::Forbidden => "forbidden",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parse a wire tag.
    pub fn parse(tag: &str) -> Option<ErrorKind> {
        Some(match tag {
            "bad_request" => ErrorKind::BadRequest,
            "not_found" => ErrorKind::NotFound,
            "conflict" => ErrorKind::Conflict,
            "too_large" => ErrorKind::TooLarge,
            "unauthorized" => ErrorKind::Unauthorized,
            "forbidden" => ErrorKind::Forbidden,
            "unavailable" => ErrorKind::Unavailable,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }

    /// The HTTP status line this kind maps onto.
    pub fn http_status(&self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "400 Bad Request",
            ErrorKind::NotFound => "404 Not Found",
            ErrorKind::Conflict => "409 Conflict",
            ErrorKind::TooLarge => "413 Payload Too Large",
            ErrorKind::Unauthorized => "401 Unauthorized",
            ErrorKind::Forbidden => "403 Forbidden",
            ErrorKind::Unavailable => "503 Service Unavailable",
            ErrorKind::Internal => "500 Internal Server Error",
        }
    }
}

/// A typed protocol error: a machine-readable [`ErrorKind`] plus a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiError {
    /// The error class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// An error of `kind` with `message`.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ApiError {
            kind,
            message: message.into(),
        }
    }

    /// A [`ErrorKind::BadRequest`] error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::BadRequest, message)
    }

    /// A [`ErrorKind::NotFound`] error.
    pub fn not_found(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::NotFound, message)
    }

    /// A [`ErrorKind::Conflict`] error.
    pub fn conflict(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Conflict, message)
    }

    /// An [`ErrorKind::Unauthorized`] error.
    pub fn unauthorized(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Unauthorized, message)
    }

    /// An [`ErrorKind::Forbidden`] error.
    pub fn forbidden(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Forbidden, message)
    }

    /// An [`ErrorKind::Internal`] error.
    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Internal, message)
    }

    fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str(self.kind.as_str().into())),
            ("message".into(), Json::Str(self.message.clone())),
        ])
    }

    fn from_value(v: &Json) -> ApiResult<ApiError> {
        let kind = ErrorKind::parse(need_str(v, "kind")?)
            .ok_or_else(|| ApiError::bad_request("unknown error kind"))?;
        Ok(ApiError {
            kind,
            message: need_str(v, "message")?.to_string(),
        })
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ApiError {}

// ---------------------------------------------------------------------------
// Shared DTO fragments
// ---------------------------------------------------------------------------

/// A viewport rectangle in plane coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RectDto {
    /// Left edge.
    pub min_x: f64,
    /// Bottom edge.
    pub min_y: f64,
    /// Right edge.
    pub max_x: f64,
    /// Top edge.
    pub max_y: f64,
}

impl RectDto {
    /// Whether the rectangle is ordered (`min <= max` on both axes).
    pub fn is_ordered(&self) -> bool {
        self.min_x <= self.max_x && self.min_y <= self.max_y
    }

    fn to_value(self) -> Json {
        Json::Obj(vec![
            ("min_x".into(), Json::Float(self.min_x)),
            ("min_y".into(), Json::Float(self.min_y)),
            ("max_x".into(), Json::Float(self.max_x)),
            ("max_y".into(), Json::Float(self.max_y)),
        ])
    }

    /// Parse from a JSON object `{"min_x":…,"min_y":…,"max_x":…,"max_y":…}`.
    pub fn from_value(v: &Json) -> ApiResult<RectDto> {
        Ok(RectDto {
            min_x: need_f64(v, "min_x")?,
            min_y: need_f64(v, "min_y")?,
            max_x: need_f64(v, "max_x")?,
            max_y: need_f64(v, "max_y")?,
        })
    }
}

/// One edge (plus its endpoints) as drawn or deleted by a client — the
/// mutation payload of [`ApiRequest::InsertEdge`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeDto {
    /// First endpoint's node id.
    pub node1_id: u64,
    /// First endpoint's label.
    pub node1_label: String,
    /// Second endpoint's node id.
    pub node2_id: u64,
    /// Second endpoint's label.
    pub node2_label: String,
    /// Edge label.
    pub edge_label: String,
    /// First endpoint's plane position (x).
    pub x1: f64,
    /// First endpoint's plane position (y).
    pub y1: f64,
    /// Second endpoint's plane position (x).
    pub x2: f64,
    /// Second endpoint's plane position (y).
    pub y2: f64,
    /// Whether the edge is directed.
    pub directed: bool,
}

impl EdgeDto {
    fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("node1_id".into(), Json::uint(self.node1_id)),
            ("node1_label".into(), Json::Str(self.node1_label.clone())),
            ("node2_id".into(), Json::uint(self.node2_id)),
            ("node2_label".into(), Json::Str(self.node2_label.clone())),
            ("edge_label".into(), Json::Str(self.edge_label.clone())),
            ("x1".into(), Json::Float(self.x1)),
            ("y1".into(), Json::Float(self.y1)),
            ("x2".into(), Json::Float(self.x2)),
            ("y2".into(), Json::Float(self.y2)),
            ("directed".into(), Json::Bool(self.directed)),
        ])
    }

    /// Parse from the JSON object this type serializes to (the `edge`
    /// member of an `insert_edge` request).
    pub fn from_value(v: &Json) -> ApiResult<EdgeDto> {
        Ok(EdgeDto {
            node1_id: need_u64(v, "node1_id")?,
            node1_label: need_str(v, "node1_label")?.to_string(),
            node2_id: need_u64(v, "node2_id")?,
            node2_label: need_str(v, "node2_label")?.to_string(),
            edge_label: need_str(v, "edge_label")?.to_string(),
            x1: need_f64(v, "x1")?,
            y1: need_f64(v, "y1")?,
            x2: need_f64(v, "x2")?,
            y2: need_f64(v, "y2")?,
            directed: v.get("directed").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// How a window response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Source {
    /// Full R-tree descent + heap fetch.
    Cold,
    /// Served whole from the window cache.
    Hit,
    /// Assembled incrementally from an overlapping cached window.
    Delta,
}

impl Source {
    /// The wire tag (also the `X-Gvdb-Source` header value).
    pub fn as_str(&self) -> &'static str {
        match self {
            Source::Cold => "cold",
            Source::Hit => "hit",
            Source::Delta => "delta",
        }
    }

    /// Parse a wire tag.
    pub fn parse(tag: &str) -> Option<Source> {
        Some(match tag {
            "cold" => Source::Cold,
            "hit" => Source::Hit,
            "delta" => Source::Delta,
            _ => return None,
        })
    }
}

/// Everything about a window response except the graph payload itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowMeta {
    /// The dataset that answered.
    pub dataset: String,
    /// The layer queried.
    pub layer: usize,
    /// The edit epoch the payload is consistent with.
    pub epoch: u64,
    /// How the response was produced.
    pub source: Source,
    /// Rows reused from the cache (whole result on a hit).
    pub rows_reused: usize,
    /// Rows fetched from the heap.
    pub rows_fetched: usize,
    /// The session that anchored the query, if any.
    pub session: Option<u64>,
}

impl WindowMeta {
    /// The meta object alone as JSON — what a server splices into the
    /// `/v1/window` envelope ahead of the shared graph payload.
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }

    fn to_value(&self) -> Json {
        let mut members = vec![
            ("dataset".into(), Json::Str(self.dataset.clone())),
            ("layer".into(), Json::uint(self.layer as u64)),
            ("epoch".into(), Json::uint(self.epoch)),
            ("source".into(), Json::Str(self.source.as_str().into())),
            ("rows_reused".into(), Json::uint(self.rows_reused as u64)),
            ("rows_fetched".into(), Json::uint(self.rows_fetched as u64)),
        ];
        if let Some(sid) = self.session {
            members.push(("session".into(), Json::uint(sid)));
        }
        Json::Obj(members)
    }

    fn from_value(v: &Json) -> ApiResult<WindowMeta> {
        Ok(WindowMeta {
            dataset: need_str(v, "dataset")?.to_string(),
            layer: need_usize(v, "layer")?,
            epoch: need_u64(v, "epoch")?,
            source: Source::parse(need_str(v, "source")?)
                .ok_or_else(|| ApiError::bad_request("unknown window source"))?,
            rows_reused: need_usize(v, "rows_reused")?,
            rows_fetched: need_usize(v, "rows_fetched")?,
            session: v.get("session").and_then(Json::as_u64),
        })
    }
}

/// One dataset in the workspace, as listed by [`ApiRequest::ListDatasets`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// The dataset's name (the `dataset=` selector value).
    pub name: String,
    /// Number of abstraction layers.
    pub layers: usize,
}

/// One abstraction layer, as listed by [`ApiRequest::ListLayers`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerInfo {
    /// Layer index (0 = most detailed).
    pub index: usize,
    /// Row count.
    pub rows: u64,
    /// Current edit epoch.
    pub epoch: u64,
    /// Highest `RowId` present (as `RowId::to_u64`; 0 for an empty
    /// layer). A router splits `[0, rid_max]` into per-shard rid ranges —
    /// bulk-loaded layers fill heap pages densely in Morton order, so a
    /// uniform split of rid space is balanced and spatially coherent.
    pub rid_max: u64,
}

/// One keyword-search hit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchHitDto {
    /// Node id within the searched layer.
    pub node: u64,
    /// Node label.
    pub label: String,
    /// Plane position (x).
    pub x: f64,
    /// Plane position (y).
    pub y: f64,
}

// ---------------------------------------------------------------------------
// Statistics DTOs
// ---------------------------------------------------------------------------

/// Window-cache counters of one dataset.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CacheStatsDto {
    /// Exact-window hits.
    pub hits: u64,
    /// Delta-path partial hits.
    pub partial_hits: u64,
    /// Lookups that fell through to the database.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Approximate bytes held.
    pub bytes: u64,
    /// Per-shard `(entries, bytes)` occupancy.
    pub shards: Vec<(u64, u64)>,
}

/// Buffer-pool counters of one dataset.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PoolStatsDto {
    /// Page pins served from a resident frame.
    pub hits: u64,
    /// Page pins that went to disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Logical bytes resident: what the resident pages' contents would
    /// occupy uncompressed. With compressed pages this exceeds
    /// `physical_bytes`; the ratio is the pool's effective compression.
    pub logical_bytes: u64,
    /// Physical bytes resident (`frames × page size`).
    pub physical_bytes: u64,
    /// Per-shard `(hits, misses, evictions, logical_bytes,
    /// physical_bytes)`.
    pub shards: Vec<(u64, u64, u64, u64, u64)>,
}

/// Session-registry counters of one dataset.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SessionStatsDto {
    /// Sessions currently live.
    pub live: u64,
    /// Sessions ever created.
    pub created: u64,
    /// Sessions evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Sessions reclaimed by the idle-TTL sweep.
    pub expired: u64,
}

/// Access-path statistics of one abstraction layer — the cardinality
/// inputs the attribute-query chooser reads.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LayerStatsDto {
    /// Layer index (0 = most detailed).
    pub index: u64,
    /// Row (edge) count — the scan-path cardinality.
    pub rows: u64,
    /// Nodes with a degree/rank sidecar entry (0 = no sidecar, so
    /// degree/rank predicates fall back to the scan path).
    pub sidecar_nodes: u64,
}

/// Attribute-query chooser decision counters of one dataset.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChooserStatsDto {
    /// Filtered queries answered via index-probe-then-Rect-intersect.
    pub index: u64,
    /// Filtered queries answered via R-tree-then-residual-filter.
    pub scan: u64,
}

/// Full serving statistics of one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// The dataset's name.
    pub name: String,
    /// Per-layer edit epochs.
    pub epochs: Vec<u64>,
    /// Window-cache counters.
    pub cache: CacheStatsDto,
    /// Buffer-pool counters.
    pub pool: PoolStatsDto,
    /// Session-registry counters.
    pub sessions: SessionStatsDto,
    /// Per-layer cardinality / index statistics.
    pub layers: Vec<LayerStatsDto>,
    /// Attribute-query chooser decisions.
    pub chooser: ChooserStatsDto,
}

/// The `/v1/stats` payload: server-level counters plus one
/// [`DatasetStats`] per dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsDto {
    /// Requests served (all endpoints, all connections).
    pub served: u64,
    /// Connections shed with 503 because the queue was full.
    pub rejected: u64,
    /// Worker threads.
    pub workers: u64,
    /// Connection-queue depth.
    pub backlog: u64,
    /// Worker threads currently executing a request (the soak tests
    /// assert this returns to 0 — a non-zero value at rest means a
    /// leaked worker).
    pub active_workers: u64,
    /// Connections currently registered with the reactor (idle
    /// keep-alive connections included — each costs a registered fd,
    /// not a thread).
    pub open_connections: u64,
    /// CPU cores the server saw at startup — read alongside the
    /// per-shard arrays: pool and cache stripe counts default to
    /// `min(16, max(2, 2 × cpus))`.
    pub cpus: u64,
    /// The shards-vs-cores sizing policy in force, as a human-readable
    /// note (e.g. `"min(16, max(2, 2*cpus))"`).
    pub shards_policy: String,
    /// Replication gauges — `None` on a plain single-node server (the
    /// wire member is absent, so pre-replication clients are
    /// unaffected).
    pub replication: Option<repl::ReplStatsDto>,
    /// Per-dataset statistics.
    pub datasets: Vec<DatasetStats>,
}

impl DatasetStats {
    fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "epochs".into(),
                Json::Arr(self.epochs.iter().map(|&e| Json::uint(e)).collect()),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::uint(self.cache.hits)),
                    ("partial_hits".into(), Json::uint(self.cache.partial_hits)),
                    ("misses".into(), Json::uint(self.cache.misses)),
                    ("entries".into(), Json::uint(self.cache.entries)),
                    ("bytes".into(), Json::uint(self.cache.bytes)),
                    (
                        "shards".into(),
                        Json::Arr(
                            self.cache
                                .shards
                                .iter()
                                .map(|&(entries, bytes)| {
                                    Json::Obj(vec![
                                        ("entries".into(), Json::uint(entries)),
                                        ("bytes".into(), Json::uint(bytes)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "pool".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::uint(self.pool.hits)),
                    ("misses".into(), Json::uint(self.pool.misses)),
                    ("evictions".into(), Json::uint(self.pool.evictions)),
                    ("logical_bytes".into(), Json::uint(self.pool.logical_bytes)),
                    (
                        "physical_bytes".into(),
                        Json::uint(self.pool.physical_bytes),
                    ),
                    (
                        "shards".into(),
                        Json::Arr(
                            self.pool
                                .shards
                                .iter()
                                .map(|&(hits, misses, evictions, logical, physical)| {
                                    Json::Obj(vec![
                                        ("hits".into(), Json::uint(hits)),
                                        ("misses".into(), Json::uint(misses)),
                                        ("evictions".into(), Json::uint(evictions)),
                                        ("logical_bytes".into(), Json::uint(logical)),
                                        ("physical_bytes".into(), Json::uint(physical)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "sessions".into(),
                Json::Obj(vec![
                    ("live".into(), Json::uint(self.sessions.live)),
                    ("created".into(), Json::uint(self.sessions.created)),
                    ("evictions".into(), Json::uint(self.sessions.evictions)),
                    ("expired".into(), Json::uint(self.sessions.expired)),
                ]),
            ),
            (
                "layers".into(),
                Json::Arr(
                    self.layers
                        .iter()
                        .map(|l| {
                            Json::Obj(vec![
                                ("index".into(), Json::uint(l.index)),
                                ("rows".into(), Json::uint(l.rows)),
                                ("sidecar_nodes".into(), Json::uint(l.sidecar_nodes)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "chooser".into(),
                Json::Obj(vec![
                    ("index".into(), Json::uint(self.chooser.index)),
                    ("scan".into(), Json::uint(self.chooser.scan)),
                ]),
            ),
        ])
    }

    fn from_value(v: &Json) -> ApiResult<DatasetStats> {
        let cache = need(v, "cache")?;
        let pool = need(v, "pool")?;
        let sessions = need(v, "sessions")?;
        Ok(DatasetStats {
            name: need_str(v, "name")?.to_string(),
            epochs: need(v, "epochs")?
                .as_arr()
                .ok_or_else(|| ApiError::bad_request("epochs must be an array"))?
                .iter()
                .map(|e| e.as_u64().ok_or_else(|| ApiError::bad_request("bad epoch")))
                .collect::<ApiResult<_>>()?,
            cache: CacheStatsDto {
                hits: need_u64(cache, "hits")?,
                partial_hits: need_u64(cache, "partial_hits")?,
                misses: need_u64(cache, "misses")?,
                entries: need_u64(cache, "entries")?,
                bytes: need_u64(cache, "bytes")?,
                shards: need(cache, "shards")?
                    .as_arr()
                    .ok_or_else(|| ApiError::bad_request("cache shards must be an array"))?
                    .iter()
                    .map(|s| Ok((need_u64(s, "entries")?, need_u64(s, "bytes")?)))
                    .collect::<ApiResult<_>>()?,
            },
            pool: PoolStatsDto {
                hits: need_u64(pool, "hits")?,
                misses: need_u64(pool, "misses")?,
                evictions: need_u64(pool, "evictions")?,
                // Lenient: absent on payloads from pre-compression
                // servers.
                logical_bytes: pool
                    .get("logical_bytes")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                physical_bytes: pool
                    .get("physical_bytes")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                shards: need(pool, "shards")?
                    .as_arr()
                    .ok_or_else(|| ApiError::bad_request("pool shards must be an array"))?
                    .iter()
                    .map(|s| {
                        Ok((
                            need_u64(s, "hits")?,
                            need_u64(s, "misses")?,
                            need_u64(s, "evictions")?,
                            s.get("logical_bytes").and_then(Json::as_u64).unwrap_or(0),
                            s.get("physical_bytes").and_then(Json::as_u64).unwrap_or(0),
                        ))
                    })
                    .collect::<ApiResult<_>>()?,
            },
            sessions: SessionStatsDto {
                live: need_u64(sessions, "live")?,
                created: need_u64(sessions, "created")?,
                evictions: need_u64(sessions, "evictions")?,
                expired: need_u64(sessions, "expired")?,
            },
            // Lenient: absent on payloads from pre-attribute-query
            // servers.
            layers: match v.get("layers").and_then(Json::as_arr) {
                Some(layers) => layers
                    .iter()
                    .map(|l| {
                        Ok(LayerStatsDto {
                            index: need_u64(l, "index")?,
                            rows: need_u64(l, "rows")?,
                            sidecar_nodes: l
                                .get("sidecar_nodes")
                                .and_then(Json::as_u64)
                                .unwrap_or(0),
                        })
                    })
                    .collect::<ApiResult<_>>()?,
                None => Vec::new(),
            },
            chooser: match v.get("chooser") {
                Some(c) => ChooserStatsDto {
                    index: c.get("index").and_then(Json::as_u64).unwrap_or(0),
                    scan: c.get("scan").and_then(Json::as_u64).unwrap_or(0),
                },
                None => ChooserStatsDto::default(),
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One operation of the `v1` protocol. Every server endpoint, CLI
/// subcommand and embedded caller constructs one of these and hands it to
/// a `GraphService` (in `gvdb-core`).
///
/// `dataset: None` addresses the service's only dataset; on a
/// multi-dataset workspace with several, it is a
/// [`ErrorKind::BadRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ApiRequest {
    /// List the datasets the service holds.
    ListDatasets,
    /// List a dataset's abstraction layers.
    ListLayers {
        /// Target dataset.
        dataset: Option<String>,
    },
    /// A window query: cold, or anchored/delta when `session` is given
    /// (the registry anchors the client's previous viewport, so an
    /// overlapping follow-up rides the incremental path).
    Window {
        /// Target dataset.
        dataset: Option<String>,
        /// Layer to query; defaults to 0, or to the session's current
        /// layer when a session is given.
        layer: Option<usize>,
        /// The viewport.
        window: RectDto,
        /// Session to anchor on.
        session: Option<u64>,
        /// Whether the client accepts the compact `Rows` frame encoding
        /// (`"packed"` frames, see [`pack`]). Negotiated per request:
        /// `false` (the default, and the wire form's absent member)
        /// keeps every frame plain JSON, so old clients never see bytes
        /// they can't parse. Only streamed responses honor it; the
        /// buffered envelope is always plain.
        packed: bool,
        /// Attribute filter pushed down into the heap fetch; absent
        /// keeps the unfiltered wire form byte-stable.
        predicate: Option<Predicate>,
        /// Restrict the answer to rows whose `RowId` falls in this
        /// inclusive range (wire members `rid_lo`/`rid_hi`, both absent
        /// by default so the unsharded wire form is unchanged). The
        /// fan-out/merge router gives each shard a disjoint slice of rid
        /// space; concatenating the slices in range order reproduces the
        /// single-node row stream exactly, because windows always emit
        /// rows in ascending `RowId` order. Range-restricted requests
        /// bypass the window cache and sessions — they are an internal
        /// fan-out primitive, not an interactive path.
        rid_range: Option<(u64, u64)>,
    },
    /// Keyword search over node labels.
    Search {
        /// Target dataset.
        dataset: Option<String>,
        /// Layer to search.
        layer: usize,
        /// The keyword(s).
        query: String,
        /// Attribute filter applied to the hits (node attributes only —
        /// edge-label predicates are a [`ErrorKind::BadRequest`]).
        predicate: Option<Predicate>,
    },
    /// Focus on a node: the node and its direct neighbours.
    Focus {
        /// Target dataset.
        dataset: Option<String>,
        /// Layer to read.
        layer: usize,
        /// The node id.
        node: u64,
    },
    /// Mutation: insert an edge. The response carries the layer's new
    /// epoch, so the client can observe its own write.
    InsertEdge {
        /// Target dataset.
        dataset: Option<String>,
        /// Layer to mutate.
        layer: usize,
        /// The edge to insert.
        edge: EdgeDto,
    },
    /// Mutation: delete an edge by row id.
    DeleteEdge {
        /// Target dataset.
        dataset: Option<String>,
        /// Layer to mutate.
        layer: usize,
        /// The row id (as returned by [`ApiResponse::Mutated`]).
        rid: u64,
    },
    /// Register a session for delta-pan anchoring.
    SessionNew {
        /// Target dataset.
        dataset: Option<String>,
        /// Initial viewport (defaults server-side).
        window: Option<RectDto>,
    },
    /// Release a session explicitly.
    SessionClose {
        /// Target dataset.
        dataset: Option<String>,
        /// The session to close.
        session: u64,
    },
    /// Durability hook: sync the dataset's buffer pool and pager to disk
    /// (the explicit half of the mutation durability contract — edits
    /// update the live database immediately but are persisted on flush).
    Flush {
        /// Target dataset.
        dataset: Option<String>,
    },
    /// Window aggregation: reduce the filtered window to a summary
    /// ([`AggOp`]) instead of a payload. Streamable — the streamed form
    /// is `Header · Progress* · Summary · Trailer`, the trailer
    /// re-sampling the epoch like every other stream.
    Aggregate {
        /// Target dataset.
        dataset: Option<String>,
        /// Layer to aggregate; defaults to 0.
        layer: Option<usize>,
        /// The viewport.
        window: RectDto,
        /// Attribute filter; absent aggregates the whole window.
        predicate: Option<Predicate>,
        /// The reduction to compute.
        agg: AggOp,
    },
    /// Full serving statistics.
    Stats,
}

impl ApiRequest {
    /// The dataset selector of this request, if the variant carries one.
    pub fn dataset(&self) -> Option<&str> {
        match self {
            ApiRequest::ListDatasets | ApiRequest::Stats => None,
            ApiRequest::ListLayers { dataset }
            | ApiRequest::Window { dataset, .. }
            | ApiRequest::Search { dataset, .. }
            | ApiRequest::Focus { dataset, .. }
            | ApiRequest::InsertEdge { dataset, .. }
            | ApiRequest::DeleteEdge { dataset, .. }
            | ApiRequest::SessionNew { dataset, .. }
            | ApiRequest::SessionClose { dataset, .. }
            | ApiRequest::Aggregate { dataset, .. }
            | ApiRequest::Flush { dataset } => dataset.as_deref(),
        }
    }

    /// Whether this request mutates graph data (what an API-key gate or a
    /// read-only dataset must reject). [`ApiRequest::Flush`] is *not* a
    /// mutation: it persists already-applied edits without changing any
    /// row.
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            ApiRequest::InsertEdge { .. } | ApiRequest::DeleteEdge { .. }
        )
    }

    /// The wire tag of this operation.
    pub fn op(&self) -> &'static str {
        match self {
            ApiRequest::ListDatasets => "list_datasets",
            ApiRequest::ListLayers { .. } => "list_layers",
            ApiRequest::Window { .. } => "window",
            ApiRequest::Search { .. } => "search",
            ApiRequest::Focus { .. } => "focus",
            ApiRequest::InsertEdge { .. } => "insert_edge",
            ApiRequest::DeleteEdge { .. } => "delete_edge",
            ApiRequest::SessionNew { .. } => "session_new",
            ApiRequest::SessionClose { .. } => "session_close",
            ApiRequest::Flush { .. } => "flush",
            ApiRequest::Aggregate { .. } => "aggregate",
            ApiRequest::Stats => "stats",
        }
    }

    /// Serialize to the wire form `{"op":…, …}`.
    pub fn to_json(&self) -> String {
        let mut members: Vec<(String, Json)> = vec![("op".into(), Json::Str(self.op().into()))];
        let dataset_member = |dataset: &Option<String>, members: &mut Vec<(String, Json)>| {
            if let Some(d) = dataset {
                members.push(("dataset".into(), Json::Str(d.clone())));
            }
        };
        match self {
            ApiRequest::ListDatasets | ApiRequest::Stats => {}
            ApiRequest::ListLayers { dataset } | ApiRequest::Flush { dataset } => {
                dataset_member(dataset, &mut members)
            }
            ApiRequest::Window {
                dataset,
                layer,
                window,
                session,
                packed,
                predicate,
                rid_range,
            } => {
                dataset_member(dataset, &mut members);
                if let Some(layer) = layer {
                    members.push(("layer".into(), Json::uint(*layer as u64)));
                }
                members.push(("window".into(), window.to_value()));
                if let Some(sid) = session {
                    members.push(("session".into(), Json::uint(*sid)));
                }
                if *packed {
                    members.push(("encoding".into(), Json::Str("packed".into())));
                }
                if let Some(p) = predicate {
                    members.push(("filter".into(), p.to_value()));
                }
                if let Some((lo, hi)) = rid_range {
                    members.push(("rid_lo".into(), Json::uint(*lo)));
                    members.push(("rid_hi".into(), Json::uint(*hi)));
                }
            }
            ApiRequest::Search {
                dataset,
                layer,
                query,
                predicate,
            } => {
                dataset_member(dataset, &mut members);
                members.push(("layer".into(), Json::uint(*layer as u64)));
                members.push(("q".into(), Json::Str(query.clone())));
                if let Some(p) = predicate {
                    members.push(("filter".into(), p.to_value()));
                }
            }
            ApiRequest::Focus {
                dataset,
                layer,
                node,
            } => {
                dataset_member(dataset, &mut members);
                members.push(("layer".into(), Json::uint(*layer as u64)));
                members.push(("node".into(), Json::uint(*node)));
            }
            ApiRequest::InsertEdge {
                dataset,
                layer,
                edge,
            } => {
                dataset_member(dataset, &mut members);
                members.push(("layer".into(), Json::uint(*layer as u64)));
                members.push(("edge".into(), edge.to_value()));
            }
            ApiRequest::DeleteEdge {
                dataset,
                layer,
                rid,
            } => {
                dataset_member(dataset, &mut members);
                members.push(("layer".into(), Json::uint(*layer as u64)));
                members.push(("rid".into(), Json::uint(*rid)));
            }
            ApiRequest::SessionNew { dataset, window } => {
                dataset_member(dataset, &mut members);
                if let Some(w) = window {
                    members.push(("window".into(), w.to_value()));
                }
            }
            ApiRequest::SessionClose { dataset, session } => {
                dataset_member(dataset, &mut members);
                members.push(("session".into(), Json::uint(*session)));
            }
            ApiRequest::Aggregate {
                dataset,
                layer,
                window,
                predicate,
                agg,
            } => {
                dataset_member(dataset, &mut members);
                if let Some(layer) = layer {
                    members.push(("layer".into(), Json::uint(*layer as u64)));
                }
                members.push(("window".into(), window.to_value()));
                if let Some(p) = predicate {
                    members.push(("filter".into(), p.to_value()));
                }
                members.push(("agg".into(), agg.to_value()));
            }
        }
        Json::Obj(members).to_string()
    }

    /// Parse the wire form produced by [`ApiRequest::to_json`].
    pub fn from_json(text: &str) -> ApiResult<ApiRequest> {
        let v = Json::parse(text)
            .map_err(|e| ApiError::bad_request(format!("malformed request body: {e}")))?;
        let op = need_str(&v, "op")?;
        let dataset = v.get("dataset").and_then(Json::as_str).map(String::from);
        Ok(match op {
            "list_datasets" => ApiRequest::ListDatasets,
            "stats" => ApiRequest::Stats,
            "list_layers" => ApiRequest::ListLayers { dataset },
            "flush" => ApiRequest::Flush { dataset },
            "window" => ApiRequest::Window {
                dataset,
                layer: v.get("layer").and_then(Json::as_usize),
                window: RectDto::from_value(need(&v, "window")?)?,
                session: v.get("session").and_then(Json::as_u64),
                packed: v.get("encoding").and_then(Json::as_str) == Some("packed"),
                predicate: parse_filter(&v)?,
                rid_range: parse_rid_range(&v),
            },
            "search" => ApiRequest::Search {
                dataset,
                layer: need_usize(&v, "layer")?,
                query: need_str(&v, "q")?.to_string(),
                predicate: parse_filter(&v)?,
            },
            "focus" => ApiRequest::Focus {
                dataset,
                layer: need_usize(&v, "layer")?,
                node: need_u64(&v, "node")?,
            },
            "insert_edge" => ApiRequest::InsertEdge {
                dataset,
                layer: need_usize(&v, "layer")?,
                edge: EdgeDto::from_value(need(&v, "edge")?)?,
            },
            "delete_edge" => ApiRequest::DeleteEdge {
                dataset,
                layer: need_usize(&v, "layer")?,
                rid: need_u64(&v, "rid")?,
            },
            "session_new" => ApiRequest::SessionNew {
                dataset,
                window: match v.get("window") {
                    Some(w) => Some(RectDto::from_value(w)?),
                    None => None,
                },
            },
            "session_close" => ApiRequest::SessionClose {
                dataset,
                session: need_u64(&v, "session")?,
            },
            "aggregate" => ApiRequest::Aggregate {
                dataset,
                layer: v.get("layer").and_then(Json::as_usize),
                window: RectDto::from_value(need(&v, "window")?)?,
                predicate: parse_filter(&v)?,
                agg: AggOp::from_value(need(&v, "agg")?)?,
            },
            other => {
                return Err(ApiError::bad_request(format!("unknown op '{other}'")));
            }
        })
    }
}

/// The optional `filter` member of window/search/aggregate requests.
fn parse_filter(v: &Json) -> ApiResult<Option<Predicate>> {
    match v.get("filter") {
        Some(f) => Ok(Some(Predicate::from_value(f)?)),
        None => Ok(None),
    }
}

/// The optional `rid_lo`/`rid_hi` members of window requests. Lenient:
/// either bound alone implies the other end of rid space.
fn parse_rid_range(v: &Json) -> Option<(u64, u64)> {
    let lo = v.get("rid_lo").and_then(Json::as_u64);
    let hi = v.get("rid_hi").and_then(Json::as_u64);
    if lo.is_none() && hi.is_none() {
        return None;
    }
    Some((lo.unwrap_or(0), hi.unwrap_or(u64::MAX)))
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The result of one [`ApiRequest`], tagged by `kind` on the wire.
///
/// The graph payload in [`ApiResponse::Window`] / [`ApiResponse::Focus`]
/// is a **raw JSON string** (`{"nodes":[…],"edges":[…]}`); the serializer
/// splices it into the envelope verbatim, and the parser re-canonicalizes
/// it, so round-trips of canonically-formatted payloads are exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ApiResponse {
    /// Answer to [`ApiRequest::ListDatasets`].
    Datasets {
        /// One entry per dataset, name-sorted.
        datasets: Vec<DatasetInfo>,
    },
    /// Answer to [`ApiRequest::ListLayers`].
    Layers {
        /// The resolved dataset.
        dataset: String,
        /// One entry per layer, ascending.
        layers: Vec<LayerInfo>,
    },
    /// Answer to [`ApiRequest::Window`].
    Window {
        /// Response metadata (source, epoch, row counts, session).
        meta: WindowMeta,
        /// The graph payload as raw JSON.
        graph: String,
    },
    /// Answer to [`ApiRequest::Search`].
    Hits {
        /// The matching nodes.
        hits: Vec<SearchHitDto>,
    },
    /// Answer to [`ApiRequest::Focus`].
    Focus {
        /// Number of incident rows in the payload.
        rows: u64,
        /// The neighbourhood graph payload as raw JSON.
        graph: String,
    },
    /// Answer to a mutation; carries the layer's **new epoch** so the
    /// client can observe its own write in subsequent window responses.
    Mutated {
        /// The mutated dataset.
        dataset: String,
        /// The mutated layer.
        layer: usize,
        /// The layer's epoch after the mutation.
        epoch: u64,
        /// The inserted row's id (insertions only).
        rid: Option<u64>,
    },
    /// Answer to [`ApiRequest::SessionNew`].
    Session {
        /// The new session's id.
        id: u64,
    },
    /// Answer to [`ApiRequest::SessionClose`].
    Closed,
    /// Answer to [`ApiRequest::Flush`]: the dataset's dirty state was
    /// checkpointed and fsynced to disk.
    Flushed {
        /// The flushed dataset.
        dataset: String,
        /// Dirty pages written back by the flush.
        pages: u64,
    },
    /// Answer to [`ApiRequest::Aggregate`].
    Aggregate {
        /// The dataset that answered.
        dataset: String,
        /// The layer aggregated.
        layer: usize,
        /// The edit epoch the summary is consistent with.
        epoch: u64,
        /// The computed summary.
        result: AggregateDto,
    },
    /// Answer to [`ApiRequest::Stats`].
    Stats(StatsDto),
    /// Any operation's failure.
    Error(ApiError),
}

impl ApiResponse {
    /// The wire tag of this response.
    pub fn kind(&self) -> &'static str {
        match self {
            ApiResponse::Datasets { .. } => "datasets",
            ApiResponse::Layers { .. } => "layers",
            ApiResponse::Window { .. } => "window",
            ApiResponse::Hits { .. } => "hits",
            ApiResponse::Focus { .. } => "focus",
            ApiResponse::Mutated { .. } => "mutated",
            ApiResponse::Session { .. } => "session",
            ApiResponse::Closed => "closed",
            ApiResponse::Flushed { .. } => "flushed",
            ApiResponse::Aggregate { .. } => "aggregate",
            ApiResponse::Stats(_) => "stats",
            ApiResponse::Error(_) => "error",
        }
    }

    /// Serialize to the wire form `{"kind":…, …}`.
    pub fn to_json(&self) -> String {
        match self {
            // The graph payload is spliced in verbatim — it is already
            // JSON, and copying it through a value tree would defeat the
            // zero-copy envelope the server relies on.
            ApiResponse::Window { meta, graph } => {
                let mut out = String::with_capacity(graph.len() + 256);
                out.push_str("{\"kind\":\"window\",\"window\":");
                meta.to_value().write(&mut out);
                out.push_str(",\"graph\":");
                out.push_str(graph);
                out.push('}');
                out
            }
            ApiResponse::Focus { rows, graph } => {
                let mut out = String::with_capacity(graph.len() + 64);
                out.push_str(&format!("{{\"kind\":\"focus\",\"rows\":{rows},\"graph\":"));
                out.push_str(graph);
                out.push('}');
                out
            }
            other => other.to_value().to_string(),
        }
    }

    fn to_value(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![("kind".into(), Json::Str(self.kind().into()))];
        match self {
            ApiResponse::Datasets { datasets } => {
                members.push((
                    "datasets".into(),
                    Json::Arr(
                        datasets
                            .iter()
                            .map(|d| {
                                Json::Obj(vec![
                                    ("name".into(), Json::Str(d.name.clone())),
                                    ("layers".into(), Json::uint(d.layers as u64)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            ApiResponse::Layers { dataset, layers } => {
                members.push(("dataset".into(), Json::Str(dataset.clone())));
                members.push((
                    "layers".into(),
                    Json::Arr(
                        layers
                            .iter()
                            .map(|l| {
                                Json::Obj(vec![
                                    ("index".into(), Json::uint(l.index as u64)),
                                    ("rows".into(), Json::uint(l.rows)),
                                    ("epoch".into(), Json::uint(l.epoch)),
                                    ("rid_max".into(), Json::uint(l.rid_max)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            ApiResponse::Window { .. } | ApiResponse::Focus { .. } => {
                unreachable!("payload-carrying variants serialize in to_json")
            }
            ApiResponse::Hits { hits } => {
                members.push((
                    "hits".into(),
                    Json::Arr(
                        hits.iter()
                            .map(|h| {
                                Json::Obj(vec![
                                    ("node".into(), Json::uint(h.node)),
                                    ("label".into(), Json::Str(h.label.clone())),
                                    ("x".into(), Json::Float(h.x)),
                                    ("y".into(), Json::Float(h.y)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            ApiResponse::Mutated {
                dataset,
                layer,
                epoch,
                rid,
            } => {
                members.push(("dataset".into(), Json::Str(dataset.clone())));
                members.push(("layer".into(), Json::uint(*layer as u64)));
                members.push(("epoch".into(), Json::uint(*epoch)));
                if let Some(rid) = rid {
                    members.push(("rid".into(), Json::uint(*rid)));
                }
            }
            ApiResponse::Session { id } => {
                members.push(("session".into(), Json::uint(*id)));
            }
            ApiResponse::Closed => {
                members.push(("closed".into(), Json::Bool(true)));
            }
            ApiResponse::Flushed { dataset, pages } => {
                members.push(("dataset".into(), Json::Str(dataset.clone())));
                members.push(("pages".into(), Json::uint(*pages)));
            }
            ApiResponse::Aggregate {
                dataset,
                layer,
                epoch,
                result,
            } => {
                members.push(("dataset".into(), Json::Str(dataset.clone())));
                members.push(("layer".into(), Json::uint(*layer as u64)));
                members.push(("epoch".into(), Json::uint(*epoch)));
                members.push(("result".into(), result.to_value()));
            }
            ApiResponse::Stats(stats) => {
                members.push(("served".into(), Json::uint(stats.served)));
                members.push(("rejected".into(), Json::uint(stats.rejected)));
                members.push(("workers".into(), Json::uint(stats.workers)));
                members.push(("backlog".into(), Json::uint(stats.backlog)));
                members.push(("active_workers".into(), Json::uint(stats.active_workers)));
                members.push((
                    "open_connections".into(),
                    Json::uint(stats.open_connections),
                ));
                members.push(("cpus".into(), Json::uint(stats.cpus)));
                members.push((
                    "shards_policy".into(),
                    Json::Str(stats.shards_policy.clone()),
                ));
                if let Some(r) = &stats.replication {
                    members.push(("replication".into(), r.to_value()));
                }
                members.push((
                    "datasets".into(),
                    Json::Arr(stats.datasets.iter().map(DatasetStats::to_value).collect()),
                ));
            }
            ApiResponse::Error(e) => {
                members.push(("error".into(), e.to_value()));
            }
        }
        Json::Obj(members)
    }

    /// Parse the wire form produced by [`ApiResponse::to_json`]. The graph
    /// payload of `window` / `focus` responses is re-canonicalized (parsed
    /// and re-serialized), so it is validated JSON.
    pub fn from_json(text: &str) -> ApiResult<ApiResponse> {
        let v = Json::parse(text)
            .map_err(|e| ApiError::bad_request(format!("malformed response: {e}")))?;
        let kind = need_str(&v, "kind")?;
        Ok(match kind {
            "datasets" => ApiResponse::Datasets {
                datasets: need(&v, "datasets")?
                    .as_arr()
                    .ok_or_else(|| ApiError::bad_request("datasets must be an array"))?
                    .iter()
                    .map(|d| {
                        Ok(DatasetInfo {
                            name: need_str(d, "name")?.to_string(),
                            layers: need_usize(d, "layers")?,
                        })
                    })
                    .collect::<ApiResult<_>>()?,
            },
            "layers" => ApiResponse::Layers {
                dataset: need_str(&v, "dataset")?.to_string(),
                layers: need(&v, "layers")?
                    .as_arr()
                    .ok_or_else(|| ApiError::bad_request("layers must be an array"))?
                    .iter()
                    .map(|l| {
                        Ok(LayerInfo {
                            index: need_usize(l, "index")?,
                            rows: need_u64(l, "rows")?,
                            epoch: need_u64(l, "epoch")?,
                            // Lenient: absent on pre-sharding servers.
                            rid_max: l.get("rid_max").and_then(Json::as_u64).unwrap_or(0),
                        })
                    })
                    .collect::<ApiResult<_>>()?,
            },
            "window" => ApiResponse::Window {
                meta: WindowMeta::from_value(need(&v, "window")?)?,
                graph: need(&v, "graph")?.to_string(),
            },
            "hits" => ApiResponse::Hits {
                hits: need(&v, "hits")?
                    .as_arr()
                    .ok_or_else(|| ApiError::bad_request("hits must be an array"))?
                    .iter()
                    .map(|h| {
                        Ok(SearchHitDto {
                            node: need_u64(h, "node")?,
                            label: need_str(h, "label")?.to_string(),
                            x: need_f64(h, "x")?,
                            y: need_f64(h, "y")?,
                        })
                    })
                    .collect::<ApiResult<_>>()?,
            },
            "focus" => ApiResponse::Focus {
                rows: need_u64(&v, "rows")?,
                graph: need(&v, "graph")?.to_string(),
            },
            "mutated" => ApiResponse::Mutated {
                dataset: need_str(&v, "dataset")?.to_string(),
                layer: need_usize(&v, "layer")?,
                epoch: need_u64(&v, "epoch")?,
                rid: v.get("rid").and_then(Json::as_u64),
            },
            "session" => ApiResponse::Session {
                id: need_u64(&v, "session")?,
            },
            "closed" => ApiResponse::Closed,
            "flushed" => ApiResponse::Flushed {
                dataset: need_str(&v, "dataset")?.to_string(),
                pages: need_u64(&v, "pages")?,
            },
            "aggregate" => ApiResponse::Aggregate {
                dataset: need_str(&v, "dataset")?.to_string(),
                layer: need_usize(&v, "layer")?,
                epoch: need_u64(&v, "epoch")?,
                result: AggregateDto::from_value(need(&v, "result")?)?,
            },
            "stats" => ApiResponse::Stats(StatsDto {
                served: need_u64(&v, "served")?,
                rejected: need_u64(&v, "rejected")?,
                workers: need_u64(&v, "workers")?,
                backlog: need_u64(&v, "backlog")?,
                // Lenient: absent in payloads from pre-reactor servers.
                active_workers: v.get("active_workers").and_then(Json::as_u64).unwrap_or(0),
                open_connections: v
                    .get("open_connections")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                cpus: v.get("cpus").and_then(Json::as_u64).unwrap_or(0),
                shards_policy: v
                    .get("shards_policy")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                replication: v.get("replication").map(repl::ReplStatsDto::from_value),
                datasets: need(&v, "datasets")?
                    .as_arr()
                    .ok_or_else(|| ApiError::bad_request("datasets must be an array"))?
                    .iter()
                    .map(DatasetStats::from_value)
                    .collect::<ApiResult<_>>()?,
            }),
            "error" => ApiResponse::Error(ApiError::from_value(need(&v, "error")?)?),
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown response kind '{other}'"
                )));
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Field-extraction helpers
// ---------------------------------------------------------------------------

pub(crate) fn need<'a>(v: &'a Json, key: &str) -> ApiResult<&'a Json> {
    v.get(key)
        .ok_or_else(|| ApiError::bad_request(format!("missing field '{key}'")))
}

pub(crate) fn need_str<'a>(v: &'a Json, key: &str) -> ApiResult<&'a str> {
    need(v, key)?
        .as_str()
        .ok_or_else(|| ApiError::bad_request(format!("field '{key}' must be a string")))
}

pub(crate) fn need_u64(v: &Json, key: &str) -> ApiResult<u64> {
    need(v, key)?
        .as_u64()
        .ok_or_else(|| ApiError::bad_request(format!("field '{key}' must be an unsigned integer")))
}

pub(crate) fn need_usize(v: &Json, key: &str) -> ApiResult<usize> {
    need(v, key)?
        .as_usize()
        .ok_or_else(|| ApiError::bad_request(format!("field '{key}' must be an unsigned integer")))
}

pub(crate) fn need_f64(v: &Json, key: &str) -> ApiResult<f64> {
    need(v, key)?
        .as_f64()
        .ok_or_else(|| ApiError::bad_request(format!("field '{key}' must be a number")))
}
