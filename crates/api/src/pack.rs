//! Compact `Rows` frame encoding — the wire-side half of the platform's
//! compression story (the storage half lives in `gvdb-storage::compress`).
//!
//! A [`PackedRows`] batch carries the same information as one `Graph`
//! row frame — the nodes first seen in this frame plus the frame's
//! edges — but as a delta/dictionary-coded binary image instead of
//! spliced JSON text:
//!
//! * **Shared label dictionary** — node and edge labels in first-use
//!   order, front-coded against the previous entry (shared byte prefix
//!   length + suffix), referenced by index everywhere else.
//! * **Nodes** — zigzag-varint id delta vs the previous node, label
//!   index, and the two coordinates as raw `f64` bits XORed against the
//!   previous node's bits (a nibble header says how many significant
//!   low-order bytes follow per channel). Coordinates travel as *exact
//!   bits*, never re-parsed text, so the client reprints them with the
//!   same canonical writer the server uses and the output is
//!   byte-identical.
//! * **Edges** — zigzag-varint deltas for row id / source / target
//!   (each vs the previous edge), and `label_idx·2 + directed` packed
//!   in one varint.
//!
//! The binary image rides inside the JSON frame as a base64 string
//! (`"packed":"…"`, see `frame.rs`); [`PackedRows::to_graph_fragment`]
//! reconstructs the exact `{"nodes":[…],"edges":[…]}` fragment the
//! plain `Graph` frame would have carried, using the canonical node and
//! edge writers defined here — `gvdb-core::json` delegates to the same
//! functions, which is what makes "decode on the client, reassemble,
//! compare byte-for-byte" a meaningful invariant instead of a hope.

use crate::json::escape_into;

/// One node as the packed frame carries it: exact `f64` coordinate bits,
/// not formatted text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedNode {
    /// Node id.
    pub id: u64,
    /// Node label (exact).
    pub label: String,
    /// `x.to_bits()` of the node position.
    pub xbits: u64,
    /// `y.to_bits()` of the node position.
    pub ybits: u64,
}

/// One edge as the packed frame carries it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedEdge {
    /// Row id.
    pub rid: u64,
    /// Source node id.
    pub source: u64,
    /// Target node id.
    pub target: u64,
    /// Edge label (exact).
    pub label: String,
    /// Whether the edge is directed.
    pub directed: bool,
}

/// One row frame in packed form: the nodes this frame introduces (in
/// emission order) plus its edges (in row-id arrival order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PackedRows {
    /// Nodes first referenced by this frame, in emission order.
    pub nodes: Vec<PackedNode>,
    /// This frame's edges.
    pub edges: Vec<PackedEdge>,
}

// ---------------------------------------------------------------------------
// Canonical JSON writers (shared with gvdb-core::json)
// ---------------------------------------------------------------------------

/// The opening of a graph payload / fragment.
pub const NODES_PREFIX: &str = "{\"nodes\":[";
/// The separator between the node and edge arrays.
pub const EDGES_SEP: &str = "],\"edges\":[";
/// The closing of a graph payload / fragment.
pub const SUFFIX: &str = "]}";

/// The canonical coordinate form: rounded to two decimals (pixel
/// coordinates don't need full precision), then printed with the same
/// float grammar the JSON layer uses — trailing zeros dropped, a `.0`
/// marker kept on integral values. That grammar is a **fixed point** of
/// a parse-and-reprint cycle, so the exact same bytes appear on every
/// path: the server's canonical payload, a plain frame that crossed the
/// wire and was re-emitted by the JSON layer, and a packed frame decoded
/// from raw coordinate bits on the client.
pub fn push_f64_json(out: &mut String, v: f64) {
    let short = format!("{v:.2}");
    let rounded: f64 = short.parse().unwrap_or(v);
    crate::json::write_f64(rounded, out);
}

/// Write one canonical node object (`{"id","label","x","y"}`).
pub fn write_node_json(buf: &mut String, id: u64, label: &str, x: f64, y: f64) {
    buf.push_str("{\"id\":");
    buf.push_str(&id.to_string());
    buf.push_str(",\"label\":\"");
    escape_into(label, buf);
    buf.push_str("\",\"x\":");
    push_f64_json(buf, x);
    buf.push_str(",\"y\":");
    push_f64_json(buf, y);
    buf.push('}');
}

/// Write one canonical edge object
/// (`{"id","source","target","label","directed"}`).
pub fn write_edge_json(
    buf: &mut String,
    rid: u64,
    source: u64,
    target: u64,
    label: &str,
    directed: bool,
) {
    buf.push_str("{\"id\":");
    buf.push_str(&rid.to_string());
    buf.push_str(",\"source\":");
    buf.push_str(&source.to_string());
    buf.push_str(",\"target\":");
    buf.push_str(&target.to_string());
    buf.push_str(",\"label\":\"");
    escape_into(label, buf);
    buf.push_str("\",\"directed\":");
    buf.push_str(if directed { "true" } else { "false" });
    buf.push('}');
}

impl PackedRows {
    /// Reconstruct the exact `{"nodes":[…],"edges":[…]}` fragment the
    /// equivalent plain `Graph` frame carries.
    pub fn to_graph_fragment(&self) -> String {
        let mut out = String::with_capacity(self.nodes.len() * 64 + self.edges.len() * 96 + 32);
        out.push_str(NODES_PREFIX);
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_node_json(
                &mut out,
                n.id,
                &n.label,
                f64::from_bits(n.xbits),
                f64::from_bits(n.ybits),
            );
        }
        out.push_str(EDGES_SEP);
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_edge_json(&mut out, e.rid, e.source, e.target, &e.label, e.directed);
        }
        out.push_str(SUFFIX);
        out
    }

    /// Encode to the binary image (see module docs for the layout).
    pub fn encode(&self) -> Vec<u8> {
        fn intern<'a>(
            index: &mut std::collections::HashMap<&'a str, u64>,
            dict: &mut Vec<&'a str>,
            label: &'a str,
        ) -> u64 {
            *index.entry(label).or_insert_with(|| {
                dict.push(label);
                dict.len() as u64 - 1
            })
        }
        let mut index = std::collections::HashMap::new();
        let mut dict: Vec<&str> = Vec::new();
        // First-use order across nodes then edges — the decoder rebuilds
        // indices implicitly, so order is part of the format.
        let node_label_idx: Vec<u64> = self
            .nodes
            .iter()
            .map(|n| intern(&mut index, &mut dict, &n.label))
            .collect();
        let edge_label_idx: Vec<u64> = self
            .edges
            .iter()
            .map(|e| intern(&mut index, &mut dict, &e.label))
            .collect();

        let mut out = Vec::with_capacity(self.nodes.len() * 8 + self.edges.len() * 6 + 64);
        put_varint(&mut out, self.nodes.len() as u64);
        put_varint(&mut out, self.edges.len() as u64);
        put_varint(&mut out, dict.len() as u64);
        let mut prev: &[u8] = b"";
        for entry in &dict {
            let bytes = entry.as_bytes();
            let shared = prev.iter().zip(bytes).take_while(|(a, b)| a == b).count();
            put_varint(&mut out, shared as u64);
            put_varint(&mut out, (bytes.len() - shared) as u64);
            out.extend_from_slice(&bytes[shared..]);
            prev = bytes;
        }

        let (mut prev_id, mut prev_x, mut prev_y) = (0u64, 0u64, 0u64);
        for (n, &label_idx) in self.nodes.iter().zip(&node_label_idx) {
            put_zigzag(&mut out, n.id.wrapping_sub(prev_id) as i64);
            put_varint(&mut out, label_idx);
            let dx = n.xbits ^ prev_x;
            let dy = n.ybits ^ prev_y;
            let (nx, ny) = (sig_bytes(dx), sig_bytes(dy));
            out.push(((ny as u8) << 4) | nx as u8);
            out.extend_from_slice(&dx.to_le_bytes()[..nx]);
            out.extend_from_slice(&dy.to_le_bytes()[..ny]);
            prev_id = n.id;
            prev_x = n.xbits;
            prev_y = n.ybits;
        }

        let (mut prev_rid, mut prev_src, mut prev_dst) = (0u64, 0u64, 0u64);
        for (e, &label_idx) in self.edges.iter().zip(&edge_label_idx) {
            put_zigzag(&mut out, e.rid.wrapping_sub(prev_rid) as i64);
            put_zigzag(&mut out, e.source.wrapping_sub(prev_src) as i64);
            put_zigzag(&mut out, e.target.wrapping_sub(prev_dst) as i64);
            put_varint(&mut out, (label_idx << 1) | u64::from(e.directed));
            prev_rid = e.rid;
            prev_src = e.source;
            prev_dst = e.target;
        }
        out
    }

    /// Decode a binary image produced by [`PackedRows::encode`]. Fails
    /// loudly (never panics) on truncated or malformed input.
    pub fn decode(bytes: &[u8]) -> Result<PackedRows, String> {
        let mut cur = Cursor { bytes, pos: 0 };
        let node_count = cur.varint()? as usize;
        let edge_count = cur.varint()? as usize;
        let dict_len = cur.varint()? as usize;
        // A frame never carries more entries than bytes; reject early so
        // a hostile length can't trigger a huge allocation (checked: the
        // sum itself must not overflow on hostile near-u64::MAX counts).
        let total = node_count
            .checked_add(edge_count)
            .and_then(|t| t.checked_add(dict_len));
        match total {
            Some(t) if t <= bytes.len().saturating_add(3) => {}
            _ => return Err("packed frame: counts exceed image size".into()),
        }
        let mut dict: Vec<String> = Vec::with_capacity(dict_len);
        let mut prev: Vec<u8> = Vec::new();
        for _ in 0..dict_len {
            let shared = cur.varint()? as usize;
            let suffix_len = cur.varint()? as usize;
            if shared > prev.len() {
                return Err("packed frame: dict prefix longer than previous entry".into());
            }
            let suffix = cur.take(suffix_len)?;
            let mut entry = Vec::with_capacity(shared + suffix_len);
            entry.extend_from_slice(&prev[..shared]);
            entry.extend_from_slice(suffix);
            let text = String::from_utf8(entry.clone())
                .map_err(|_| "packed frame: dict entry is not UTF-8".to_string())?;
            prev = entry;
            dict.push(text);
        }
        let label = |idx: u64| -> Result<String, String> {
            dict.get(idx as usize)
                .cloned()
                .ok_or_else(|| format!("packed frame: label index {idx} out of range"))
        };

        let mut nodes = Vec::with_capacity(node_count);
        let (mut prev_id, mut prev_x, mut prev_y) = (0u64, 0u64, 0u64);
        for _ in 0..node_count {
            let id = prev_id.wrapping_add(cur.zigzag()? as u64);
            let label = label(cur.varint()?)?;
            let header = cur.take(1)?[0];
            let (nx, ny) = ((header & 0x0F) as usize, (header >> 4) as usize);
            if nx > 8 || ny > 8 {
                return Err("packed frame: coordinate byte count out of range".into());
            }
            let xbits = prev_x ^ read_le(cur.take(nx)?);
            let ybits = prev_y ^ read_le(cur.take(ny)?);
            prev_id = id;
            prev_x = xbits;
            prev_y = ybits;
            nodes.push(PackedNode {
                id,
                label,
                xbits,
                ybits,
            });
        }

        let mut edges = Vec::with_capacity(edge_count);
        let (mut prev_rid, mut prev_src, mut prev_dst) = (0u64, 0u64, 0u64);
        for _ in 0..edge_count {
            let rid = prev_rid.wrapping_add(cur.zigzag()? as u64);
            let source = prev_src.wrapping_add(cur.zigzag()? as u64);
            let target = prev_dst.wrapping_add(cur.zigzag()? as u64);
            let tag = cur.varint()?;
            let label = label(tag >> 1)?;
            prev_rid = rid;
            prev_src = source;
            prev_dst = target;
            edges.push(PackedEdge {
                rid,
                source,
                target,
                label,
                directed: tag & 1 == 1,
            });
        }
        if cur.pos != bytes.len() {
            return Err("packed frame: trailing bytes after the last edge".into());
        }
        Ok(PackedRows { nodes, edges })
    }

    /// Encode to the base64 text that rides in the JSON frame.
    pub fn encode_b64(&self) -> String {
        b64_encode(&self.encode())
    }

    /// Decode the base64 text of a JSON frame.
    pub fn decode_b64(text: &str) -> Result<PackedRows, String> {
        PackedRows::decode(&b64_decode(text)?)
    }
}

// ---------------------------------------------------------------------------
// Varint / zigzag primitives
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Significant low-order bytes of `v` (0 for 0, up to 8).
fn sig_bytes(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).div_ceil(8)
}

/// Little-endian read of up to 8 bytes.
fn read_le(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..bytes.len()].copy_from_slice(bytes);
    u64::from_le_bytes(buf)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        // Overflow-safe: `pos + n` would wrap on a hostile length field.
        if n > self.bytes.len() - self.pos {
            return Err("packed frame: truncated image".into());
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.take(1)?[0];
            if shift >= 64 {
                return Err("packed frame: varint overflows u64".into());
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn zigzag(&mut self) -> Result<i64, String> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }
}

// ---------------------------------------------------------------------------
// Base64 (standard alphabet, '=' padding) — the build vendors no codec
// crate, and the JSON layer needs the image as a clean string.
// ---------------------------------------------------------------------------

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with padding.
pub fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64[(triple >> 18) as usize & 0x3F] as char);
        out.push(B64[(triple >> 12) as usize & 0x3F] as char);
        out.push(if chunk.len() > 1 {
            B64[(triple >> 6) as usize & 0x3F] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[triple as usize & 0x3F] as char
        } else {
            '='
        });
    }
    out
}

/// Inverse of [`b64_encode`]; rejects non-alphabet bytes and bad shapes.
pub fn b64_decode(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err("base64: length not a multiple of 4".into());
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    let value = |b: u8| -> Result<u32, String> {
        match b {
            b'A'..=b'Z' => Ok(u32::from(b - b'A')),
            b'a'..=b'z' => Ok(u32::from(b - b'a') + 26),
            b'0'..=b'9' => Ok(u32::from(b - b'0') + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(format!("base64: invalid byte 0x{b:02x}")),
        }
    };
    for (i, quad) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = quad.iter().rev().take_while(|&&b| b == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return Err("base64: misplaced padding".into());
        }
        let mut triple = 0u32;
        for &b in &quad[..4 - pad] {
            triple = (triple << 6) | value(b)?;
        }
        triple <<= 6 * pad as u32;
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PackedRows {
        PackedRows {
            nodes: vec![
                PackedNode {
                    id: 7,
                    label: "patent US0000007".into(),
                    xbits: 102.25f64.to_bits(),
                    ybits: 18.5f64.to_bits(),
                },
                PackedNode {
                    id: 9,
                    label: "patent US0000009".into(),
                    xbits: 103.75f64.to_bits(),
                    ybits: 18.5f64.to_bits(),
                },
            ],
            edges: vec![
                PackedEdge {
                    rid: 40,
                    source: 7,
                    target: 9,
                    label: "cites".into(),
                    directed: true,
                },
                PackedEdge {
                    rid: 41,
                    source: 9,
                    target: 7,
                    label: "cites".into(),
                    directed: false,
                },
            ],
        }
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let rows = sample();
        let image = rows.encode();
        assert_eq!(PackedRows::decode(&image).unwrap(), rows);
        // Front-coded labels + deltas: well under the plain JSON size.
        assert!(image.len() < rows.to_graph_fragment().len() / 2);
    }

    #[test]
    fn b64_roundtrip_is_lossless() {
        let rows = sample();
        assert_eq!(PackedRows::decode_b64(&rows.encode_b64()).unwrap(), rows);
    }

    #[test]
    fn fragment_matches_canonical_shape() {
        let rows = PackedRows {
            nodes: vec![PackedNode {
                id: 1,
                label: "a\"b".into(),
                xbits: 1.0f64.to_bits(),
                ybits: (-2.345f64).to_bits(),
            }],
            edges: vec![PackedEdge {
                rid: 5,
                source: 1,
                target: 1,
                label: "loop".into(),
                directed: false,
            }],
        };
        assert_eq!(
            rows.to_graph_fragment(),
            "{\"nodes\":[{\"id\":1,\"label\":\"a\\\"b\",\"x\":1.0,\"y\":-2.35}],\
             \"edges\":[{\"id\":5,\"source\":1,\"target\":1,\"label\":\"loop\",\"directed\":false}]}"
        );
    }

    /// The canonical coordinate text must survive a parse-and-reprint
    /// cycle unchanged — that is what lets plain frames cross the JSON
    /// wire layer byte-intact and packed frames decode to the same bytes.
    #[test]
    fn coordinate_form_is_a_fixed_point_of_wire_reparse() {
        for v in [
            0.0, -0.0, 1.0, -1100.0, 123.456, -1051.94, -0.004, 1.005, 0.5, 1e15, -3.10,
        ] {
            let mut canonical = String::new();
            push_f64_json(&mut canonical, v);
            let reparsed: f64 = canonical.parse().unwrap();
            let mut reprinted = String::new();
            crate::json::write_f64(reparsed, &mut reprinted);
            assert_eq!(canonical, reprinted, "{v} broke the fixed point");
        }
    }

    #[test]
    fn empty_batch_roundtrips() {
        let rows = PackedRows::default();
        assert_eq!(PackedRows::decode(&rows.encode()).unwrap(), rows);
        assert_eq!(rows.to_graph_fragment(), "{\"nodes\":[],\"edges\":[]}");
    }

    #[test]
    fn hostile_bytes_fail_loudly() {
        assert!(PackedRows::decode(&[0xFF]).is_err()); // truncated varint
        assert!(PackedRows::decode(&[2, 0, 0]).is_err()); // nodes promised, absent
                                                          // counts that would allocate far past the image are rejected
        let mut huge = Vec::new();
        put_varint(&mut huge, u64::MAX / 2);
        huge.extend_from_slice(&[0, 0]);
        assert!(PackedRows::decode(&huge).is_err());
        // trailing garbage is an error, not silently ignored
        let mut image = sample().encode();
        image.push(0);
        assert!(PackedRows::decode(&image).is_err());
        assert!(b64_decode("####").is_err());
        assert!(b64_decode("Ab=c").is_err());
    }

    #[test]
    fn base64_matches_known_vectors() {
        assert_eq!(b64_encode(b""), "");
        assert_eq!(b64_encode(b"f"), "Zg==");
        assert_eq!(b64_encode(b"fo"), "Zm8=");
        assert_eq!(b64_encode(b"foo"), "Zm9v");
        assert_eq!(b64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(b64_decode("Zm9vYmE=").unwrap(), b"fooba");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        // Labels exercise escaping (quotes, backslashes, braces) and
        // non-ASCII (multi-byte UTF-8 front-coding boundaries).
        const LABEL: &str = "[a-c\"\\\\{}λé☃]{0,10}";

        fn arb_rows() -> impl Strategy<Value = PackedRows> {
            (
                prop::collection::vec((any::<u64>(), LABEL, any::<u64>(), any::<u64>()), 0..20),
                prop::collection::vec(
                    (
                        any::<u64>(),
                        any::<u64>(),
                        any::<u64>(),
                        LABEL,
                        any::<bool>(),
                    ),
                    0..30,
                ),
            )
                .prop_map(|(nodes, edges)| PackedRows {
                    nodes: nodes
                        .into_iter()
                        .map(|(id, label, xbits, ybits)| PackedNode {
                            id,
                            label,
                            xbits,
                            ybits,
                        })
                        .collect(),
                    edges: edges
                        .into_iter()
                        .map(|(rid, source, target, label, directed)| PackedEdge {
                            rid,
                            source,
                            target,
                            label,
                            directed,
                        })
                        .collect(),
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // Arbitrary ids (gaps, regressions), arbitrary coordinate
            // bits (NaN, infinities, denormals — everything a f64 can
            // hold travels losslessly), hostile labels.
            #[test]
            fn roundtrip_is_byte_identical(rows in arb_rows()) {
                let image = rows.encode();
                let back = PackedRows::decode(&image).unwrap();
                prop_assert_eq!(&back, &rows);
                prop_assert_eq!(back.to_graph_fragment(), rows.to_graph_fragment());
                let b64 = rows.encode_b64();
                prop_assert_eq!(PackedRows::decode_b64(&b64).unwrap(), rows);
            }
        }
    }
}
