//! The **attribute predicate AST** and window-aggregation DTOs — the typed
//! filter language of the protocol.
//!
//! A [`Predicate`] rides on [`crate::ApiRequest::Window`] /
//! [`crate::ApiRequest::Search`] (the optional `filter` member) and on
//! [`crate::ApiRequest::Aggregate`]. The engine (`gvdb-core`) pushes it
//! down into the batched heap fetch so non-matching rows are dropped
//! before payload assembly; this crate only defines the wire form.
//!
//! Wire form: tagged objects, e.g.
//!
//! ```json
//! {"kind":"and","preds":[
//!   {"kind":"range","field":"degree","min":2,"max":10},
//!   {"kind":"node_label_prefix","value":"Q1"}
//! ]}
//! ```
//!
//! Serialization is canonical — members in a fixed order, absent bounds
//! omitted — so `parse(text).to_value().to_string() == text` for
//! canonically-formatted input, matching the round-trip contract of every
//! other DTO in this crate.

use crate::{need, need_f64, need_str, need_u64, ApiError, ApiResult, Json};
use serde::{Deserialize, Serialize};

/// A filterable / aggregatable row attribute.
///
/// `X`/`Y` read a node's plane position; `Degree`/`Rank` read the
/// per-layer sidecar built at preprocess time (degree centrality and
/// PageRank from `gvdb-abstraction`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Field {
    /// Node plane position, x axis.
    X,
    /// Node plane position, y axis.
    Y,
    /// Degree centrality (sidecar).
    Degree,
    /// PageRank score (sidecar).
    Rank,
}

impl Field {
    /// The wire tag of this field.
    pub fn as_str(&self) -> &'static str {
        match self {
            Field::X => "x",
            Field::Y => "y",
            Field::Degree => "degree",
            Field::Rank => "rank",
        }
    }

    /// Parse a wire tag.
    pub fn parse(tag: &str) -> Option<Field> {
        Some(match tag {
            "x" => Field::X,
            "y" => Field::Y,
            "degree" => Field::Degree,
            "rank" => Field::Rank,
            _ => return None,
        })
    }
}

/// One node of the predicate AST.
///
/// Node-level predicates (`Range`, `NodeLabelEq`, `NodeLabelPrefix`) match
/// a **row** (an edge) when **either endpoint** satisfies them — a row is
/// visible if it touches a matching node, mirroring how the canvas
/// highlights. Edge-level predicates test the edge's own label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `min <= field <= max` on a numeric attribute; either bound may be
    /// absent (half-open range), not both.
    Range {
        /// The attribute tested.
        field: Field,
        /// Inclusive lower bound.
        min: Option<f64>,
        /// Inclusive upper bound.
        max: Option<f64>,
    },
    /// Node label equals the value exactly.
    NodeLabelEq(String),
    /// Node label starts with the value.
    NodeLabelPrefix(String),
    /// Edge label equals the value exactly.
    EdgeLabelEq(String),
    /// Edge label starts with the value.
    EdgeLabelPrefix(String),
    /// Every sub-predicate must match.
    And(Vec<Predicate>),
    /// At least one sub-predicate must match.
    Or(Vec<Predicate>),
}

impl Predicate {
    /// The wire tag of this operator.
    pub fn kind(&self) -> &'static str {
        match self {
            Predicate::Range { .. } => "range",
            Predicate::NodeLabelEq(_) => "node_label_eq",
            Predicate::NodeLabelPrefix(_) => "node_label_prefix",
            Predicate::EdgeLabelEq(_) => "edge_label_eq",
            Predicate::EdgeLabelPrefix(_) => "edge_label_prefix",
            Predicate::And(_) => "and",
            Predicate::Or(_) => "or",
        }
    }

    /// Whether any operator in the tree tests the edge label (what
    /// `search` rejects: keyword hits are nodes, not rows).
    pub fn references_edge_labels(&self) -> bool {
        match self {
            Predicate::EdgeLabelEq(_) | Predicate::EdgeLabelPrefix(_) => true,
            Predicate::And(preds) | Predicate::Or(preds) => {
                preds.iter().any(Predicate::references_edge_labels)
            }
            _ => false,
        }
    }

    /// Serialize to the canonical tagged-object form.
    pub fn to_value(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![("kind".into(), Json::Str(self.kind().into()))];
        match self {
            Predicate::Range { field, min, max } => {
                members.push(("field".into(), Json::Str(field.as_str().into())));
                if let Some(min) = min {
                    members.push(("min".into(), Json::Float(*min)));
                }
                if let Some(max) = max {
                    members.push(("max".into(), Json::Float(*max)));
                }
            }
            Predicate::NodeLabelEq(v)
            | Predicate::NodeLabelPrefix(v)
            | Predicate::EdgeLabelEq(v)
            | Predicate::EdgeLabelPrefix(v) => {
                members.push(("value".into(), Json::Str(v.clone())));
            }
            Predicate::And(preds) | Predicate::Or(preds) => {
                members.push((
                    "preds".into(),
                    Json::Arr(preds.iter().map(Predicate::to_value).collect()),
                ));
            }
        }
        Json::Obj(members)
    }

    /// Parse the tagged-object form. Depth is bounded (the AST is a
    /// user-supplied tree; an unbounded recursive parse would let a
    /// hostile body overflow the stack).
    pub fn from_value(v: &Json) -> ApiResult<Predicate> {
        Self::from_value_depth(v, 0)
    }

    fn from_value_depth(v: &Json, depth: usize) -> ApiResult<Predicate> {
        const MAX_DEPTH: usize = 32;
        if depth > MAX_DEPTH {
            return Err(ApiError::bad_request("predicate nesting too deep"));
        }
        let kind = need_str(v, "kind")?;
        Ok(match kind {
            "range" => {
                let field = Field::parse(need_str(v, "field")?)
                    .ok_or_else(|| ApiError::bad_request("unknown range field"))?;
                let min = v.get("min").and_then(Json::as_f64);
                let max = v.get("max").and_then(Json::as_f64);
                if min.is_none() && max.is_none() {
                    return Err(ApiError::bad_request(
                        "range predicate needs at least one of min/max",
                    ));
                }
                Predicate::Range { field, min, max }
            }
            "node_label_eq" => Predicate::NodeLabelEq(need_str(v, "value")?.to_string()),
            "node_label_prefix" => Predicate::NodeLabelPrefix(need_str(v, "value")?.to_string()),
            "edge_label_eq" => Predicate::EdgeLabelEq(need_str(v, "value")?.to_string()),
            "edge_label_prefix" => Predicate::EdgeLabelPrefix(need_str(v, "value")?.to_string()),
            "and" | "or" => {
                let preds = need(v, "preds")?
                    .as_arr()
                    .ok_or_else(|| ApiError::bad_request("preds must be an array"))?
                    .iter()
                    .map(|p| Self::from_value_depth(p, depth + 1))
                    .collect::<ApiResult<Vec<_>>>()?;
                if preds.is_empty() {
                    return Err(ApiError::bad_request("and/or needs at least one predicate"));
                }
                if kind == "and" {
                    Predicate::And(preds)
                } else {
                    Predicate::Or(preds)
                }
            }
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown predicate kind '{other}'"
                )));
            }
        })
    }

    /// Parse a predicate from raw JSON text (the `filter=` query
    /// parameter of `/v1/window` and `/v1/aggregate`).
    pub fn from_json(text: &str) -> ApiResult<Predicate> {
        let v = Json::parse(text)
            .map_err(|e| ApiError::bad_request(format!("malformed filter: {e}")))?;
        Predicate::from_value(&v)
    }

    /// Serialize to raw JSON text.
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// The aggregate computed over the filtered window.
///
/// `Count` counts filtered rows (edges); `Min`/`Max`/`Histogram` reduce a
/// [`Field`] over the **distinct nodes** of the filtered rows (each node
/// contributes once however many rows touch it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggOp {
    /// Number of filtered rows in the window.
    Count,
    /// Minimum of the field over the filtered window's nodes.
    Min(Field),
    /// Maximum of the field over the filtered window's nodes.
    Max(Field),
    /// Equi-width histogram of the field over the filtered window's
    /// nodes, `buckets` bins between the observed min and max.
    Histogram {
        /// The attribute bucketed.
        field: Field,
        /// Number of bins (1..=4096).
        buckets: usize,
    },
}

impl AggOp {
    /// The wire tag of this operation.
    pub fn op(&self) -> &'static str {
        match self {
            AggOp::Count => "count",
            AggOp::Min(_) => "min",
            AggOp::Max(_) => "max",
            AggOp::Histogram { .. } => "histogram",
        }
    }

    /// Serialize to the canonical tagged-object form, e.g.
    /// `{"op":"histogram","field":"degree","buckets":16}`.
    pub fn to_value(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![("op".into(), Json::Str(self.op().into()))];
        match self {
            AggOp::Count => {}
            AggOp::Min(field) | AggOp::Max(field) => {
                members.push(("field".into(), Json::Str(field.as_str().into())));
            }
            AggOp::Histogram { field, buckets } => {
                members.push(("field".into(), Json::Str(field.as_str().into())));
                members.push(("buckets".into(), Json::uint(*buckets as u64)));
            }
        }
        Json::Obj(members)
    }

    /// Parse the tagged-object form.
    pub fn from_value(v: &Json) -> ApiResult<AggOp> {
        let op = need_str(v, "op")?;
        let field = |v: &Json| -> ApiResult<Field> {
            Field::parse(need_str(v, "field")?)
                .ok_or_else(|| ApiError::bad_request("unknown aggregate field"))
        };
        Ok(match op {
            "count" => AggOp::Count,
            "min" => AggOp::Min(field(v)?),
            "max" => AggOp::Max(field(v)?),
            "histogram" => {
                let buckets = need_u64(v, "buckets")? as usize;
                if buckets == 0 || buckets > 4096 {
                    return Err(ApiError::bad_request("buckets must be in 1..=4096"));
                }
                AggOp::Histogram {
                    field: field(v)?,
                    buckets,
                }
            }
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown aggregate op '{other}'"
                )));
            }
        })
    }
}

/// An equi-width histogram over the observed `[lo, hi]` value range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramDto {
    /// Lower edge of the first bucket (the observed minimum).
    pub lo: f64,
    /// Upper edge of the last bucket (the observed maximum).
    pub hi: f64,
    /// Per-bucket counts, left to right.
    pub counts: Vec<u64>,
}

/// The result of one [`crate::ApiRequest::Aggregate`] — also the payload
/// of the streamed [`crate::ApiFrame::Summary`] frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateDto {
    /// The operation that was computed (echoed back).
    pub agg: AggOp,
    /// Filtered rows (edges) in the window.
    pub rows: u64,
    /// Distinct nodes among the filtered rows.
    pub nodes: u64,
    /// The scalar result of `min`/`max`; absent for `count`/`histogram`
    /// and when no rows matched.
    pub value: Option<f64>,
    /// The histogram result; absent unless `agg` is `histogram` and at
    /// least one row matched.
    pub histogram: Option<HistogramDto>,
}

impl AggregateDto {
    /// Serialize to the canonical object form.
    pub fn to_value(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            ("agg".into(), self.agg.to_value()),
            ("rows".into(), Json::uint(self.rows)),
            ("nodes".into(), Json::uint(self.nodes)),
        ];
        if let Some(v) = self.value {
            members.push(("value".into(), Json::Float(v)));
        }
        if let Some(h) = &self.histogram {
            members.push((
                "histogram".into(),
                Json::Obj(vec![
                    ("lo".into(), Json::Float(h.lo)),
                    ("hi".into(), Json::Float(h.hi)),
                    (
                        "counts".into(),
                        Json::Arr(h.counts.iter().map(|&c| Json::uint(c)).collect()),
                    ),
                ]),
            ));
        }
        Json::Obj(members)
    }

    /// Parse the object form.
    pub fn from_value(v: &Json) -> ApiResult<AggregateDto> {
        let histogram = match v.get("histogram") {
            Some(h) => Some(HistogramDto {
                lo: need_f64(h, "lo")?,
                hi: need_f64(h, "hi")?,
                counts: need(h, "counts")?
                    .as_arr()
                    .ok_or_else(|| ApiError::bad_request("counts must be an array"))?
                    .iter()
                    .map(|c| {
                        c.as_u64()
                            .ok_or_else(|| ApiError::bad_request("bad bucket count"))
                    })
                    .collect::<ApiResult<_>>()?,
            }),
            None => None,
        };
        Ok(AggregateDto {
            agg: AggOp::from_value(need(v, "agg")?)?,
            rows: need_u64(v, "rows")?,
            nodes: need_u64(v, "nodes")?,
            value: v.get("value").and_then(Json::as_f64),
            histogram,
        })
    }
}
