use gvdb_api::PackedRows;

#[test]
fn hostile_suffix_len_does_not_panic() {
    // 1 node, 0 edges, 1 dict entry with shared=0, suffix_len=u64::MAX
    let mut img = vec![1u8, 0u8, 1u8, 0u8];
    // varint for u64::MAX: ten bytes
    for _ in 0..9 { img.push(0xFF); }
    img.push(0x01);
    let r = std::panic::catch_unwind(|| PackedRows::decode(&img));
    match r {
        Ok(inner) => println!("returned: {:?}", inner.map(|_| ()).err()),
        Err(_) => println!("PANICKED"),
    }
}

#[test]
fn hostile_counts_overflow_guard() {
    // node_count = u64::MAX, edge_count = 2, dict_len = 0
    let mut img = Vec::new();
    for _ in 0..9 { img.push(0xFF); }
    img.push(0x01);
    img.push(2);
    img.push(0);
    let r = std::panic::catch_unwind(|| PackedRows::decode(&img));
    match r {
        Ok(inner) => println!("returned: {:?}", inner.map(|_| ()).err()),
        Err(_) => println!("PANICKED"),
    }
}
