//! Round-trip tests of the v1 wire protocol: every [`ApiRequest`] and
//! [`ApiResponse`] variant must survive `to_json` → `from_json` exactly.

use gvdb_api::{
    AggOp, AggregateDto, ApiError, ApiRequest, ApiResponse, CacheStatsDto, DatasetInfo,
    DatasetStats, EdgeDto, ErrorKind, Field, HistogramDto, LayerInfo, PackedRows, PoolStatsDto,
    Predicate, RectDto, SearchHitDto, SessionStatsDto, Source, StatsDto, WindowMeta,
};

fn rect() -> RectDto {
    RectDto {
        min_x: -10.25,
        min_y: 0.0,
        max_x: 1500.5,
        max_y: 2e6,
    }
}

fn edge() -> EdgeDto {
    EdgeDto {
        node1_id: 900_001,
        node1_label: "node \"A\" — draft".into(),
        node2_id: u64::MAX - 7, // above i64::MAX: must ride Json::UInt
        node2_label: "node B\nsecond line".into(),
        edge_label: "hand-drawn".into(),
        x1: 1.5,
        y1: -2.25,
        x2: 100.0,
        y2: 200.0,
        directed: true,
    }
}

#[track_caller]
fn roundtrip_request(req: ApiRequest) {
    let text = req.to_json();
    let parsed = ApiRequest::from_json(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
    assert_eq!(parsed, req, "wire form: {text}");
    // The wire form is itself stable (canonical writer).
    assert_eq!(parsed.to_json(), text);
}

#[track_caller]
fn roundtrip_response(resp: ApiResponse) {
    let text = resp.to_json();
    let parsed = ApiResponse::from_json(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
    assert_eq!(parsed, resp, "wire form: {text}");
    assert_eq!(parsed.to_json(), text);
}

#[test]
fn every_request_variant_roundtrips() {
    roundtrip_request(ApiRequest::ListDatasets);
    roundtrip_request(ApiRequest::ListLayers { dataset: None });
    roundtrip_request(ApiRequest::ListLayers {
        dataset: Some("patents".into()),
    });
    roundtrip_request(ApiRequest::Window {
        dataset: Some("dblp".into()),
        layer: Some(2),
        window: rect(),
        session: Some(41),
        packed: false,
        predicate: None,
        rid_range: None,
    });
    roundtrip_request(ApiRequest::Window {
        dataset: None,
        layer: None,
        window: rect(),
        session: None,
        packed: true,
        predicate: None,
        rid_range: Some((1024, 2047)),
    });
    roundtrip_request(ApiRequest::Window {
        dataset: None,
        layer: Some(0),
        window: rect(),
        session: None,
        packed: false,
        predicate: Some(Predicate::And(vec![
            Predicate::Range {
                field: Field::Degree,
                min: Some(2.0),
                max: Some(10.0),
            },
            Predicate::NodeLabelPrefix("Q1".into()),
        ])),
        rid_range: None,
    });
    roundtrip_request(ApiRequest::Search {
        dataset: None,
        layer: 0,
        query: "Faloutsos \"graph mining\"".into(),
        predicate: None,
    });
    roundtrip_request(ApiRequest::Search {
        dataset: Some("dblp".into()),
        layer: 1,
        query: "graph".into(),
        predicate: Some(Predicate::Range {
            field: Field::Rank,
            min: Some(0.01),
            max: None,
        }),
    });
    roundtrip_request(ApiRequest::Aggregate {
        dataset: Some("dblp".into()),
        layer: Some(1),
        window: rect(),
        predicate: Some(Predicate::NodeLabelEq("Q17".into())),
        agg: AggOp::Histogram {
            field: Field::Degree,
            buckets: 16,
        },
    });
    roundtrip_request(ApiRequest::Aggregate {
        dataset: None,
        layer: None,
        window: rect(),
        predicate: None,
        agg: AggOp::Count,
    });
    roundtrip_request(ApiRequest::Focus {
        dataset: Some("acm".into()),
        layer: 1,
        node: u64::from(u32::MAX) + 5,
    });
    roundtrip_request(ApiRequest::InsertEdge {
        dataset: Some("dblp".into()),
        layer: 0,
        edge: edge(),
    });
    roundtrip_request(ApiRequest::DeleteEdge {
        dataset: None,
        layer: 3,
        rid: (77u64 << 16) | 12, // a packed RowId
    });
    roundtrip_request(ApiRequest::SessionNew {
        dataset: None,
        window: None,
    });
    roundtrip_request(ApiRequest::SessionNew {
        dataset: Some("patents".into()),
        window: Some(rect()),
    });
    roundtrip_request(ApiRequest::SessionClose {
        dataset: None,
        session: 9,
    });
    roundtrip_request(ApiRequest::Flush { dataset: None });
    roundtrip_request(ApiRequest::Flush {
        dataset: Some("patents".into()),
    });
    roundtrip_request(ApiRequest::Stats);
}

#[test]
fn mutation_classification_feeds_the_write_gate() {
    assert!(ApiRequest::InsertEdge {
        dataset: None,
        layer: 0,
        edge: edge(),
    }
    .is_mutation());
    assert!(ApiRequest::DeleteEdge {
        dataset: None,
        layer: 0,
        rid: 1,
    }
    .is_mutation());
    // Flush persists state without changing rows; reads obviously don't.
    assert!(!ApiRequest::Flush { dataset: None }.is_mutation());
    assert!(!ApiRequest::Stats.is_mutation());
    assert!(!ApiRequest::Search {
        dataset: None,
        layer: 0,
        query: "q".into(),
        predicate: None,
    }
    .is_mutation());
}

#[test]
fn every_response_variant_roundtrips() {
    roundtrip_response(ApiResponse::Datasets {
        datasets: vec![
            DatasetInfo {
                name: "acm".into(),
                layers: 5,
            },
            DatasetInfo {
                name: "dblp".into(),
                layers: 3,
            },
        ],
    });
    roundtrip_response(ApiResponse::Layers {
        dataset: "acm".into(),
        layers: vec![
            LayerInfo {
                index: 0,
                rows: 150_000,
                epoch: 2,
                rid_max: (8191u64 << 16) | 9,
            },
            LayerInfo {
                index: 1,
                rows: 45_000,
                epoch: 0,
                rid_max: 0,
            },
        ],
    });
    roundtrip_response(ApiResponse::Window {
        meta: WindowMeta {
            dataset: "default".into(),
            layer: 0,
            epoch: 7,
            source: Source::Delta,
            rows_reused: 812,
            rows_fetched: 44,
            session: Some(3),
        },
        // Canonical payload text (what the parser re-emits).
        graph: r#"{"nodes":[{"id":1,"label":"a","x":1.5,"y":2.5}],"edges":[]}"#.into(),
    });
    roundtrip_response(ApiResponse::Window {
        meta: WindowMeta {
            dataset: "patents".into(),
            layer: 4,
            epoch: 0,
            source: Source::Cold,
            rows_reused: 0,
            rows_fetched: 1203,
            session: None,
        },
        graph: r#"{"nodes":[],"edges":[]}"#.into(),
    });
    roundtrip_response(ApiResponse::Hits {
        hits: vec![SearchHitDto {
            node: 42,
            label: "C. Faloutsos".into(),
            x: -17.25,
            y: 3300.5,
        }],
    });
    roundtrip_response(ApiResponse::Focus {
        rows: 6,
        graph: r#"{"nodes":[{"id":9,"label":"hub","x":0.5,"y":0.5}],"edges":[]}"#.into(),
    });
    roundtrip_response(ApiResponse::Mutated {
        dataset: "default".into(),
        layer: 0,
        epoch: 3,
        rid: Some((8191u64 << 16) | 3),
    });
    roundtrip_response(ApiResponse::Mutated {
        dataset: "acm".into(),
        layer: 2,
        epoch: 11,
        rid: None,
    });
    roundtrip_response(ApiResponse::Session { id: 77 });
    roundtrip_response(ApiResponse::Closed);
    roundtrip_response(ApiResponse::Stats(StatsDto {
        served: 1_234,
        rejected: 5,
        workers: 4,
        backlog: 64,
        active_workers: 2,
        open_connections: 37,
        cpus: 8,
        shards_policy: "min(16, max(2, 2*cpus))".into(),
        replication: Some(gvdb_api::repl::ReplStatsDto {
            role: gvdb_api::repl::ReplRole::Follower,
            last_shipped_seq: 0,
            last_applied_seq: 12,
            lag: vec![1, 0, 0],
            shipped: 0,
            applied: 12,
            resyncs: 1,
        }),
        datasets: vec![DatasetStats {
            name: "default".into(),
            epochs: vec![3, 0, 0],
            cache: CacheStatsDto {
                hits: 100,
                partial_hits: 20,
                misses: 30,
                entries: 12,
                bytes: 1 << 20,
                shards: vec![(6, 1 << 19), (6, 1 << 19)],
            },
            pool: PoolStatsDto {
                hits: 9_000,
                misses: 120,
                evictions: 7,
                logical_bytes: 3 << 20,
                physical_bytes: 1 << 20,
                shards: vec![
                    (4_500, 60, 3, 3 << 19, 1 << 19),
                    (4_500, 60, 4, 3 << 19, 1 << 19),
                ],
            },
            sessions: SessionStatsDto {
                live: 2,
                created: 10,
                evictions: 3,
                expired: 5,
            },
            layers: vec![
                gvdb_api::LayerStatsDto {
                    index: 0,
                    rows: 150_000,
                    sidecar_nodes: 40_000,
                },
                gvdb_api::LayerStatsDto {
                    index: 1,
                    rows: 45_000,
                    sidecar_nodes: 0,
                },
            ],
            chooser: gvdb_api::ChooserStatsDto { index: 7, scan: 2 },
        }],
    }));
    roundtrip_response(ApiResponse::Flushed {
        dataset: "patents".into(),
        pages: 512,
    });
    roundtrip_response(ApiResponse::Aggregate {
        dataset: "default".into(),
        layer: 0,
        epoch: 4,
        result: AggregateDto {
            agg: AggOp::Count,
            rows: 812,
            nodes: 340,
            value: None,
            histogram: None,
        },
    });
    roundtrip_response(ApiResponse::Aggregate {
        dataset: "dblp".into(),
        layer: 2,
        epoch: 0,
        result: AggregateDto {
            agg: AggOp::Histogram {
                field: Field::Rank,
                buckets: 3,
            },
            rows: 40,
            nodes: 11,
            value: None,
            histogram: Some(HistogramDto {
                lo: 0.01,
                hi: 0.5,
                counts: vec![9, 0, 2],
            }),
        },
    });
    roundtrip_response(ApiResponse::Aggregate {
        dataset: "default".into(),
        layer: 0,
        epoch: 1,
        result: AggregateDto {
            agg: AggOp::Max(Field::Y),
            rows: 3,
            nodes: 4,
            value: Some(912.25),
            histogram: None,
        },
    });
    roundtrip_response(ApiResponse::Error(ApiError::new(
        ErrorKind::NotFound,
        "dataset 'acm' not found (available: dblp, patents)",
    )));
    roundtrip_response(ApiResponse::Error(ApiError::unauthorized(
        "mutations require 'Authorization: Bearer <api-key>'",
    )));
    roundtrip_response(ApiResponse::Error(ApiError::forbidden(
        "dataset 'patents' is read-only",
    )));
}

#[test]
fn error_kinds_map_to_http_statuses() {
    let cases = [
        (ErrorKind::BadRequest, "400"),
        (ErrorKind::NotFound, "404"),
        (ErrorKind::Conflict, "409"),
        (ErrorKind::TooLarge, "413"),
        (ErrorKind::Unauthorized, "401"),
        (ErrorKind::Forbidden, "403"),
        (ErrorKind::Unavailable, "503"),
        (ErrorKind::Internal, "500"),
    ];
    for (kind, status) in cases {
        assert!(kind.http_status().starts_with(status));
        assert_eq!(ErrorKind::parse(kind.as_str()), Some(kind));
    }
}

#[test]
fn malformed_requests_are_typed_errors() {
    for bad in [
        "",
        "not json",
        "{}",                                                      // no op
        r#"{"op":"frobnicate"}"#,                                  // unknown op
        r#"{"op":"window"}"#,                                      // missing window
        r#"{"op":"search","layer":0}"#,                            // missing q
        r#"{"op":"delete_edge","layer":0}"#,                       // missing rid
        r#"{"op":"insert_edge","layer":0,"edge":{"node1_id":1}}"#, // truncated edge
    ] {
        let err = ApiRequest::from_json(bad).expect_err(bad);
        assert_eq!(err.kind, ErrorKind::BadRequest, "{bad}");
    }
}

#[test]
fn window_graph_payload_is_validated_json() {
    let text = r#"{"kind":"window","window":{"dataset":"d","layer":0,"epoch":0,"source":"cold","rows_reused":0,"rows_fetched":0},"graph":{"nodes":[],"edges":"#;
    assert!(ApiResponse::from_json(text).is_err());
}

#[track_caller]
fn roundtrip_predicate(pred: Predicate) {
    let text = pred.to_json();
    let parsed = Predicate::from_json(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
    assert_eq!(parsed, pred, "wire form: {text}");
    assert_eq!(parsed.to_json(), text);
}

#[test]
fn every_predicate_operator_roundtrips() {
    roundtrip_predicate(Predicate::Range {
        field: Field::X,
        min: Some(-10.5),
        max: Some(99.25),
    });
    roundtrip_predicate(Predicate::Range {
        field: Field::Y,
        min: None,
        max: Some(0.0),
    });
    roundtrip_predicate(Predicate::Range {
        field: Field::Degree,
        min: Some(3.0),
        max: None,
    });
    roundtrip_predicate(Predicate::Range {
        field: Field::Rank,
        min: Some(0.001),
        max: Some(0.9),
    });
    roundtrip_predicate(Predicate::NodeLabelEq("C. Faloutsos".into()));
    roundtrip_predicate(Predicate::NodeLabelPrefix("\"quoted\" prefix".into()));
    roundtrip_predicate(Predicate::EdgeLabelEq("cites".into()));
    roundtrip_predicate(Predicate::EdgeLabelPrefix("co".into()));
    roundtrip_predicate(Predicate::And(vec![
        Predicate::NodeLabelPrefix("Q".into()),
        Predicate::Or(vec![
            Predicate::Range {
                field: Field::Degree,
                min: Some(5.0),
                max: None,
            },
            Predicate::EdgeLabelEq("knows".into()),
        ]),
    ]));
    roundtrip_predicate(Predicate::Or(vec![Predicate::NodeLabelEq("lone".into())]));
}

#[test]
fn malformed_predicates_are_typed_errors() {
    for bad in [
        r#"{"kind":"range","field":"x"}"#,              // no bound at all
        r#"{"kind":"range","field":"volume","min":1}"#, // unknown field
        r#"{"kind":"node_label_eq"}"#,                  // missing value
        r#"{"kind":"and","preds":[]}"#,                 // empty conjunction
        r#"{"kind":"between","field":"x","min":0}"#,    // unknown operator
        r#"{"field":"x","min":0}"#,                     // untagged
    ] {
        let err = Predicate::from_json(bad).expect_err(bad);
        assert_eq!(err.kind, ErrorKind::BadRequest, "{bad}");
    }
    // Nesting is depth-bounded: a 64-deep AND tower must be rejected, not
    // overflow the parser's stack.
    let deep = format!(
        "{}{}{}",
        r#"{"kind":"and","preds":["#.repeat(64),
        r#"{"kind":"node_label_eq","value":"x"}"#,
        "]}".repeat(64)
    );
    assert_eq!(
        Predicate::from_json(&deep).unwrap_err().kind,
        ErrorKind::BadRequest
    );
}

#[test]
fn edge_label_detection_sees_through_composition() {
    let node_only = Predicate::And(vec![
        Predicate::NodeLabelEq("a".into()),
        Predicate::Range {
            field: Field::Degree,
            min: Some(1.0),
            max: None,
        },
    ]);
    assert!(!node_only.references_edge_labels());
    let nested_edge = Predicate::Or(vec![
        Predicate::NodeLabelEq("a".into()),
        Predicate::And(vec![Predicate::EdgeLabelPrefix("ci".into())]),
    ]);
    assert!(nested_edge.references_edge_labels());
}

#[test]
fn stats_without_access_path_fields_still_parse() {
    // Payloads from pre-attribute-query servers carry no layers/chooser
    // members; the parser must default them instead of failing.
    let text = r#"{"kind":"stats","served":1,"rejected":0,"workers":2,"backlog":4,"active_workers":0,"open_connections":0,"cpus":2,"shards_policy":"p","datasets":[{"name":"d","epochs":[0],"cache":{"hits":0,"partial_hits":0,"misses":0,"entries":0,"bytes":0,"shards":[]},"pool":{"hits":0,"misses":0,"evictions":0,"shards":[]},"sessions":{"live":0,"created":0,"evictions":0,"expired":0}}]}"#;
    match ApiResponse::from_json(text).expect("lenient stats parse") {
        ApiResponse::Stats(stats) => {
            assert!(stats.datasets[0].layers.is_empty());
            assert_eq!(
                stats.datasets[0].chooser,
                gvdb_api::ChooserStatsDto::default()
            );
        }
        other => panic!("unexpected response {other:?}"),
    }
}

// Folded in from the PR 8 scratch test file (tmp_overflow_check.rs):
// hostile packed images with length fields near u64::MAX must come back
// as decode errors, never panics or huge allocations.
#[test]
fn hostile_packed_suffix_len_is_a_decode_error() {
    // 1 node, 0 edges, 1 dict entry with shared=0, suffix_len=u64::MAX.
    let mut img = vec![1u8, 0u8, 1u8, 0u8];
    img.extend(std::iter::repeat_n(0xFF, 9)); // varint u64::MAX
    img.push(0x01);
    assert!(PackedRows::decode(&img).is_err());
}

#[test]
fn hostile_packed_node_count_is_a_decode_error() {
    // node_count = u64::MAX, edge_count = 2, dict_len = 0.
    let mut img = Vec::new();
    img.extend(std::iter::repeat_n(0xFF, 9));
    img.push(0x01);
    img.push(2);
    img.push(0);
    assert!(PackedRows::decode(&img).is_err());
}
