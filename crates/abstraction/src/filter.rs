//! Filtering abstraction: keep the top fraction of nodes under a ranking
//! criterion, inducing the subgraph among them.
//!
//! This realizes the paper's "filtering parts of the graph according to a
//! metric, e.g., a node ranking criterion like PageRank" and the demo's
//! "view different layers of the graph that contain only the 'important'
//! nodes (e.g., sites whose PageRank score is above a threshold)".
//!
//! Layout inheritance is the identity: kept nodes keep their coordinates
//! from the layer below, so vertical navigation is spatially stable.

use crate::rank::RankingCriterion;
use gvdb_graph::{EdgeId, Graph, NodeId};

/// A filtered layer: the abstract graph plus id mappings to its parent.
#[derive(Debug, Clone)]
pub struct FilteredLayer {
    /// The abstract graph.
    pub graph: Graph,
    /// For each new node, the node id in the parent layer.
    pub node_map: Vec<NodeId>,
    /// For each new edge, the edge id in the parent layer.
    pub edge_map: Vec<EdgeId>,
    /// The score threshold actually applied.
    pub threshold: f64,
}

/// Keep the `fraction` highest-scoring nodes (at least 1 when the graph is
/// non-empty) and induce the subgraph among them.
///
/// # Panics
/// Panics if `fraction` is not within `(0, 1]`.
pub fn filter_top_fraction(g: &Graph, criterion: RankingCriterion, fraction: f64) -> FilteredLayer {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    let scores = criterion.scores(g);
    let n = g.node_count();
    if n == 0 {
        return FilteredLayer {
            graph: g.clone(),
            node_map: Vec::new(),
            edge_map: Vec::new(),
            threshold: 0.0,
        };
    }
    let keep = ((n as f64 * fraction).ceil() as usize).clamp(1, n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    // Sort by descending score; ties by node id for determinism.
    order.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let threshold = scores[order[keep - 1] as usize];
    let mut kept: Vec<NodeId> = order[..keep].iter().map(|&v| NodeId(v)).collect();
    kept.sort(); // stable ids: preserve parent order
    let (graph, edge_map) = g.induced_subgraph(&kept);
    FilteredLayer {
        graph,
        node_map: kept,
        edge_map,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_graph::generators::barabasi_albert;
    use gvdb_graph::GraphBuilder;

    #[test]
    fn keeps_requested_fraction() {
        let g = barabasi_albert(100, 2, 3);
        let layer = filter_top_fraction(&g, RankingCriterion::Degree, 0.2);
        assert_eq!(layer.graph.node_count(), 20);
        assert_eq!(layer.node_map.len(), 20);
    }

    #[test]
    fn kept_nodes_are_highest_degree() {
        let g = barabasi_albert(200, 2, 5);
        let layer = filter_top_fraction(&g, RankingCriterion::Degree, 0.1);
        let min_kept = layer.node_map.iter().map(|&v| g.degree(v)).min().unwrap();
        // Count nodes strictly above the lowest kept degree; they must all
        // be kept, so there can be at most 20 of them.
        let above = g.node_ids().filter(|&v| g.degree(v) > min_kept).count();
        assert!(
            above <= 20,
            "{above} nodes above threshold but only 20 kept"
        );
        assert_eq!(layer.threshold, min_kept as f64);
    }

    #[test]
    fn labels_and_edges_preserved() {
        let mut b = GraphBuilder::new_undirected();
        let a = b.add_node("hub");
        let c = b.add_node("mid");
        let d = b.add_node("leaf");
        b.add_edge(a, c, "ab");
        b.add_edge(a, c, "ab2");
        b.add_edge(c, d, "bc");
        let g = b.build();
        // ceil(3 * 0.5) = 2 nodes kept; degrees: a=2, c=3, d=1 -> keep a, c.
        let layer = filter_top_fraction(&g, RankingCriterion::Degree, 0.5);
        assert_eq!(layer.graph.node_count(), 2);
        assert_eq!(layer.graph.edge_count(), 2); // both a-c edges survive
        let labels: Vec<&str> = layer
            .graph
            .node_ids()
            .map(|v| layer.graph.node_label(v))
            .collect();
        assert_eq!(labels, vec!["hub", "mid"]);
    }

    #[test]
    fn fraction_one_is_identity_shape() {
        let g = barabasi_albert(50, 2, 1);
        let layer = filter_top_fraction(&g, RankingCriterion::PageRank, 1.0);
        assert_eq!(layer.graph.node_count(), 50);
        assert_eq!(layer.graph.edge_count(), g.edge_count());
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn zero_fraction_panics() {
        let g = barabasi_albert(10, 2, 1);
        filter_top_fraction(&g, RankingCriterion::Degree, 0.0);
    }

    #[test]
    fn empty_graph_passthrough() {
        let g = GraphBuilder::new_undirected().build();
        let layer = filter_top_fraction(&g, RankingCriterion::Degree, 0.5);
        assert_eq!(layer.graph.node_count(), 0);
    }
}
