//! The hierarchy builder: applies an abstraction method repeatedly to
//! produce the full layer stack, inheriting layouts bottom-up.
//!
//! "A layer i (i > 0) corresponds to a new graph that is produced by
//! applying an abstraction method to the graph at layer i−1. ... Each time
//! we create a new graph at layer i, its layout is based on the layout of
//! the graph at layer i−1." (paper §II-A)
//!
//! Layout inheritance:
//! * filtering keeps the surviving nodes' coordinates unchanged;
//! * summarization places each supernode at the centroid of its members.
//!
//! Positions are plain `(x, y)` pairs so this crate stays independent of
//! the layout engine.

use crate::filter::filter_top_fraction;
use crate::rank::RankingCriterion;
use crate::summarize::summarize_by_clusters;
use gvdb_graph::Graph;

/// How each successive layer is derived from the one below.
#[derive(Debug, Clone, Copy)]
pub enum AbstractionMethod {
    /// Keep the top `fraction` of nodes under `criterion`.
    Filter {
        /// Ranking criterion (degree / PageRank / HITS).
        criterion: RankingCriterion,
        /// Fraction of nodes kept per level, in `(0, 1)`.
        fraction: f64,
    },
    /// Merge clusters so that roughly `ratio * n` supernodes remain.
    Summarize {
        /// Supernodes per parent node, in `(0, 1)`.
        ratio: f64,
        /// Partitioner seed.
        seed: u64,
    },
}

/// Configuration for [`build_hierarchy`].
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// Number of abstraction layers **above** layer 0.
    pub levels: usize,
    /// Derivation method.
    pub method: AbstractionMethod,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        // The paper's evaluation indexes 5 layers per dataset (Table I
        // discussion); degree filtering at 30% per level is the demo's
        // default criterion.
        HierarchyConfig {
            levels: 4,
            method: AbstractionMethod::Filter {
                criterion: RankingCriterion::Degree,
                fraction: 0.3,
            },
        }
    }
}

/// One layer of the hierarchy.
#[derive(Debug, Clone)]
pub struct LayerData {
    /// The layer's graph (layer 0 = the input graph).
    pub graph: Graph,
    /// Plane coordinates per node, inherited bottom-up.
    pub positions: Vec<(f64, f64)>,
    /// For each node, the parent-layer node ids it represents
    /// (singletons for filtering; whole clusters for summarization).
    /// Layer 0 maps every node to itself.
    pub members: Vec<Vec<u32>>,
}

/// A bottom-up stack of abstraction layers; index 0 is the full graph.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Layers, least abstract first.
    pub layers: Vec<LayerData>,
}

impl Hierarchy {
    /// Number of layers including layer 0.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the hierarchy is empty (never true after building).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

/// Build the layer stack from the laid-out input graph.
///
/// Construction stops early when a layer reaches fewer than 2 nodes —
/// "our approach does not pose any restrictions to the number of layers",
/// but abstracting a single node is meaningless.
pub fn build_hierarchy(
    graph: &Graph,
    positions: &[(f64, f64)],
    config: &HierarchyConfig,
) -> Hierarchy {
    assert_eq!(
        graph.node_count(),
        positions.len(),
        "positions must cover every node"
    );
    let mut layers = vec![LayerData {
        graph: graph.clone(),
        positions: positions.to_vec(),
        members: (0..graph.node_count() as u32).map(|v| vec![v]).collect(),
    }];
    for level in 1..=config.levels {
        let parent = &layers[level - 1];
        if parent.graph.node_count() < 2 {
            break;
        }
        let layer = match config.method {
            AbstractionMethod::Filter {
                criterion,
                fraction,
            } => {
                let f = filter_top_fraction(&parent.graph, criterion, fraction);
                let positions = f
                    .node_map
                    .iter()
                    .map(|&v| parent.positions[v.index()])
                    .collect();
                let members = f.node_map.iter().map(|&v| vec![v.0]).collect();
                LayerData {
                    graph: f.graph,
                    positions,
                    members,
                }
            }
            AbstractionMethod::Summarize { ratio, seed } => {
                let clusters = ((parent.graph.node_count() as f64 * ratio).ceil() as u32).max(1);
                let s = summarize_by_clusters(&parent.graph, clusters, seed + level as u64);
                let k = s.graph.node_count();
                let mut sums = vec![(0.0f64, 0.0f64, 0u32); k];
                let mut members = vec![Vec::new(); k];
                for (v, &c) in s.membership.iter().enumerate() {
                    let (x, y) = parent.positions[v];
                    let slot = &mut sums[c as usize];
                    slot.0 += x;
                    slot.1 += y;
                    slot.2 += 1;
                    members[c as usize].push(v as u32);
                }
                let positions = sums
                    .iter()
                    .map(|&(x, y, n)| {
                        let n = n.max(1) as f64;
                        (x / n, y / n)
                    })
                    .collect();
                LayerData {
                    graph: s.graph,
                    positions,
                    members,
                }
            }
        };
        // Abstraction must strictly shrink the graph, or the stack stalls.
        if layer.graph.node_count() >= parent.graph.node_count() {
            break;
        }
        layers.push(layer);
    }
    Hierarchy { layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_graph::generators::{barabasi_albert, grid_graph};

    fn unit_positions(g: &Graph) -> Vec<(f64, f64)> {
        g.node_ids()
            .map(|v| (v.0 as f64, (v.0 / 7) as f64))
            .collect()
    }

    #[test]
    fn filter_hierarchy_shrinks_each_level() {
        let g = barabasi_albert(300, 2, 1);
        let h = build_hierarchy(&g, &unit_positions(&g), &HierarchyConfig::default());
        assert_eq!(h.len(), 5); // layer0 + 4
        for w in h.layers.windows(2) {
            assert!(w[1].graph.node_count() < w[0].graph.node_count());
        }
    }

    #[test]
    fn filter_preserves_positions() {
        let g = barabasi_albert(100, 2, 2);
        let pos = unit_positions(&g);
        let h = build_hierarchy(&g, &pos, &HierarchyConfig::default());
        let l1 = &h.layers[1];
        for (i, m) in l1.members.iter().enumerate() {
            assert_eq!(m.len(), 1);
            assert_eq!(l1.positions[i], pos[m[0] as usize]);
        }
    }

    #[test]
    fn summarize_positions_are_centroids() {
        let g = grid_graph(6, 6);
        let pos = unit_positions(&g);
        let cfg = HierarchyConfig {
            levels: 1,
            method: AbstractionMethod::Summarize {
                ratio: 0.25,
                seed: 7,
            },
        };
        let h = build_hierarchy(&g, &pos, &cfg);
        let l1 = &h.layers[1];
        for (i, members) in l1.members.iter().enumerate() {
            let cx: f64 =
                members.iter().map(|&v| pos[v as usize].0).sum::<f64>() / members.len() as f64;
            assert!((l1.positions[i].0 - cx).abs() < 1e-9);
        }
        // Every parent node appears in exactly one supernode.
        let mut all: Vec<u32> = l1.members.iter().flatten().copied().collect();
        all.sort();
        assert_eq!(all, (0..36).collect::<Vec<_>>());
    }

    #[test]
    fn stops_when_too_small() {
        let g = barabasi_albert(4, 1, 3);
        let cfg = HierarchyConfig {
            levels: 10,
            method: AbstractionMethod::Filter {
                criterion: RankingCriterion::Degree,
                fraction: 0.5,
            },
        };
        let h = build_hierarchy(&g, &unit_positions(&g), &cfg);
        assert!(h.len() < 11);
        assert!(h.layers.last().unwrap().graph.node_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "positions must cover")]
    fn mismatched_positions_panic() {
        let g = grid_graph(2, 2);
        build_hierarchy(&g, &[], &HierarchyConfig::default());
    }

    #[test]
    fn layer_zero_is_identity() {
        let g = grid_graph(3, 3);
        let pos = unit_positions(&g);
        let h = build_hierarchy(&g, &pos, &HierarchyConfig::default());
        assert_eq!(h.layers[0].graph.node_count(), 9);
        assert_eq!(h.layers[0].positions, pos);
        assert_eq!(h.layers[0].members[4], vec![4]);
    }
}
