//! # gvdb-abstract
//!
//! Multi-level abstraction of graphs (Fig. 1, Step 4 of graphVizdb).
//!
//! A layer *i* (i > 0) is "a new graph produced by applying an abstraction
//! method to the graph at layer i−1", built bottom-up, with each layer's
//! layout based on the layer below. Two families of methods from the
//! paper:
//!
//! * **Filtering** ([`filter`]): keep only nodes important under a ranking
//!   criterion — node degree, PageRank, or HITS, the three criteria the
//!   demo exposes in its Layer Panel ([`rank`]).
//! * **Summarization** ([`summarize`]): merge clusters of the graph into
//!   single abstract nodes (the partitioner provides the clusters).
//!
//! [`hierarchy`] drives either method repeatedly to build the full layer
//! stack with inherited layouts.

pub mod filter;
pub mod hierarchy;
pub mod rank;
pub mod summarize;

pub use filter::{filter_top_fraction, FilteredLayer};
pub use hierarchy::{build_hierarchy, AbstractionMethod, Hierarchy, HierarchyConfig, LayerData};
pub use rank::{degree_centrality, hits, pagerank, RankingCriterion};
pub use summarize::{summarize_by_clusters, SummarizedLayer};
