//! Summarization abstraction: merge clusters into single abstract nodes
//! ("merging parts of the graph into single nodes (like the graph
//! summarization methods we mentioned in the introduction)").
//!
//! Clusters come from the same multilevel partitioner used in Step 1 —
//! coherent, balanced groups with few crossing edges, which is exactly
//! what makes a readable summary. Each cluster becomes one supernode;
//! edges between clusters collapse into weighted superedges (weight =
//! crossing-edge count, recorded in the edge label).

use gvdb_graph::{Graph, GraphBuilder, NodeId};
use gvdb_partition::{partition, PartitionConfig};

/// A summarized layer: the abstract graph plus membership mapping.
#[derive(Debug, Clone)]
pub struct SummarizedLayer {
    /// The abstract graph: one node per cluster.
    pub graph: Graph,
    /// For each parent node, its supernode in this layer.
    pub membership: Vec<u32>,
    /// For each supernode, how many parent nodes it contains.
    pub sizes: Vec<u32>,
}

/// Summarize `g` into `clusters` supernodes using the multilevel
/// partitioner. Supernode labels summarize the dominant member label and
/// cluster size; superedge labels carry the collapsed edge count.
pub fn summarize_by_clusters(g: &Graph, clusters: u32, seed: u64) -> SummarizedLayer {
    let n = g.node_count();
    if n == 0 {
        return SummarizedLayer {
            graph: GraphBuilder::new_undirected().build(),
            membership: Vec::new(),
            sizes: Vec::new(),
        };
    }
    let clusters = clusters.clamp(1, n as u32);
    let mut cfg = PartitionConfig::with_k(clusters);
    cfg.seed = seed;
    let parts = partition(g, &cfg);
    let membership: Vec<u32> = parts.assignment().to_vec();
    let mut sizes = vec![0u32; clusters as usize];
    for &p in &membership {
        sizes[p as usize] += 1;
    }
    // Representative label per cluster: the member with the highest degree
    // (the node a user would recognize the cluster by).
    let mut rep: Vec<Option<NodeId>> = vec![None; clusters as usize];
    for v in g.node_ids() {
        let c = membership[v.index()] as usize;
        match rep[c] {
            None => rep[c] = Some(v),
            Some(r) if g.degree(v) > g.degree(r) => rep[c] = Some(v),
            _ => {}
        }
    }
    let mut b = GraphBuilder::with_capacity(false, clusters as usize, clusters as usize * 2);
    for c in 0..clusters as usize {
        let label = match rep[c] {
            Some(r) if sizes[c] > 1 => {
                format!("{} (+{} nodes)", g.node_label(r), sizes[c] - 1)
            }
            Some(r) => g.node_label(r).to_string(),
            None => format!("cluster {c}"),
        };
        b.add_node(label);
    }
    // Collapse crossing edges into weighted superedges.
    let mut weights: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();
    for e in g.edges() {
        let (cs, ct) = (membership[e.source.index()], membership[e.target.index()]);
        if cs == ct {
            continue;
        }
        let key = (cs.min(ct), cs.max(ct));
        *weights.entry(key).or_insert(0) += 1;
    }
    let mut entries: Vec<((u32, u32), u32)> = weights.into_iter().collect();
    entries.sort_unstable(); // deterministic edge ids
    for ((cs, ct), w) in entries {
        b.add_edge(NodeId(cs), NodeId(ct), format!("{w} edges"));
    }
    SummarizedLayer {
        graph: b.build(),
        membership,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_graph::generators::{grid_graph, planted_partition};

    #[test]
    fn supernode_count_matches_clusters() {
        let g = grid_graph(10, 10);
        let s = summarize_by_clusters(&g, 5, 1);
        assert_eq!(s.graph.node_count(), 5);
        assert_eq!(s.sizes.iter().sum::<u32>(), 100);
    }

    #[test]
    fn membership_covers_every_node() {
        let g = planted_partition(4, 30, 6.0, 0.5, 2);
        let s = summarize_by_clusters(&g, 4, 2);
        assert_eq!(s.membership.len(), 120);
        assert!(s.membership.iter().all(|&c| c < 4));
    }

    #[test]
    fn superedges_weighted_not_duplicated() {
        let g = planted_partition(2, 30, 6.0, 1.0, 3);
        let s = summarize_by_clusters(&g, 2, 3);
        // At most one superedge between the two clusters.
        assert!(s.graph.edge_count() <= 1);
        if s.graph.edge_count() == 1 {
            let e = s.graph.edge(gvdb_graph::EdgeId(0));
            assert!(e.label.ends_with("edges"));
        }
    }

    #[test]
    fn labels_name_representatives() {
        let g = grid_graph(4, 4);
        let s = summarize_by_clusters(&g, 2, 4);
        for v in s.graph.node_ids() {
            assert!(
                s.graph.node_label(v).contains("cell-"),
                "label {:?}",
                s.graph.node_label(v)
            );
        }
    }

    #[test]
    fn more_clusters_than_nodes_clamped() {
        let g = grid_graph(2, 2);
        let s = summarize_by_clusters(&g, 100, 5);
        assert_eq!(s.graph.node_count(), 4);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new_undirected().build();
        let s = summarize_by_clusters(&g, 4, 6);
        assert_eq!(s.graph.node_count(), 0);
    }
}
