//! Node ranking criteria: degree, PageRank, HITS — the three abstraction
//! criteria of the paper's demo ("Node degree, PageRank, HITS", §IV).

use gvdb_graph::Graph;

/// Which importance score drives filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankingCriterion {
    /// Undirected node degree.
    Degree,
    /// PageRank with damping 0.85.
    PageRank,
    /// HITS authority scores.
    HitsAuthority,
    /// HITS hub scores.
    HitsHub,
}

impl RankingCriterion {
    /// Compute scores for every node under this criterion.
    pub fn scores(&self, g: &Graph) -> Vec<f64> {
        match self {
            RankingCriterion::Degree => degree_centrality(g),
            RankingCriterion::PageRank => pagerank(g, 0.85, 30),
            RankingCriterion::HitsAuthority => hits(g, 30).0,
            RankingCriterion::HitsHub => hits(g, 30).1,
        }
    }
}

/// Degree per node as a float score.
pub fn degree_centrality(g: &Graph) -> Vec<f64> {
    g.node_ids().map(|v| g.degree(v) as f64).collect()
}

/// PageRank over the directed edge set (undirected graphs treat each edge
/// as bidirectional). Dangling mass is redistributed uniformly.
pub fn pagerank(g: &Graph, damping: f64, iterations: usize) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let directed = g.is_directed();
    // Out-degree per node under the chosen edge interpretation.
    let mut out_deg = vec![0usize; n];
    for e in g.edges() {
        out_deg[e.source.index()] += 1;
        if !directed && e.source != e.target {
            out_deg[e.target.index()] += 1;
        }
    }
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.fill(0.0);
        let mut dangling = 0.0;
        for (v, &d) in out_deg.iter().enumerate() {
            if d == 0 {
                dangling += rank[v];
            }
        }
        for e in g.edges() {
            let (s, t) = (e.source.index(), e.target.index());
            next[t] += rank[s] / out_deg[s] as f64;
            if !directed && s != t {
                next[s] += rank[t] / out_deg[t] as f64;
            }
        }
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        for r in next.iter_mut() {
            *r = base + damping * *r;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// HITS (Kleinberg): returns `(authority, hub)` scores, L2-normalized,
/// after `iterations` power iterations over the directed edges.
pub fn hits(g: &Graph, iterations: usize) -> (Vec<f64>, Vec<f64>) {
    let n = g.node_count();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let mut auth = vec![1.0f64; n];
    let mut hub = vec![1.0f64; n];
    for _ in 0..iterations {
        // authority = sum of hubs pointing in
        let mut new_auth = vec![0.0f64; n];
        for e in g.edges() {
            new_auth[e.target.index()] += hub[e.source.index()];
        }
        normalize(&mut new_auth);
        // hub = sum of authorities pointed to
        let mut new_hub = vec![0.0f64; n];
        for e in g.edges() {
            new_hub[e.source.index()] += new_auth[e.target.index()];
        }
        normalize(&mut new_hub);
        auth = new_auth;
        hub = new_hub;
    }
    (auth, hub)
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_graph::{GraphBuilder, NodeId};

    /// star: hub 0 pointed to by 1..=4
    fn in_star() -> Graph {
        let mut b = GraphBuilder::new_directed();
        let hub = b.add_node("hub");
        for i in 0..4 {
            let v = b.add_node(format!("leaf{i}"));
            b.add_edge(v, hub, "to-hub");
        }
        b.build()
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = in_star();
        let pr = pagerank(&g, 0.85, 50);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn pagerank_hub_ranks_highest() {
        let g = in_star();
        let pr = pagerank(&g, 0.85, 50);
        for i in 1..5 {
            assert!(pr[0] > pr[i], "hub not highest: {pr:?}");
        }
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let mut b = GraphBuilder::new_directed();
        for i in 0..5 {
            b.add_node(format!("{i}"));
        }
        for i in 0..5u32 {
            b.add_edge(NodeId(i), NodeId((i + 1) % 5), "");
        }
        let pr = pagerank(&b.build(), 0.85, 100);
        for &r in &pr {
            assert!((r - 0.2).abs() < 1e-9, "cycle not uniform: {pr:?}");
        }
    }

    #[test]
    fn hits_authority_vs_hub_on_star() {
        let g = in_star();
        let (auth, hub) = hits(&g, 50);
        // Node 0 is the authority; nodes 1..4 are hubs.
        assert!(auth[0] > auth[1] * 10.0);
        assert!(hub[1] > hub[0] * 10.0);
        // All leaves symmetric.
        for i in 2..5 {
            assert!((hub[i] - hub[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn degree_criterion_matches_graph_degree() {
        let g = in_star();
        let d = RankingCriterion::Degree.scores(&g);
        assert_eq!(d, vec![4.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn empty_graph_all_criteria() {
        let g = GraphBuilder::new_directed().build();
        for c in [
            RankingCriterion::Degree,
            RankingCriterion::PageRank,
            RankingCriterion::HitsAuthority,
            RankingCriterion::HitsHub,
        ] {
            assert!(c.scores(&g).is_empty());
        }
    }

    #[test]
    fn undirected_pagerank_treats_edges_both_ways() {
        let mut b = GraphBuilder::new_undirected();
        let a = b.add_node("a");
        let c = b.add_node("b");
        b.add_edge(a, c, "");
        let pr = pagerank(&b.build(), 0.85, 50);
        assert!((pr[0] - pr[1]).abs() < 1e-9);
    }
}
