//! Reproduce **Figure 3**: response time vs window size, per dataset.
//!
//! For every window size 200² … 3000² px, evaluate 100 random window
//! queries on layer 0 and report the averages of the four series the paper
//! plots — DB Query Execution, Build JSON Objects, Communication +
//! Rendering (simulated client, see `DESIGN.md` §4), Total Time — plus the
//! average number of nodes+edges per window.
//!
//! ```text
//! cargo run --release -p gvdb-bench --bin figure3
//! ```
//!
//! Shape to check against the paper:
//! * total time grows ~linearly with window size / object count;
//! * Communication + Rendering dominates the total;
//! * DB execution is negligible and grows only slightly.

use gvdb_bench::{prepare, random_windows, scale_from_env, Dataset};
use gvdb_core::QueryManager;

const WINDOW_SIDES: [f64; 5] = [200.0, 1500.0, 2000.0, 2500.0, 3000.0];
const QUERIES_PER_SIZE: usize = 100;

fn main() {
    let scale = scale_from_env();
    println!("graphVizdb Figure 3 reproduction (scale 1/{scale}, {QUERIES_PER_SIZE} random windows per size)\n");

    for ds in [Dataset::Wikidata, Dataset::Patent] {
        let graph = ds.generate(scale);
        let (db, _report, bounds, path) = prepare(&graph, &format!("fig3-{}", ds.name()));
        let qm = QueryManager::new(db);
        println!(
            "({}) {} — {} edges, {} nodes, plane {:.0} x {:.0} px",
            if ds == Dataset::Wikidata { "a" } else { "b" },
            ds.name(),
            graph.edge_count(),
            graph.node_count(),
            bounds.width(),
            bounds.height()
        );
        println!(
            "{:>10} | {:>12} {:>12} {:>14} {:>12} | {:>12}",
            "Window(px)", "DBexec(ms)", "JSON(ms)", "Comm+Rend(ms)", "Total(ms)", "Nodes+Edges"
        );
        let mut prev_total = 0.0;
        for (i, side) in WINDOW_SIDES.iter().enumerate() {
            let windows = random_windows(&bounds, *side, QUERIES_PER_SIZE, 7 + i as u64);
            let (mut db_ms, mut json_ms, mut client_ms, mut objects) = (0.0, 0.0, 0.0, 0usize);
            for w in &windows {
                let resp = qm.window_query(0, w).expect("window query");
                db_ms += resp.db_ms;
                json_ms += resp.build_json_ms;
                client_ms += resp.client.comm_render_ms;
                objects += resp.json.node_count + resp.json.edge_count;
            }
            let n = windows.len() as f64;
            let total = (db_ms + json_ms + client_ms) / n;
            println!(
                "{:>7.0}^2 | {:>12.3} {:>12.3} {:>14.1} {:>12.1} | {:>12.1}",
                side,
                db_ms / n,
                json_ms / n,
                client_ms / n,
                total,
                objects as f64 / n,
            );
            assert!(
                total >= prev_total * 0.5,
                "total time should grow (roughly) with window size"
            );
            prev_total = total;
        }
        println!();
        std::fs::remove_file(&path).ok();
    }
}
