//! Reproduce **Table I**: time for each preprocessing step, per dataset.
//!
//! ```text
//! cargo run --release -p gvdb-bench --bin table1
//! GVDB_SCALE=500 cargo run --release -p gvdb-bench --bin table1   # bigger
//! ```
//!
//! The paper reports minutes on an 8 GB VM at full dataset size; the
//! harness scales the datasets down (default 1000×) and reports seconds.
//! The shape to check, per the paper's §III discussion:
//! * Step 5 (indexing) dominates total preprocessing time;
//! * Step 1 (partitioning) costs more *per edge* for Patent than for
//!   Wikidata because of the higher average node degree.

use gvdb_bench::{prepare, scale_from_env, Dataset};

fn main() {
    let scale = scale_from_env();
    println!("graphVizdb Table I reproduction (scale 1/{scale} of the paper's datasets)\n");
    println!(
        "{:<10} {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>8}",
        "Dataset",
        "#Edges",
        "#Nodes",
        "Step1(s)",
        "Step2(s)",
        "Step3(s)",
        "Step4(s)",
        "Step5(s)",
        "Total(s)"
    );

    let mut per_edge: Vec<(&str, f64, f64)> = Vec::new();
    for ds in [Dataset::Wikidata, Dataset::Patent] {
        let graph = ds.generate(scale);
        let (_db, report, _bounds, path) = prepare(&graph, &format!("table1-{}", ds.name()));
        let t = &report.times;
        println!(
            "{:<10} {:>9} {:>9} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>8.2}",
            ds.name(),
            graph.edge_count(),
            graph.node_count(),
            t.partitioning.as_secs_f64(),
            t.layout.as_secs_f64(),
            t.organize.as_secs_f64(),
            t.abstraction.as_secs_f64(),
            t.indexing.as_secs_f64(),
            t.total().as_secs_f64(),
        );
        per_edge.push((
            ds.name(),
            t.partitioning.as_secs_f64() / graph.edge_count() as f64 * 1e6,
            t.indexing.as_secs_f64() / t.total().as_secs_f64(),
        ));
        std::fs::remove_file(&path).ok();
    }

    println!("\nshape checks (paper §III):");
    for (name, us_per_edge, idx_frac) in &per_edge {
        println!(
            "  {name}: partitioning {us_per_edge:.2} µs/edge; indexing = {:.0}% of total",
            idx_frac * 100.0
        );
    }
    if let [(_, wiki_ppe, _), (_, patent_ppe, _)] = per_edge.as_slice() {
        println!(
            "  partitioning cost per edge, Patent/Wikidata: {:.2}x (paper: Patent costs more per edge)",
            patent_ppe / wiki_ppe
        );
    }
}
