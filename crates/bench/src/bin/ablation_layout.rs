//! Ablation: why does graphVizdb lay out *partitions* instead of the whole
//! graph (Fig. 1 Steps 1–3)?
//!
//! Compares, at increasing graph size:
//! * whole-graph force-directed layout (the "holistic" baseline the paper
//!   argues against);
//! * the paper's pipeline: partition → per-partition layout → organizer.
//!
//! Reported: wall-clock time, peak working set proxy (largest subgraph
//! laid out at once), and layout quality (mean edge length relative to
//! plane side — lower is tighter).
//!
//! ```text
//! cargo run --release -p gvdb-bench --bin ablation_layout
//! ```

use gvdb_core::{organize_partitions, OrganizerConfig};
use gvdb_graph::generators::planted_partition;
use gvdb_layout::{ForceDirected, Layout, LayoutAlgorithm};
use gvdb_partition::{partition, PartitionConfig};
use std::time::Instant;

fn main() {
    println!("layout ablation: whole-graph vs partition-based (paper Steps 1-3)\n");
    println!(
        "{:>8} | {:>14} {:>14} | {:>12} {:>12} | {:>10} {:>10}",
        "nodes", "whole(ms)", "partition(ms)", "whole-mem", "part-mem", "whole-len", "part-len"
    );

    for communities in [4usize, 8, 16, 32] {
        let size = 250;
        let g = planted_partition(communities, size, 8.0, 0.5, 11);
        let n = g.node_count();

        // Whole-graph layout: everything in memory at once.
        let t = Instant::now();
        let whole = ForceDirected {
            iterations: 50,
            frame: 1000.0 * (communities as f64).sqrt(),
            ..Default::default()
        }
        .layout(&g);
        let whole_ms = t.elapsed().as_secs_f64() * 1e3;

        // Partition-based: layout never sees more than one partition.
        let t = Instant::now();
        let parts = partition(&g, &PartitionConfig::with_k(communities as u32));
        let layouts: Vec<Layout> = parts
            .parts()
            .iter()
            .map(|nodes| {
                let (sub, _) = g.induced_subgraph(nodes);
                ForceDirected {
                    iterations: 50,
                    ..Default::default()
                }
                .layout(&sub)
            })
            .collect();
        let organized = organize_partitions(&g, &parts, &layouts, &OrganizerConfig::default());
        let part_ms = t.elapsed().as_secs_f64() * 1e3;

        let max_part = parts.parts().iter().map(|p| p.len()).max().unwrap_or(0);

        // Quality: mean edge length normalized by plane side.
        let norm_len = |l: &Layout, side: f64| -> f64 {
            l.total_edge_length(&g) / g.edge_count() as f64 / side
        };
        let whole_side = 1000.0 * (communities as f64).sqrt();
        let part_side = organized.pitch * (communities as f64).sqrt();
        println!(
            "{:>8} | {:>14.1} {:>14.1} | {:>12} {:>12} | {:>10.4} {:>10.4}",
            n,
            whole_ms,
            part_ms,
            n,
            max_part,
            norm_len(&whole, whole_side),
            norm_len(&organized.layout, part_side),
        );
    }

    println!("\nreading: partition-based bounds the layout working set (part-mem << whole-mem)");
    println!("while keeping normalized edge lengths in the same regime — the paper's rationale");
    println!("for Steps 1-3 (layout algorithms 'require large amounts of memory in practice').");
}
