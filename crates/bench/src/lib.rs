//! Shared harness utilities for reproducing the graphVizdb evaluation
//! (Table I and Fig. 3) plus the ablation studies.
//!
//! The paper evaluates on Wikidata (151 M edges / 146 M nodes) and the
//! SNAP patent citation graph (16.5 M edges / 3.8 M nodes) on an 8 GB
//! cloud VM, with preprocessing taking hours. The harness scales both
//! datasets down by a configurable factor (default 1000×) while preserving
//! the two properties the evaluation exercises: the edge/node ratio of
//! each dataset and the ~10:1 size ratio *between* the datasets.
//!
//! Window sizes follow the paper (200² … 3000² pixels). To make object
//! counts per window comparable to Fig. 3 (hundreds of elements, not tens
//! of thousands), the organizer's tile size is derived from a target
//! object density per pixel² calibrated from the paper's own numbers
//! (~400 objects in a 3000² window). Layouts cluster objects within tiles,
//! so the effective constant (1.2 · 10⁻⁵ objects/px²) is tuned so the
//! *measured* per-window counts land in the paper's range.

use gvdb_core::{preprocess, OrganizerConfig, PreprocessConfig, PreprocessReport};
use gvdb_graph::generators::{patent_like, wikidata_like, CitationConfig, RdfConfig};
use gvdb_graph::Graph;
use gvdb_spatial::Rect;
use gvdb_storage::GraphDb;
use rand::prelude::*;
use std::path::PathBuf;

/// Object density (nodes+edges per px²) calibrated from Fig. 3.
pub const FIG3_DENSITY: f64 = 1.2e-5;

/// The two evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Wikidata-like RDF graph (|E| ≈ |V|, hubby, literal leaves).
    Wikidata,
    /// Patent-citation-like DAG (avg degree ≈ 4.34).
    Patent,
}

impl Dataset {
    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Wikidata => "Wikidata",
            Dataset::Patent => "Patent",
        }
    }

    /// Generate the dataset at `1/scale` of the paper's size.
    /// `scale = 1000` (default) gives ~151 k / ~16.5 k edges.
    pub fn generate(&self, scale: u64) -> Graph {
        match self {
            Dataset::Wikidata => {
                // Paper: 146 M nodes. nodes = 2 * entities (one literal per
                // entity on average); edges/nodes = 1.034 needs
                // lit + stmt = 2.07 per entity.
                let entities = (73_000_000 / scale.max(1)) as usize;
                wikidata_like(RdfConfig {
                    entities: entities.max(500),
                    literals_per_entity: 1.0,
                    statements_per_entity: 1.07,
                    seed: 42,
                })
            }
            Dataset::Patent => {
                let nodes = (3_800_000 / scale.max(1)) as usize;
                patent_like(CitationConfig {
                    nodes: nodes.max(500),
                    avg_citations: 4.34,
                    ..Default::default()
                })
            }
        }
    }
}

/// Temp path for a bench database.
pub fn bench_db_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gvdb-bench-{tag}-{}.db", std::process::id()));
    p
}

/// Preprocess `graph` with Fig. 3-calibrated tiling; returns the database,
/// the report and the plane bounds.
pub fn prepare(graph: &Graph, tag: &str) -> (GraphDb, PreprocessReport, Rect, PathBuf) {
    let path = bench_db_path(tag);
    let total_objects = (graph.node_count() + graph.edge_count()) as f64;
    // k proportional to graph size (paper §II-A): scale the per-partition
    // budget with the dataset so scaled-down runs still exercise Steps 1-3
    // with a realistic number of partitions (~32).
    let budget = (graph.node_count() / 32).max(256);
    let k = gvdb_partition::suggest_k(graph.node_count(), budget);
    let plane_side = (total_objects / FIG3_DENSITY).sqrt();
    let grid = (k as f64).sqrt().ceil();
    let tile = plane_side / grid;
    let cfg = PreprocessConfig {
        partition_node_budget: budget,
        organizer: OrganizerConfig { tile, padding: 0.1 },
        ..Default::default()
    };
    let (db, report) = preprocess(graph, &path, &cfg).expect("preprocessing failed");
    let bounds = plane_bounds(&report);
    (db, report, bounds, path)
}

/// Bounding box of the layer-0 layout.
pub fn plane_bounds(report: &PreprocessReport) -> Rect {
    let pos = &report.hierarchy.layers[0].positions;
    if pos.is_empty() {
        return Rect::new(0.0, 0.0, 1.0, 1.0);
    }
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &(x, y) in pos {
        min_x = min_x.min(x);
        min_y = min_y.min(y);
        max_x = max_x.max(x);
        max_y = max_y.max(y);
    }
    Rect::new(min_x, min_y, max_x, max_y)
}

/// `count` random square windows of side `size` inside `bounds`
/// (deterministic given `seed`).
pub fn random_windows(bounds: &Rect, size: f64, count: usize, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let max_x = (bounds.max_x - size).max(bounds.min_x);
            let max_y = (bounds.max_y - size).max(bounds.min_y);
            let x = bounds.min_x + rng.random::<f64>() * (max_x - bounds.min_x).max(0.0);
            let y = bounds.min_y + rng.random::<f64>() * (max_y - bounds.min_y).max(0.0);
            Rect::new(x, y, x + size, y + size)
        })
        .collect()
}

/// A deterministic interactive pan trajectory: `steps` square windows of
/// side `side`, consecutive windows overlapping by the fraction `overlap`
/// of their area along one axis, walking boustrophedon (right across the
/// plane, down one step, back left, …) so the whole run stays inside
/// `bounds`. This is the workload of the `window_pan` bench and the
/// `gvdb bench-smoke` trajectory: every step is the paper's §II-B pan
/// interaction at a controlled overlap ratio.
pub fn pan_trajectory(bounds: &Rect, side: f64, overlap: f64, steps: usize) -> Vec<Rect> {
    let step = (side * (1.0 - overlap)).max(1e-9);
    let max_x = (bounds.max_x - side).max(bounds.min_x);
    let max_y = (bounds.max_y - side).max(bounds.min_y);
    let mut x = bounds.min_x;
    let mut y = bounds.min_y;
    let mut dir = 1.0f64;
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        out.push(Rect::new(x, y, x + side, y + side));
        let nx = x + dir * step;
        if nx < bounds.min_x || nx > max_x {
            // Bounce: move down one step and reverse horizontal direction.
            dir = -dir;
            y = if y + step > max_y {
                bounds.min_y
            } else {
                y + step
            };
        } else {
            x = nx;
        }
    }
    out
}

/// Scale factor from the environment (`GVDB_SCALE`, default 1000; the
/// paper's size is `GVDB_SCALE=1`).
pub fn scale_from_env() -> u64 {
    std::env::var("GVDB_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}
/// Thread counts swept by the concurrent-read harnesses (the
/// `concurrent_reads` criterion bench and the `gvdb bench-smoke`
/// concurrency phase — both must measure the same workload).
pub const CONCURRENCY_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Distinct windows each reader thread cycles through in those
/// harnesses.
pub const CONCURRENCY_WINDOWS_PER_THREAD: usize = 8;

/// Window side for the concurrent-read harnesses: small enough that
/// every thread's entries fit the window cache, so the cached variant
/// really measures the hit path.
pub fn concurrency_window_side(bounds: &Rect) -> f64 {
    (bounds.width().min(bounds.height()) * 0.08).max(1.0)
}

/// Reader thread `t`'s `i`-th window for the concurrent-read harnesses:
/// deterministic, disjoint from other threads' sets, inside `bounds`.
pub fn concurrency_window(bounds: &Rect, side: f64, t: usize, i: usize) -> Rect {
    let fx = ((t * 131 + i * 29) % 97) as f64 / 97.0;
    let fy = ((t * 53 + i * 71) % 89) as f64 / 89.0;
    let x = bounds.min_x + fx * (bounds.width() - side).max(0.0);
    let y = bounds.min_y + fy * (bounds.height() - side).max(0.0);
    Rect::new(x, y, x + side, y + side)
}

/// The true-cold-baseline cache configuration shared by every bench
/// that measures the uncached path: one single-shard entry (each
/// insert evicts the previous window) and the delta path disabled, so
/// every query re-runs the full R-tree descent + heap fetch.
pub fn uncached_cache_config() -> gvdb_core::CacheConfig {
    gvdb_core::CacheConfig {
        capacity: 1,
        shards: 1,
        min_delta_overlap: 2.0,
        ..gvdb_core::CacheConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_preserve_paper_ratios() {
        let wiki = Dataset::Wikidata.generate(2000);
        let ratio = wiki.edge_count() as f64 / wiki.node_count() as f64;
        assert!((0.85..1.25).contains(&ratio), "wiki ratio {ratio}");

        let patent = Dataset::Patent.generate(2000);
        let avg = patent.edge_count() as f64 / patent.node_count() as f64;
        assert!((3.8..4.8).contains(&avg), "patent avg out-degree {avg}");
    }

    #[test]
    fn windows_stay_in_bounds() {
        let b = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
        for w in random_windows(&b, 500.0, 50, 1) {
            assert!(w.min_x >= 0.0 && w.max_x <= 10_000.0 + 500.0);
            assert!((w.width() - 500.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pan_trajectory_respects_overlap_and_bounds() {
        let b = Rect::new(0.0, 0.0, 10_000.0, 10_000.0);
        let side = 1000.0;
        let windows = pan_trajectory(&b, side, 0.8, 50);
        assert_eq!(windows.len(), 50);
        for w in &windows {
            assert!((w.width() - side).abs() < 1e-9);
            assert!(w.min_x >= b.min_x - 1e-9 && w.max_x <= b.max_x + 1e-9);
        }
        // Consecutive windows overlap by ~the requested fraction (bounce
        // steps shift on the other axis but keep the same overlap area).
        for p in windows.windows(2) {
            let frac = p[0].intersection_area(&p[1]) / p[1].area();
            assert!((0.79..1.0).contains(&frac), "overlap {frac}");
        }
    }

    #[test]
    fn prepare_produces_fig3_like_density() {
        let g = Dataset::Patent.generate(20_000); // tiny for test speed
        let (db, _report, bounds, path) = prepare(&g, "density-test");
        let area = bounds.width() * bounds.height();
        let density = (g.node_count() + g.edge_count()) as f64 / area;
        // Within a factor of a few of the target (padding, tile rounding).
        assert!(
            density < FIG3_DENSITY * 5.0 && density > FIG3_DENSITY / 20.0,
            "density {density}"
        );
        drop(db);
        std::fs::remove_file(&path).ok();
    }
}
