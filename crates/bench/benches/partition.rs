//! Ablation: partitioner cost and cut quality across k (the paper sets k
//! "proportional to the total graph size and the available memory").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gvdb_graph::generators::{planted_partition, rmat, RmatConfig};
use gvdb_partition::{partition, PartitionConfig};
use std::hint::black_box;

fn bench_k_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_k_sweep");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    let g = rmat(RmatConfig {
        scale: 13,
        edge_factor: 8,
        ..Default::default()
    });
    for k in [2u32, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(partition(&g, &PartitionConfig::with_k(k))))
        });
    }
    group.finish();
}

fn bench_degree_effect(c: &mut Criterion) {
    // Table I shape: higher average degree costs more per edge.
    let mut group = c.benchmark_group("partition_degree_effect");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    let sparse = planted_partition(8, 512, 2.0, 0.2, 1); // avg deg ~2.2
    let dense = planted_partition(8, 512, 8.0, 0.8, 1); // avg deg ~8.8
    group.bench_function("sparse_avg_deg_2", |b| {
        b.iter(|| black_box(partition(&sparse, &PartitionConfig::with_k(8))))
    });
    group.bench_function("dense_avg_deg_8", |b| {
        b.iter(|| black_box(partition(&dense, &PartitionConfig::with_k(8))))
    });
    group.finish();
}

criterion_group!(benches, bench_k_sweep, bench_degree_effect);
criterion_main!(benches);
