//! Ablation: full-text trie keyword search vs linear label scan — why
//! Fig. 2 puts tries on the label columns.

use criterion::{criterion_group, criterion_main, Criterion};
use gvdb_storage::trie::FullTextTrie;
use std::hint::black_box;

fn labels(n: usize) -> Vec<String> {
    let names = [
        "Christos Faloutsos",
        "graph visualization platform",
        "patent citation network",
        "database management systems",
        "linked open data cloud",
        "interactive exploration canvas",
    ];
    (0..n)
        .map(|i| format!("{} entity {i}", names[i % names.len()]))
        .collect()
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fulltext_search");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let labels = labels(100_000);
    let mut trie = FullTextTrie::new();
    for (i, l) in labels.iter().enumerate() {
        trie.insert(l, i as u64);
    }
    let keywords = ["falou", "citation", "canvas", "zzz-no-hit"];

    group.bench_function("trie_substring_x4", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for kw in keywords {
                hits += trie.search(kw).len();
            }
            black_box(hits)
        })
    });
    group.bench_function("linear_scan_x4", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for kw in keywords {
                hits += labels
                    .iter()
                    .filter(|l| l.to_lowercase().contains(kw))
                    .count();
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("fulltext_build");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    let labels = labels(20_000);
    group.bench_function("index_20k_labels", |b| {
        b.iter(|| {
            let mut trie = FullTextTrie::new();
            for (i, l) in labels.iter().enumerate() {
                trie.insert(l, i as u64);
            }
            black_box(trie.node_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search, bench_build);
criterion_main!(benches);
