//! The incremental-viewport benchmark: one interactive pan answered cold
//! (full R-tree descent + heap fetch + full JSON build, the pre-delta
//! engine) vs by the delta path (kept region reused from the overlapping
//! cached window, only the strips touch the index and heap), at 50%, 80%
//! and 95% viewport overlap.
//!
//! Each bencher iteration walks a short pan trajectory. The delta
//! manager's trajectory shifts a little every iteration so every query is
//! a *fresh* window that overlaps — but never equals — a cached one:
//! every measured query exercises the partial-hit path, never the exact
//! hit. The cold manager runs with the delta path disabled
//! (`min_delta_overlap > 1`) and an effectively empty result cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gvdb_bench::{pan_trajectory, prepare, Dataset};
use gvdb_core::{CacheConfig, QueryManager};
use gvdb_spatial::Rect;
use gvdb_storage::GraphDb;
use std::cell::Cell;
use std::hint::black_box;

const PANS_PER_ITER: usize = 5;

fn shifted(windows: &[Rect], dy: f64) -> Vec<Rect> {
    windows
        .iter()
        .map(|w| Rect::new(w.min_x, w.min_y + dy, w.max_x, w.max_y + dy))
        .collect()
}

fn bench_pan_overlaps(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_pan");
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);

    let graph = Dataset::Patent.generate(300); // ~12.7k nodes, ~55k edges
    let (db, _report, bounds, path) = prepare(&graph, "bench-pan");
    let qm_delta = QueryManager::new(db);
    // Cold baseline: delta path disabled, and a single one-entry shard so
    // each insert evicts the previous window — consecutive trajectory
    // windows are distinct, so no query is ever served from cache even
    // when the same trajectory replays across bench iterations.
    let qm_cold = QueryManager::with_cache_config(
        GraphDb::open(&path).expect("reopen"),
        CacheConfig {
            capacity: 1,
            shards: 1,
            min_delta_overlap: 2.0,
            ..CacheConfig::default()
        },
    );
    let side = bounds.width().min(bounds.height()) * 0.3;

    for overlap in [0.5f64, 0.8, 0.95] {
        let windows = pan_trajectory(&bounds, side, overlap, PANS_PER_ITER + 1);

        group.bench_with_input(
            BenchmarkId::new("cold", format!("{:.0}%", overlap * 100.0)),
            &windows,
            |b, windows| {
                b.iter(|| {
                    let mut rows = 0usize;
                    for w in windows.iter() {
                        let resp = qm_cold.window_query(0, w).unwrap();
                        assert!(!resp.cache_hit && !resp.delta, "baseline must stay cold");
                        rows += resp.rows.len();
                    }
                    black_box(rows)
                })
            },
        );

        // Shift the whole trajectory per iteration: windows repeat never,
        // overlap always.
        let iter_no = Cell::new(0u64);
        group.bench_with_input(
            BenchmarkId::new("delta", format!("{:.0}%", overlap * 100.0)),
            &windows,
            |b, windows| {
                b.iter(|| {
                    let n = iter_no.replace(iter_no.get() + 1);
                    let dy = (n % 64) as f64 * side * 0.003;
                    let trajectory = shifted(windows, dy);
                    // Seed the anchor, then measure delta pans.
                    let mut rows = qm_delta.window_query(0, &trajectory[0]).unwrap().rows.len();
                    for w in &trajectory[1..] {
                        let resp = qm_delta.window_query(0, w).unwrap();
                        debug_assert!(resp.delta || resp.cache_hit);
                        rows += resp.rows.len();
                    }
                    black_box(rows)
                })
            },
        );
    }
    group.finish();
    drop(qm_cold);
    drop(qm_delta);
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_pan_overlaps);
criterion_main!(benches);
