//! Ablation: B+-tree node-id lookups vs heap scans — why Fig. 2 puts
//! B-trees on the two id columns.

use criterion::{criterion_group, criterion_main, Criterion};
use gvdb_storage::btree::BTree;
use gvdb_storage::{BufferPool, Pager};
use std::hint::black_box;

fn setup(n: u64) -> (BufferPool, BTree, Vec<(u64, u64)>, std::path::PathBuf) {
    let mut path = std::env::temp_dir();
    path.push(format!("gvdb-bench-btree-{}-{n}.db", std::process::id()));
    let pool = BufferPool::new(Pager::create(&path).unwrap(), 1024);
    let mut tree = BTree::create(&pool).unwrap();
    let mut pairs = Vec::with_capacity(n as usize);
    for i in 0..n {
        // ~4 rows per node id, like a degree-4 citation graph.
        let key = i / 4;
        tree.insert(&pool, key, i).unwrap();
        pairs.push((key, i));
    }
    (pool, tree, pairs, path)
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree_lookup");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(20);
    let (pool, tree, pairs, path) = setup(200_000);
    let probes: Vec<u64> = (0..1_000).map(|i| (i * 37) % 50_000).collect();

    group.bench_function("btree_point_lookup_x1000", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &k in &probes {
                found += tree.get(&pool, k).unwrap().len();
            }
            black_box(found)
        })
    });
    group.bench_function("full_scan_baseline_x1", |b| {
        // A single scan for one key: even 1000 index lookups should beat
        // 1000 scans by orders of magnitude; we bench one scan for scale.
        b.iter(|| {
            let target = 25_000u64;
            let found = pairs.iter().filter(|(k, _)| *k == target).count();
            black_box(found)
        })
    });
    group.bench_function("btree_range_1000_keys", |b| {
        b.iter(|| {
            let mut n = 0usize;
            tree.range(&pool, 10_000, 11_000, |_, _| n += 1).unwrap();
            black_box(n)
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree_insert");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.bench_function("insert_50k_sorted", |b| {
        b.iter(|| {
            let mut path = std::env::temp_dir();
            path.push(format!("gvdb-bench-btree-ins-{}.db", std::process::id()));
            let pool = BufferPool::new(Pager::create(&path).unwrap(), 1024);
            let mut tree = BTree::create(&pool).unwrap();
            for i in 0..50_000u64 {
                tree.insert(&pool, i, i).unwrap();
            }
            black_box(tree.root_page());
            std::fs::remove_file(&path).ok();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_insert);
criterion_main!(benches);
