//! Concurrent read-path scaling: 1/2/4/8 threads hammering
//! `QueryManager::window_query` on per-thread distinct windows of one
//! shared manager, over a warm buffer pool.
//!
//! Two variants per thread count:
//!
//! * `cached` — the default manager: after warm-up every query is an
//!   exact window-cache hit, so this stresses the sharded cache locks
//!   and the database read-lock fast path.
//! * `uncached` — cache reduced to one entry with the delta path
//!   disabled: every query runs the full R-tree descent + batched heap
//!   fetch through the lock-striped buffer pool (pages resident, so
//!   contention, not disk, is what's measured).
//!
//! On a multi-core host aggregate throughput should grow with threads —
//! the point of the sharded pool is that there is no global lock to
//! plateau on. (On a single-core container the numbers stay flat; see
//! BENCH_concurrency.json's `host_cpus` field.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gvdb_bench::{
    bench_db_path, concurrency_window, concurrency_window_side, plane_bounds,
    uncached_cache_config, CONCURRENCY_THREADS, CONCURRENCY_WINDOWS_PER_THREAD,
};
use gvdb_core::{preprocess, PreprocessConfig, QueryManager};
use gvdb_graph::generators::{patent_like, CitationConfig};
use gvdb_spatial::Rect;
use gvdb_storage::GraphDb;
use std::hint::black_box;
use std::sync::Arc;

const QUERIES_PER_THREAD: usize = 50;

fn hammer(qm: &Arc<QueryManager>, bounds: &Rect, side: f64, threads: usize) -> usize {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let qm = Arc::clone(qm);
            let windows: Vec<Rect> = (0..CONCURRENCY_WINDOWS_PER_THREAD)
                .map(|i| concurrency_window(bounds, side, t, i))
                .collect();
            std::thread::spawn(move || {
                let mut rows = 0usize;
                for q in 0..QUERIES_PER_THREAD {
                    rows += qm
                        .window_query(0, &windows[q % windows.len()])
                        .expect("window query")
                        .rows
                        .len();
                }
                rows
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

fn bench_concurrent_reads(c: &mut Criterion) {
    let graph = patent_like(CitationConfig {
        nodes: 12_000,
        avg_citations: 4.34,
        ..Default::default()
    });
    let path = bench_db_path("concurrent-reads");
    let (db, report) = preprocess(&graph, &path, &PreprocessConfig::default()).unwrap();
    let bounds = plane_bounds(&report);
    let side = concurrency_window_side(&bounds);
    drop(db);

    let qm_hot = Arc::new(QueryManager::new(GraphDb::open(&path).unwrap()));
    let qm_cold = Arc::new(QueryManager::with_cache_config(
        GraphDb::open(&path).unwrap(),
        uncached_cache_config(),
    ));
    // Warm the pools and (for `hot`) the cache for every thread's set.
    for t in 0..8 {
        for i in 0..CONCURRENCY_WINDOWS_PER_THREAD {
            let w = concurrency_window(&bounds, side, t, i);
            qm_hot.window_query(0, &w).unwrap();
            qm_cold.window_query(0, &w).unwrap();
        }
    }

    let mut group = c.benchmark_group("concurrent_reads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for threads in CONCURRENCY_THREADS {
        group.bench_with_input(
            BenchmarkId::new("cached", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(hammer(&qm_hot, &bounds, side, threads))),
        );
        group.bench_with_input(
            BenchmarkId::new("uncached", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(hammer(&qm_cold, &bounds, side, threads))),
        );
    }
    group.finish();

    let shards = qm_cold.pool_shard_stats();
    eprintln!(
        "pool shards: {} | per-shard pins: {:?}",
        shards.len(),
        shards.iter().map(|s| s.hits + s.misses).collect::<Vec<_>>()
    );
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_concurrent_reads);
criterion_main!(benches);
