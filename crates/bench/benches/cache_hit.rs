//! Online hot path: cost of a window query served cold (R-tree + heap +
//! JSON build) vs served from the sharded LRU window cache.
//!
//! The cached path should sit well under the cold path at every window
//! size — it is a shard lookup plus a result clone — which is what makes
//! repeated pan/zoom traffic from many users cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gvdb_bench::{prepare, random_windows, Dataset};
use gvdb_core::QueryManager;
use std::hint::black_box;

fn bench_cold_vs_cached(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_query_cold_vs_cached");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(20);
    let graph = Dataset::Patent.generate(10_000);
    let (db, _report, bounds, path) = prepare(&graph, "bench-cache");
    let qm = QueryManager::new(db);

    for side in [200.0f64, 1500.0, 3000.0] {
        // Cold: cycle through a window pool larger than the cache (512
        // entries), so every query pays the full DB + JSON path.
        let cold_pool = random_windows(&bounds, side, 2_048, 11);
        let mut next = 0usize;
        group.bench_with_input(
            BenchmarkId::new("cold", format!("{side}px")),
            &cold_pool,
            |b, pool| {
                b.iter(|| {
                    let mut rows = 0usize;
                    for _ in 0..50 {
                        let w = &pool[next % pool.len()];
                        next += 1;
                        rows += qm.window_query(0, w).unwrap().rows.len();
                    }
                    black_box(rows)
                })
            },
        );

        // Cached: warm 50 windows once, then replay them.
        let windows = random_windows(&bounds, side, 50, 7);
        for w in &windows {
            qm.window_query(0, w).unwrap();
        }
        group.bench_with_input(
            BenchmarkId::new("cached", format!("{side}px")),
            &windows,
            |b, windows| {
                b.iter(|| {
                    let mut rows = 0usize;
                    for w in windows {
                        let resp = qm.window_query(0, w).unwrap();
                        debug_assert!(resp.cache_hit);
                        rows += resp.rows.len();
                    }
                    black_box(rows)
                })
            },
        );
    }
    group.finish();
    let stats = qm.cache_stats();
    println!(
        "cache stats: {} hits / {} misses ({:.1}% hit rate), {} entries",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.entries
    );
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_cold_vs_cached);
criterion_main!(benches);
