//! The Fig. 3 microbenchmark: DB-side window query cost vs window size,
//! plus the paged-vs-in-memory R-tree ablation (cost of going through the
//! buffer pool).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gvdb_bench::{prepare, random_windows, Dataset};
use gvdb_core::QueryManager;
use gvdb_spatial::RTree;
use std::hint::black_box;

fn bench_window_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_query_db_exec");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(20);
    // Small-scale dataset so the bench harness itself stays fast.
    let graph = Dataset::Patent.generate(10_000);
    let (db, _report, bounds, path) = prepare(&graph, "bench-window");
    let qm = QueryManager::new(db);
    for side in [200.0f64, 1500.0, 3000.0] {
        let windows = random_windows(&bounds, side, 50, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{side}px")),
            &windows,
            |b, windows| {
                b.iter(|| {
                    let mut rows = 0usize;
                    for w in windows {
                        rows += qm.window_query(0, w).unwrap().rows.len();
                    }
                    black_box(rows)
                })
            },
        );
    }
    group.finish();
    std::fs::remove_file(&path).ok();
}

fn bench_paged_vs_inmemory(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_query_paged_vs_inmemory");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let graph = Dataset::Patent.generate(10_000);
    let (db, report, bounds, path) = prepare(&graph, "bench-paged");
    let windows = random_windows(&bounds, 1500.0, 50, 5);

    // In-memory R*-tree over the same layer-0 geometries.
    let layer0 = &report.hierarchy.layers[0];
    let entries: Vec<(gvdb_spatial::Rect, u64)> = layer0
        .graph
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let (x1, y1) = layer0.positions[e.source.index()];
            let (x2, y2) = layer0.positions[e.target.index()];
            (
                gvdb_spatial::Rect::from_points(
                    gvdb_spatial::Point::new(x1, y1),
                    gvdb_spatial::Point::new(x2, y2),
                ),
                i as u64,
            )
        })
        .collect();
    let mem_tree = RTree::bulk_load(entries);

    let table = db.layer(0).unwrap();
    group.bench_function("paged_rtree_through_buffer_pool", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for w in &windows {
                rows += table.window(db.pool(), w, false).unwrap().len();
            }
            black_box(rows)
        })
    });
    group.bench_function("inmemory_rstar", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for w in &windows {
                rows += mem_tree.window(w).count();
            }
            black_box(rows)
        })
    });
    group.finish();
    drop(db);
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_window_sizes, bench_paged_vs_inmemory);
criterion_main!(benches);
