//! Offline-pipeline parallelism: the same preprocessing run at
//! `parallelism = 1` vs one worker per CPU.
//!
//! The parallel stages are Step 2 (per-partition layout) and Step 5's row
//! building; Steps 1/3/4 and the index writes are sequential, so the
//! end-to-end speedup follows Amdahl from the Step 2 share reported by
//! `table1`. A byte-identical database is produced either way (asserted
//! by the `gvdb-core` determinism test; here we only measure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gvdb_bench::{bench_db_path, Dataset};
use gvdb_core::{preprocess, PreprocessConfig};
use std::hint::black_box;

fn bench_parallelism_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess_parallelism");
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    let graph = Dataset::Patent.generate(20_000);
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for threads in [1usize, 2, hw] {
        let path = bench_db_path(&format!("par-{threads}"));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}thr")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let cfg = PreprocessConfig {
                        partition_node_budget: 256,
                        parallelism: threads,
                        ..Default::default()
                    };
                    let (db, report) = preprocess(&graph, &path, &cfg).expect("preprocess");
                    drop(db);
                    std::fs::remove_file(&path).ok();
                    black_box(report.times.total())
                })
            },
        );
    }
    group.finish();
}

fn bench_layout_stage_only(c: &mut Criterion) {
    // Isolate the embarrassingly parallel stage: lay out the partitions
    // of a pre-partitioned graph through layout_many directly.
    use gvdb_layout::{layout_many, ForceDirected};
    use gvdb_partition::{partition, PartitionConfig};

    let mut group = c.benchmark_group("layout_stage");
    group.measurement_time(std::time::Duration::from_secs(6));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    let graph = Dataset::Patent.generate(20_000);
    let parts = partition(&graph, &PartitionConfig::with_k(16));
    let subgraphs: Vec<_> = parts
        .parts()
        .iter()
        .map(|nodes| graph.induced_subgraph(nodes).0)
        .collect();
    let algo = ForceDirected::default();
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for threads in [1usize, hw] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}thr")),
            &threads,
            |b, &threads| b.iter(|| black_box(layout_many(&algo, &subgraphs, threads)).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallelism_sweep, bench_layout_stage_only);
criterion_main!(benches);
