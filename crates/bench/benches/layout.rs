//! Layout algorithm costs: the pluggable Step 2 options, plus the grid
//! acceleration ablation for force-directed layout.

use criterion::{criterion_group, criterion_main, Criterion};
use gvdb_graph::generators::planted_partition;
use gvdb_layout::{Circular, ForceDirected, GridLayout, Hierarchical, LayoutAlgorithm, Star};
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_algorithms");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    // One partition-sized graph (the unit Step 2 processes).
    let g = planted_partition(1, 2_000, 6.0, 0.0, 3);
    group.bench_function("force_directed", |b| {
        b.iter(|| black_box(ForceDirected::default().layout(&g)))
    });
    group.bench_function("circular", |b| {
        b.iter(|| black_box(Circular::default().layout(&g)))
    });
    group.bench_function("star", |b| b.iter(|| black_box(Star::default().layout(&g))));
    group.bench_function("grid", |b| {
        b.iter(|| black_box(GridLayout::default().layout(&g)))
    });
    group.bench_function("hierarchical", |b| {
        b.iter(|| black_box(Hierarchical::default().layout(&g)))
    });
    group.finish();
}

fn bench_grid_acceleration(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_force_repulsion");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    let g = planted_partition(1, 3_000, 4.0, 0.0, 5);
    group.bench_function("grid_approx", |b| {
        b.iter(|| {
            black_box(
                ForceDirected {
                    iterations: 20,
                    exact_repulsion: false,
                    ..Default::default()
                }
                .layout(&g),
            )
        })
    });
    group.bench_function("exact_n2", |b| {
        b.iter(|| {
            black_box(
                ForceDirected {
                    iterations: 20,
                    exact_repulsion: true,
                    ..Default::default()
                }
                .layout(&g),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_grid_acceleration);
criterion_main!(benches);
