//! Ablation: buffer-pool capacity sweep — the analogue of the paper's
//! "cache size of MySQL on the server side was set to 6GB".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gvdb_bench::{bench_db_path, random_windows};
use gvdb_core::{preprocess, PreprocessConfig};
use gvdb_graph::generators::{patent_like, CitationConfig};
use gvdb_storage::GraphDb;
use std::hint::black_box;

fn bench_cache_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool_capacity");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));

    // Build once on disk, then reopen with different cache sizes.
    let graph = patent_like(CitationConfig {
        nodes: 20_000,
        ..Default::default()
    });
    let path = bench_db_path("buffer-sweep");
    let (db, report) = preprocess(&graph, &path, &PreprocessConfig::default()).unwrap();
    let bounds = gvdb_bench::plane_bounds(&report);
    drop(db);

    // 32 pages thrash (every query misses), 2048 pages hold the hot set.
    for cache_pages in [32usize, 256, 2048] {
        let db = GraphDb::open_with_cache(&path, cache_pages).unwrap();
        let windows = random_windows(&bounds, 1000.0, 10, 9);
        let table = db.layer(0).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{cache_pages}pages")),
            &windows,
            |b, windows| {
                b.iter(|| {
                    let mut rows = 0usize;
                    for w in windows {
                        rows += table.window(db.pool(), w, false).unwrap().len();
                    }
                    black_box(rows)
                })
            },
        );
        let stats = db.pool().stats();
        eprintln!(
            "cache {cache_pages} pages: {} hits / {} misses / {} evictions",
            stats.hits(),
            stats.misses(),
            stats.evictions()
        );
    }
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_cache_sweep);
criterion_main!(benches);
