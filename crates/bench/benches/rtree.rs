//! Ablation: STR bulk loading vs incremental R* insertion, and query cost
//! on the resulting trees (DESIGN.md ablation table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gvdb_spatial::{Point, RTree, Rect};
use rand::prelude::*;
use std::hint::black_box;

fn entries(n: usize, seed: u64) -> Vec<(Rect, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.random::<f64>() * 10_000.0;
            let y = rng.random::<f64>() * 10_000.0;
            (Rect::new(x, y, x + 20.0, y + 20.0), i as u64)
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_build");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        let data = entries(n, 1);
        group.bench_with_input(BenchmarkId::new("str_bulk", n), &data, |b, data| {
            b.iter(|| black_box(RTree::bulk_load(data.clone())))
        });
        group.bench_with_input(
            BenchmarkId::new("incremental_rstar", n),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut t = RTree::new();
                    for (r, v) in data {
                        t.insert(*r, *v);
                    }
                    black_box(t)
                })
            },
        );
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_query");
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let data = entries(50_000, 2);
    let bulk = RTree::bulk_load(data.clone());
    let mut inc = RTree::new();
    for (r, v) in &data {
        inc.insert(*r, *v);
    }
    let windows: Vec<Rect> = (0..100)
        .map(|i| {
            let x = (i * 97 % 9_000) as f64;
            let y = (i * 31 % 9_000) as f64;
            Rect::new(x, y, x + 500.0, y + 500.0)
        })
        .collect();
    group.bench_function("window_on_bulk_tree", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for w in &windows {
                hits += bulk.window(w).count();
            }
            black_box(hits)
        })
    });
    group.bench_function("window_on_incremental_tree", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for w in &windows {
                hits += inc.window(w).count();
            }
            black_box(hits)
        })
    });
    group.bench_function("linear_scan_baseline", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for w in &windows {
                hits += data.iter().filter(|(r, _)| r.intersects(w)).count();
            }
            black_box(hits)
        })
    });
    group.bench_function("knn_10", |b| {
        b.iter(|| black_box(bulk.nearest(Point::new(5_000.0, 5_000.0), 10)))
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
