//! The bounded byte queue between a producing worker and a draining
//! reactor.
//!
//! Streamed results used to be push-based: the worker thread executing
//! [`GraphService::call_streamed`](crate::GraphService::call_streamed)
//! wrote each frame straight into the client socket, so a slow reader
//! held the worker for the whole stream. With the event-driven server
//! core the emission is pull-based instead: the worker *pushes encoded
//! bytes* into a per-connection [`Outbox`] and returns, and the reactor
//! thread *drains* the queue into the socket whenever the socket is
//! writable.
//!
//! The queue is the backpressure boundary, and it never blocks:
//!
//! * **Bounded** — [`Outbox::push`] fails with [`PushError::Overflow`]
//!   while the *pending* (not yet drained) bytes are at the budget.
//!   Overflow is a state, not a verdict: the producer may wait for the
//!   consumer to drain ([`Outbox::wait_drain`]) and retry, and it is the
//!   producer's policy how long to keep trying before aborting the
//!   stream. Either way a slow client costs at most `budget + one
//!   frame` of memory.
//! * **Closable** — when the reactor tears a connection down mid-stream
//!   (client hung up, write error, shutdown) it [`Outbox::close`]s the
//!   queue; the producer's next push fails with [`PushError::Closed`]
//!   and the stream aborts without ever touching a dead socket.
//! * **Transport-agnostic** — the queue moves opaque bytes. HTTP chunk
//!   framing, response heads and the `Connection` header are the
//!   server's business; core only guarantees ordering and bounds.
//!
//! A response's lifecycle: any number of `push` calls, then exactly one
//! [`Outbox::finish`] carrying the keep-alive decision. The reactor
//! drains with [`Outbox::take`] and inspects [`Outbox::take_done`] /
//! [`Outbox::status`] to learn when the response is complete and whether
//! the connection survives it.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The consumer closed the queue: the connection is gone, stop
    /// producing. Terminal.
    Closed,
    /// Pending bytes are at the budget: the client has not drained.
    /// Retryable — wait with [`Outbox::wait_drain`] and push again, or
    /// give up and abort the stream.
    Overflow,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Closed => write!(f, "outbox closed by consumer"),
            PushError::Overflow => write!(f, "outbox full: slow consumer"),
        }
    }
}

/// A point-in-time view of the queue (see [`Outbox::status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutboxStatus {
    /// Bytes pushed but not yet taken.
    pub pending: usize,
    /// `Some(keep_alive)` once the producer called [`Outbox::finish`].
    pub done: Option<bool>,
}

struct Inner {
    buf: Vec<u8>,
    done: Option<bool>,
    closed: bool,
}

/// A bounded single-producer / single-consumer byte queue (see module
/// docs). Internally a mutex around a byte buffer — pushes and takes are
/// short critical sections; the consumer swaps the buffer out so socket
/// writes happen outside the lock.
pub struct Outbox {
    budget: usize,
    inner: Mutex<Inner>,
    /// Signalled whenever the consumer drains bytes or closes the queue,
    /// so a producer in [`Outbox::wait_drain`] wakes promptly.
    drained: Condvar,
}

impl Outbox {
    /// A queue refusing pushes once `budget` bytes are pending. A single
    /// push larger than the budget is accepted when the queue is empty
    /// (a buffered response is one push, whatever its size), so peak
    /// memory is `budget + largest single push`.
    pub fn new(budget: usize) -> Outbox {
        Outbox {
            budget: budget.max(1),
            inner: Mutex::new(Inner {
                buf: Vec::new(),
                done: None,
                closed: false,
            }),
            drained: Condvar::new(),
        }
    }

    /// Append `bytes` to the queue. Returns whether the queue was empty
    /// before the push — `true` means the consumer may be asleep and
    /// should be woken. Fails without appending anything; an
    /// [`PushError::Overflow`] failure may be retried after a
    /// [`Outbox::wait_drain`].
    pub fn push(&self, bytes: &[u8]) -> Result<bool, PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if !inner.buf.is_empty() && inner.buf.len() >= self.budget {
            return Err(PushError::Overflow);
        }
        let was_empty = inner.buf.is_empty();
        inner.buf.extend_from_slice(bytes);
        Ok(was_empty)
    }

    /// Producer side: block until the consumer drains some bytes or
    /// closes the queue (then retry the push), or `timeout` passes
    /// (then decide whether to keep waiting). Returns `true` only when
    /// room or a close is actually observed — a spurious condvar wakeup
    /// reads as a quiet timeout, so callers metering stall windows on
    /// this result (see the server's `push_patient`) are not fooled
    /// into counting phantom progress.
    pub fn wait_drain(&self, timeout: Duration) -> bool {
        let inner = self.inner.lock().unwrap();
        if inner.closed || inner.buf.len() < self.budget {
            return true;
        }
        let (inner, _result) = self.drained.wait_timeout(inner, timeout).unwrap();
        inner.closed || inner.buf.len() < self.budget
    }

    /// Producer side: the response is complete; after the pending bytes
    /// drain, the connection should stay open iff `keep_alive`. Idempotent
    /// (the first call wins) and ignored after [`Outbox::close`].
    pub fn finish(&self, keep_alive: bool) {
        let mut inner = self.inner.lock().unwrap();
        if inner.done.is_none() {
            inner.done = Some(keep_alive);
        }
    }

    /// Consumer side: the connection is gone; refuse every further push
    /// and drop whatever is pending.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        inner.buf = Vec::new();
        drop(inner);
        self.drained.notify_all();
    }

    /// Whether the consumer closed the queue.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Take every pending byte (empty when there is nothing). The buffer
    /// is swapped out under the lock, so the caller writes to the socket
    /// without holding it.
    pub fn take(&self) -> Vec<u8> {
        let mut inner = self.inner.lock().unwrap();
        let bytes = std::mem::take(&mut inner.buf);
        drop(inner);
        if !bytes.is_empty() {
            self.drained.notify_all();
        }
        bytes
    }

    /// Consumer side: report (and clear) the finished flag — but only
    /// once every pending byte has been taken, atomically with that
    /// check, so a response is never declared complete with bytes still
    /// queued. Clearing re-arms the queue for the connection's next
    /// response.
    pub fn take_done(&self) -> Option<bool> {
        let mut inner = self.inner.lock().unwrap();
        if !inner.buf.is_empty() {
            return None;
        }
        inner.done.take()
    }

    /// Pending/done, in one consistent snapshot.
    pub fn status(&self) -> OutboxStatus {
        let inner = self.inner.lock().unwrap();
        OutboxStatus {
            pending: inner.buf.len(),
            done: inner.done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_take_preserves_order_and_reports_wakeups() {
        let q = Outbox::new(1024);
        assert_eq!(q.push(b"hel"), Ok(true), "first push finds it empty");
        assert_eq!(q.push(b"lo"), Ok(false), "second push does not");
        assert_eq!(q.take(), b"hello");
        assert_eq!(q.push(b"!"), Ok(true), "drained queue is empty again");
        assert_eq!(q.take(), b"!");
        assert!(q.take().is_empty());
    }

    #[test]
    fn overflow_while_pending_is_at_budget_and_clears_on_drain() {
        let q = Outbox::new(4);
        assert!(
            q.push(b"abcdefgh").is_ok(),
            "empty queue takes any single push"
        );
        assert_eq!(q.push(b"x"), Err(PushError::Overflow));
        // Not sticky: draining makes room again.
        q.take();
        assert_eq!(q.push(b"x"), Ok(true));
    }

    #[test]
    fn below_budget_pushes_accumulate() {
        let q = Outbox::new(8);
        assert!(q.push(b"abc").is_ok());
        assert!(q.push(b"def").is_ok(), "pending 3 < budget 8");
        assert!(q.push(b"ghi").is_ok(), "pending 6 < budget 8");
        assert_eq!(q.push(b"j"), Err(PushError::Overflow), "pending 9 >= 8");
    }

    #[test]
    fn wait_drain_returns_immediately_when_there_is_room() {
        let q = Outbox::new(1024);
        q.push(b"small").unwrap();
        assert!(
            q.wait_drain(Duration::from_secs(5)),
            "room available: no wait"
        );
    }

    #[test]
    fn wait_drain_wakes_on_take_and_on_close() {
        for close_instead in [false, true] {
            let q = std::sync::Arc::new(Outbox::new(4));
            q.push(b"12345678").unwrap();
            let waiter = {
                let q = std::sync::Arc::clone(&q);
                std::thread::spawn(move || q.wait_drain(Duration::from_secs(10)))
            };
            std::thread::sleep(Duration::from_millis(50));
            if close_instead {
                q.close();
            } else {
                q.take();
            }
            assert!(waiter.join().unwrap(), "waiter woken by consumer");
        }
    }

    #[test]
    fn wait_drain_times_out_quietly() {
        let q = Outbox::new(4);
        q.push(b"12345678").unwrap();
        assert!(!q.wait_drain(Duration::from_millis(20)));
    }

    #[test]
    fn close_refuses_pushes_and_drops_pending() {
        let q = Outbox::new(1024);
        q.push(b"doomed").unwrap();
        q.close();
        assert_eq!(q.push(b"more"), Err(PushError::Closed));
        assert!(q.take().is_empty(), "pending bytes dropped on close");
        assert!(q.is_closed());
    }

    #[test]
    fn finish_is_sticky_and_carries_keep_alive() {
        let q = Outbox::new(1024);
        assert_eq!(q.status().done, None);
        q.finish(true);
        q.finish(false); // first call wins
        assert_eq!(q.status().done, Some(true));
    }

    #[test]
    fn take_done_waits_for_the_drain_and_rearms() {
        let q = Outbox::new(1024);
        q.push(b"tail bytes").unwrap();
        q.finish(true);
        assert_eq!(q.take_done(), None, "bytes still pending");
        q.take();
        assert_eq!(q.take_done(), Some(true));
        assert_eq!(q.take_done(), None, "consumed: armed for the next response");
        q.push(b"next").unwrap();
        q.finish(false);
        q.take();
        assert_eq!(q.take_done(), Some(false));
    }

    #[test]
    fn producer_and_consumer_race_cleanly() {
        let q = std::sync::Arc::new(Outbox::new(16));
        let producer = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..1000u32 {
                    loop {
                        match q.push(&i.to_le_bytes()) {
                            Ok(_) => break,
                            Err(PushError::Overflow) => {
                                q.wait_drain(Duration::from_millis(100));
                            }
                            Err(PushError::Closed) => panic!("consumer closed"),
                        }
                    }
                }
                q.finish(true);
            })
        };
        let mut drained = Vec::new();
        loop {
            drained.extend_from_slice(&q.take());
            let status = q.status();
            if status.done.is_some() && status.pending == 0 {
                drained.extend_from_slice(&q.take());
                break;
            }
            std::thread::yield_now();
        }
        producer.join().unwrap();
        assert_eq!(drained.len(), 4000);
        let nums: Vec<u32> = drained
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert!(nums.windows(2).all(|w| w[0] + 1 == w[1]), "bytes in order");
    }
}
