//! # gvdb-core
//!
//! The graphVizdb platform core: everything between the graph file and the
//! browser canvas.
//!
//! * [`preprocess()`] — the offline pipeline of Fig. 1 (partition → layout →
//!   organize → abstract → store & index) with per-step timing.
//! * [`organizer`] — Step 3's greedy partition placement.
//! * [`query`] — the Query Manager: window queries, keyword search,
//!   focus-on-node, measured stage by stage as in Fig. 3.
//! * [`session`] — per-user exploration state (pan/zoom/layers/filters/
//!   edits).
//! * [`service`] — the typed entry point: [`GraphService`] executes
//!   `gvdb_api::ApiRequest`s against a [`QueryManager`] (one dataset)
//!   or a [`SharedWorkspace`] (many, each isolated).
//! * [`registry`] — per-dataset session registries (LRU min-heap +
//!   idle-TTL eviction) behind stateless protocols.
//! * [`json`] / [`client`] — client payload building and the simulated
//!   communication + rendering pipeline.
//! * [`stats`] / [`birdview`] — the Statistics and Birdview panels.
//!
//! ## End-to-end example
//!
//! ```
//! use gvdb_core::{preprocess, PreprocessConfig, QueryManager, Session};
//! use gvdb_graph::generators::{wikidata_like, RdfConfig};
//! use gvdb_spatial::Rect;
//!
//! let graph = wikidata_like(RdfConfig { entities: 200, ..Default::default() });
//! let mut path = std::env::temp_dir();
//! path.push(format!("gvdb-doc-{}.db", std::process::id()));
//! let (db, report) = preprocess(&graph, &path, &PreprocessConfig::default()).unwrap();
//! assert!(report.layer_sizes.len() >= 2);
//!
//! let qm = QueryManager::new(db);
//! let mut session = Session::new(Rect::new(0.0, 0.0, 1000.0, 1000.0));
//! let view = session.view(&qm).unwrap();
//! assert!(view.total_ms() >= 0.0);
//! # std::fs::remove_file(&path).ok();
//! ```

pub mod birdview;
pub mod cache;
pub mod client;
pub mod filter;
pub mod json;
pub mod organizer;
pub mod outbox;
pub mod preprocess;
pub mod query;
pub mod registry;
pub mod repl;
pub mod service;
pub mod session;
pub mod stats;
pub mod workspace;

pub use birdview::Birdview;
pub use cache::{CacheConfig, CacheStats, WindowCache};
pub use client::{ClientCost, ClientModel};
pub use filter::{aggregate_rows, AccessPath, CompiledFilter, FilterMode};
pub use json::{build_graph_json, GraphFrame, GraphJson, GraphJsonBuilder};
pub use organizer::{organize_partitions, OrganizedLayout, OrganizerConfig};
pub use outbox::{Outbox, OutboxStatus, PushError};
pub use preprocess::{
    layer_rows, preprocess, LayoutChoice, PreprocessConfig, PreprocessReport, StageThreads,
    StepTimes,
};
pub use query::{QueryManager, SearchHit, WindowResponse};
pub use registry::{SessionHandle, SessionId, SessionRegistry, SessionStats};
pub use repl::ReplProvider;
pub use service::{
    stream_single, ApiOutcome, FrameBuffer, FrameSink, GraphService, WindowOutcome, DEFAULT_DATASET,
};
pub use session::{Filters, Session};
pub use workspace::{SharedWorkspace, Workspace};
