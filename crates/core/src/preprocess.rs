//! The offline preprocessing pipeline (Fig. 1): partition → layout →
//! organize → abstract → store & index, with per-step wall-clock timing —
//! the instrumentation behind Table I.
//!
//! ## Parallelism
//!
//! The pipeline's two embarrassingly parallel stages fan out across
//! `std::thread::scope` workers, controlled by
//! [`PreprocessConfig::parallelism`] (`0` = one worker per CPU, `1` =
//! fully sequential):
//!
//! * **Step 2** — partitions are laid out independently by construction
//!   (crossing edges are ignored), so subgraph induction + layout run
//!   per-partition through [`gvdb_layout::parallel_map`];
//! * **Step 5** — each abstraction layer's storage rows are built
//!   concurrently; the rows are then written and indexed layer by layer
//!   (the database itself is single-writer).
//!
//! Both stages collect results **by index**, so a parallel run produces a
//! byte-identical database to a sequential run on the same input — the
//! platform's reproducibility guarantee does not depend on thread count.
//! [`PreprocessReport::threads`] records how many workers each stage used
//! so speedups are measurable (see `stats::format_preprocess_report`).

use crate::organizer::{organize_partitions, OrganizerConfig};
use gvdb_abstract::{build_hierarchy, degree_centrality, pagerank, Hierarchy, HierarchyConfig};
use gvdb_graph::Graph;
use gvdb_layout::{
    parallel_map, planned_workers, Circular, ForceDirected, GridLayout, Hierarchical, Layout,
    LayoutAlgorithm, Star,
};
use gvdb_partition::{partition, suggest_k, PartitionConfig};
use gvdb_storage::{EdgeGeometry, EdgeRow, GraphDb, RankSidecar, Result};
use std::path::Path;
use std::time::{Duration, Instant};

/// Which layout algorithm Step 2 applies to each partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutChoice {
    /// Fruchterman–Reingold force-directed (default).
    ForceDirected,
    /// Circular.
    Circular,
    /// Star.
    Star,
    /// Grid.
    Grid,
    /// Hierarchical (layered).
    Hierarchical,
}

impl LayoutChoice {
    fn algorithm(&self) -> Box<dyn LayoutAlgorithm + Send + Sync> {
        match self {
            LayoutChoice::ForceDirected => Box::new(ForceDirected::default()),
            LayoutChoice::Circular => Box::new(Circular::default()),
            LayoutChoice::Star => Box::new(Star::default()),
            LayoutChoice::Grid => Box::new(GridLayout::default()),
            LayoutChoice::Hierarchical => Box::new(Hierarchical::default()),
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PreprocessConfig {
    /// Partition count; `None` derives k from `partition_node_budget` the
    /// way the paper prescribes (proportional to size over memory).
    pub k: Option<u32>,
    /// Nodes one partition may hold when `k` is `None`.
    pub partition_node_budget: usize,
    /// Layout algorithm for Step 2.
    pub layout: LayoutChoice,
    /// Organizer tiling for Step 3.
    pub organizer: OrganizerConfig,
    /// Abstraction stack for Step 4.
    pub hierarchy: HierarchyConfig,
    /// Buffer-pool capacity (pages) for Step 5's database.
    pub cache_pages: usize,
    /// Emit a degenerate self-row for isolated nodes so they remain
    /// visible and searchable (the bare triple scheme would drop them).
    pub index_isolated_nodes: bool,
    /// Partitioner seed.
    pub seed: u64,
    /// Worker threads for the parallel stages (per-partition layout, Step
    /// 2, and per-layer row building, Step 5). `0` uses one worker per
    /// available CPU; `1` runs fully sequentially. The database produced
    /// is byte-identical regardless of this setting.
    pub parallelism: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            k: None,
            partition_node_budget: 4_096,
            layout: LayoutChoice::ForceDirected,
            organizer: OrganizerConfig::default(),
            hierarchy: HierarchyConfig::default(),
            cache_pages: 4_096,
            index_isolated_nodes: true,
            seed: 42,
            parallelism: 0,
        }
    }
}

/// Wall-clock of each preprocessing step (Table I columns).
#[derive(Debug, Clone, Default)]
pub struct StepTimes {
    /// Step 1: k-way partitioning.
    pub partitioning: Duration,
    /// Step 2: per-partition layout.
    pub layout: Duration,
    /// Step 3: partition organizing.
    pub organize: Duration,
    /// Step 4: abstraction layers.
    pub abstraction: Duration,
    /// Step 5: storage & indexing (all layers).
    pub indexing: Duration,
}

impl StepTimes {
    /// Total across steps.
    pub fn total(&self) -> Duration {
        self.partitioning + self.layout + self.organize + self.abstraction + self.indexing
    }
}

/// Worker-thread counts actually used by the parallel stages, for
/// measuring speedup against a `parallelism: 1` run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageThreads {
    /// Workers used for Step 2 (per-partition layout).
    pub layout: usize,
    /// Workers used for Step 5's row building (per abstraction layer).
    pub row_building: usize,
}

/// Everything the pipeline produced.
#[derive(Debug)]
pub struct PreprocessReport {
    /// Per-step timings.
    pub times: StepTimes,
    /// Worker threads used per parallel stage.
    pub threads: StageThreads,
    /// Partition count used.
    pub k: u32,
    /// Crossing edges after Step 1.
    pub edge_cut: usize,
    /// `(nodes, edges)` per layer, layer 0 first.
    pub layer_sizes: Vec<(usize, usize)>,
    /// The in-memory hierarchy (kept for stats/birdview; the database holds
    /// the persistent form).
    pub hierarchy: Hierarchy,
}

/// Run the full pipeline on `graph`, producing a database at `db_path`.
pub fn preprocess(
    graph: &Graph,
    db_path: &Path,
    cfg: &PreprocessConfig,
) -> Result<(GraphDb, PreprocessReport)> {
    // Step 1: k-way partitioning.
    let t = Instant::now();
    let k = cfg
        .k
        .unwrap_or_else(|| suggest_k(graph.node_count(), cfg.partition_node_budget));
    let mut pcfg = PartitionConfig::with_k(k);
    pcfg.seed = cfg.seed;
    let parts = partition(graph, &pcfg);
    let step1 = t.elapsed();
    let edge_cut = parts.edge_cut(graph);

    // Step 2: layout each partition independently, ignoring crossing
    // edges. The subproblems are independent by construction, so they fan
    // out across worker threads; results come back in partition order, so
    // the outcome matches a sequential run exactly. Subgraph induction
    // happens inside each worker, so at most one induced subgraph per
    // worker is alive at a time — partitions exist precisely to bound
    // this memory, at any thread count.
    let t = Instant::now();
    let algo = cfg.layout.algorithm();
    let layout_threads = planned_workers(cfg.parallelism, parts.parts().len());
    let part_layouts: Vec<Layout> =
        parallel_map(parts.parts().as_slice(), cfg.parallelism, |nodes| {
            let (sub, _) = graph.induced_subgraph(nodes);
            algo.layout(&sub)
        });
    let step2 = t.elapsed();

    // Step 3: organize partitions on the global plane.
    let t = Instant::now();
    let organized = organize_partitions(graph, &parts, &part_layouts, &cfg.organizer);
    let step3 = t.elapsed();

    // Step 4: abstraction layers with inherited layouts.
    let t = Instant::now();
    let positions: Vec<(f64, f64)> = organized
        .layout
        .positions()
        .iter()
        .map(|p| (p.x, p.y))
        .collect();
    let hierarchy = build_hierarchy(graph, &positions, &cfg.hierarchy);
    let step4 = t.elapsed();

    // Step 5: store & index every layer. Row building (geometry + label
    // materialization) is independent per layer and fans out across
    // workers; the write+index pass stays sequential in layer order — the
    // storage engine is single-writer — which keeps the database file
    // byte-identical to a sequential run. The sequential path streams
    // (one layer's rows alive at a time); the parallel path materializes
    // all layers' rows to overlap their construction.
    let t = Instant::now();
    let row_threads = planned_workers(cfg.parallelism, hierarchy.layers.len());
    let mut db = GraphDb::create_with_cache(db_path, cfg.cache_pages)?;
    let mut layer_sizes = Vec::with_capacity(hierarchy.layers.len());
    if row_threads <= 1 {
        for (i, layer) in hierarchy.layers.iter().enumerate() {
            let rows = layer_rows(&layer.graph, &layer.positions, cfg.index_isolated_nodes);
            let sidecar = layer_sidecar(&layer.graph);
            db.create_layer(format!("layer{i}"), rows)?;
            db.layer_mut(i)
                .expect("layer just created")
                .set_sidecar(sidecar);
            layer_sizes.push((layer.graph.node_count(), layer.graph.edge_count()));
        }
    } else {
        let per_layer = parallel_map(&hierarchy.layers, cfg.parallelism, |layer| {
            (
                layer_rows(&layer.graph, &layer.positions, cfg.index_isolated_nodes),
                layer_sidecar(&layer.graph),
            )
        });
        for (i, (layer, (rows, sidecar))) in hierarchy.layers.iter().zip(per_layer).enumerate() {
            db.create_layer(format!("layer{i}"), rows)?;
            db.layer_mut(i)
                .expect("layer just created")
                .set_sidecar(sidecar);
            layer_sizes.push((layer.graph.node_count(), layer.graph.edge_count()));
        }
    }
    db.flush()?;
    let step5 = t.elapsed();

    Ok((
        db,
        PreprocessReport {
            times: StepTimes {
                partitioning: step1,
                layout: step2,
                organize: step3,
                abstraction: step4,
                indexing: step5,
            },
            threads: StageThreads {
                layout: layout_threads,
                row_building: row_threads,
            },
            k,
            edge_cut,
            layer_sizes,
            hierarchy,
        },
    ))
}

/// Build one layer's degree/rank sidecar: degree centrality plus PageRank
/// (0.85 damping, 30 iterations) for every node, keyed by the same node id
/// the storage rows carry. Both centrality passes are deterministic, so
/// the sidecar — and with it the database file — stays byte-identical
/// across thread counts.
pub fn layer_sidecar(graph: &Graph) -> RankSidecar {
    let degrees = degree_centrality(graph);
    let ranks = pagerank(graph, 0.85, 30);
    RankSidecar::new(
        graph
            .node_ids()
            .map(|v| (v.0 as u64, degrees[v.index()], ranks[v.index()]))
            .collect(),
    )
}

/// Convert a laid-out graph into storage rows (one per edge, plus optional
/// degenerate rows for isolated nodes).
pub fn layer_rows(graph: &Graph, positions: &[(f64, f64)], index_isolated: bool) -> Vec<EdgeRow> {
    let directed = graph.is_directed();
    let mut rows: Vec<EdgeRow> = graph
        .edges()
        .iter()
        .map(|e| {
            let (x1, y1) = positions[e.source.index()];
            let (x2, y2) = positions[e.target.index()];
            EdgeRow {
                node1_id: e.source.0 as u64,
                node1_label: graph.node_label(e.source).into(),
                geometry: EdgeGeometry {
                    x1,
                    y1,
                    x2,
                    y2,
                    directed,
                },
                edge_label: e.label.as_str().into(),
                node2_id: e.target.0 as u64,
                node2_label: graph.node_label(e.target).into(),
            }
        })
        .collect();
    if index_isolated {
        for v in graph.node_ids() {
            if graph.degree(v) == 0 {
                let (x, y) = positions[v.index()];
                rows.push(EdgeRow {
                    node1_id: v.0 as u64,
                    node1_label: graph.node_label(v).into(),
                    geometry: EdgeGeometry {
                        x1: x,
                        y1: y,
                        x2: x,
                        y2: y,
                        directed: false,
                    },
                    edge_label: "".into(),
                    node2_id: v.0 as u64,
                    node2_label: graph.node_label(v).into(),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_graph::generators::planted_partition;
    use gvdb_graph::GraphBuilder;
    use gvdb_spatial::Rect;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gvdb-prep-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn end_to_end_pipeline() {
        let g = planted_partition(4, 50, 6.0, 0.5, 1);
        let path = tmp("e2e");
        let cfg = PreprocessConfig {
            k: Some(4),
            ..Default::default()
        };
        let (db, report) = preprocess(&g, &path, &cfg).unwrap();
        assert_eq!(report.k, 4);
        assert_eq!(report.layer_sizes[0].0, 200);
        assert!(report.layer_sizes.len() >= 2, "hierarchy built");
        assert!(report.layer_sizes.windows(2).all(|w| w[1].0 < w[0].0));
        // The database serves window queries over the full plane.
        let layer0 = db.layer(0).unwrap();
        let all = layer0
            .window(db.pool(), &Rect::new(-1e9, -1e9, 1e9, 1e9), false)
            .unwrap();
        assert_eq!(all.len() as u64, layer0.row_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn auto_k_follows_budget() {
        let g = planted_partition(4, 50, 4.0, 0.5, 2);
        let path = tmp("autok");
        let cfg = PreprocessConfig {
            k: None,
            partition_node_budget: 50,
            ..Default::default()
        };
        let (_db, report) = preprocess(&g, &path, &cfg).unwrap();
        assert_eq!(report.k, 4); // 200 nodes / 50
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn isolated_nodes_indexed_when_enabled() {
        let mut b = GraphBuilder::new_undirected();
        let a = b.add_node("connected-a");
        let c = b.add_node("connected-b");
        b.add_edge(a, c, "e");
        b.add_node("lonely island");
        let g = b.build();
        let path = tmp("isolated");
        let cfg = PreprocessConfig {
            k: Some(1),
            ..Default::default()
        };
        let (db, _) = preprocess(&g, &path, &cfg).unwrap();
        let hits = db.layer(0).unwrap().search_nodes("lonely");
        assert_eq!(hits.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn step_times_are_nonzero_and_total_adds_up() {
        let g = planted_partition(2, 40, 5.0, 0.5, 3);
        let path = tmp("times");
        let (_db, report) = preprocess(&g, &path, &PreprocessConfig::default()).unwrap();
        let t = &report.times;
        assert_eq!(
            t.total(),
            t.partitioning + t.layout + t.organize + t.abstraction + t.indexing
        );
        assert!(t.indexing > Duration::ZERO);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        let g = planted_partition(6, 40, 6.0, 0.5, 9);
        let path_seq = tmp("det-seq");
        let path_par = tmp("det-par");
        let base = PreprocessConfig {
            k: Some(6),
            ..Default::default()
        };
        let cfg_seq = PreprocessConfig {
            parallelism: 1,
            ..base.clone()
        };
        let cfg_par = PreprocessConfig {
            parallelism: 4,
            ..base
        };
        let (db_seq, rep_seq) = preprocess(&g, &path_seq, &cfg_seq).unwrap();
        let (db_par, rep_par) = preprocess(&g, &path_par, &cfg_par).unwrap();
        assert_eq!(rep_seq.threads.layout, 1);
        assert!(rep_par.threads.layout > 1, "parallel run must fan out");
        assert_eq!(rep_seq.layer_sizes, rep_par.layer_sizes);
        drop(db_seq);
        drop(db_par);
        let bytes_seq = std::fs::read(&path_seq).unwrap();
        let bytes_par = std::fs::read(&path_par).unwrap();
        assert_eq!(
            bytes_seq, bytes_par,
            "database layout must not depend on thread count"
        );
        std::fs::remove_file(&path_seq).ok();
        std::fs::remove_file(&path_par).ok();
    }

    #[test]
    fn report_records_thread_counts() {
        let g = planted_partition(4, 30, 5.0, 0.5, 11);
        let path = tmp("threads");
        let cfg = PreprocessConfig {
            k: Some(4),
            parallelism: 2,
            ..Default::default()
        };
        let (_db, report) = preprocess(&g, &path, &cfg).unwrap();
        assert_eq!(report.threads.layout, 2);
        assert!(report.threads.row_building >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn layer_rows_isolated_toggle() {
        let mut b = GraphBuilder::new_undirected();
        b.add_node("solo");
        let g = b.build();
        let rows = layer_rows(&g, &[(1.0, 2.0)], true);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].node1_id, rows[0].node2_id);
        assert!(layer_rows(&g, &[(1.0, 2.0)], false).is_empty());
    }
}
