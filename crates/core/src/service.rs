//! The typed service layer: every consumer — HTTP routes, CLI
//! subcommands, examples, benches — reaches the engine through one
//! entry point, [`GraphService::call`], instead of poking
//! [`QueryManager`] methods directly.
//!
//! ```text
//!                 ApiRequest (gvdb-api, versioned wire DTOs)
//!                      │
//!              GraphService::call
//!               ┌──────┴────────┐
//!        QueryManager      SharedWorkspace
//!        (one dataset,     (name → Arc<QueryManager>,
//!         "default")        per-dataset sessions/epochs)
//!               └──────┬────────┘
//!                  ApiOutcome ── into_response() ──► ApiResponse
//! ```
//!
//! [`ApiOutcome`] is the *server-side* result: it still holds the
//! `Arc`-shared rows and payload of a [`WindowResponse`], so the HTTP
//! layer can splice the cached payload into its envelope without a copy.
//! [`ApiOutcome::into_response`] flattens it into the pure wire DTO for
//! callers that want the serialized form (the RPC endpoint, the CLI).
//!
//! Both implementations answer session operations from their own
//! [`SessionRegistry`](crate::registry::SessionRegistry) — the
//! single-dataset service through the manager's
//! registry, the workspace through each dataset's — so mutation and
//! session state never leak across datasets.

use crate::filter::FilterMode;
use crate::json::build_graph_json;
use crate::query::{QueryManager, SearchHit, StreamPlan, WindowResponse};
use crate::registry::SessionId;
use crate::workspace::SharedWorkspace;
use gvdb_api::{
    AggregateDto, ApiError, ApiFrame, ApiRequest, ApiResponse, ApiResult, ChooserStatsDto,
    DatasetInfo, DatasetStats, EdgeDto, FrameHeader, LayerInfo, LayerStatsDto, PackedEdge,
    PackedNode, PackedRows, Predicate, ProgressFrame, RectDto, RowBatch, SearchHitDto,
    SessionStatsDto, Source, StatsDto, TrailerFrame, WindowMeta,
};
use gvdb_spatial::Rect;
use gvdb_storage::{EdgeGeometry, EdgeRow, RowId, StorageError};

/// The dataset name a bare [`QueryManager`] serves under (what the
/// single-database `gvdb serve <db>` form binds).
pub const DEFAULT_DATASET: &str = "default";

/// A window query's server-side result: the raw [`WindowResponse`] (with
/// its `Arc`-shared rows/payload) plus the service-level addressing that
/// produced it.
#[derive(Debug)]
pub struct WindowOutcome {
    /// The dataset that answered.
    pub dataset: String,
    /// The layer queried (after session-default resolution).
    pub layer: usize,
    /// The engine response; `response.json` is shared with the cache.
    pub response: WindowResponse,
    /// The session that anchored the query, if any.
    pub session: Option<SessionId>,
}

impl WindowOutcome {
    /// How the response was produced, as the wire enum.
    pub fn source(&self) -> Source {
        if self.response.cache_hit {
            Source::Hit
        } else if self.response.delta {
            Source::Delta
        } else {
            Source::Cold
        }
    }

    /// The response metadata as the wire DTO.
    pub fn meta(&self) -> WindowMeta {
        WindowMeta {
            dataset: self.dataset.clone(),
            layer: self.layer,
            epoch: self.response.epoch,
            source: self.source(),
            rows_reused: self.response.rows_reused,
            rows_fetched: self.response.rows_fetched,
            session: self.session,
        }
    }
}

/// The typed result of one [`GraphService::call`] — the server-side twin
/// of [`ApiResponse`], still holding `Arc`-shared payloads.
#[derive(Debug)]
pub enum ApiOutcome {
    /// Answer to [`ApiRequest::ListDatasets`].
    Datasets(Vec<DatasetInfo>),
    /// Answer to [`ApiRequest::ListLayers`].
    Layers {
        /// The resolved dataset.
        dataset: String,
        /// One entry per layer.
        layers: Vec<LayerInfo>,
    },
    /// Answer to [`ApiRequest::Window`].
    Window(WindowOutcome),
    /// Answer to [`ApiRequest::Search`].
    Hits {
        /// The dataset that answered.
        dataset: String,
        /// The layer searched.
        layer: usize,
        /// The layer's edit epoch at search time.
        epoch: u64,
        /// The matching nodes.
        hits: Vec<SearchHit>,
    },
    /// Answer to [`ApiRequest::Focus`].
    Focus {
        /// The dataset that answered.
        dataset: String,
        /// The layer read.
        layer: usize,
        /// The layer's edit epoch at read time.
        epoch: u64,
        /// The neighbourhood payload.
        json: crate::json::GraphJson,
        /// Incident row count.
        rows: usize,
    },
    /// Answer to a mutation: the layer's new epoch (and the inserted
    /// row's id).
    Mutated {
        /// The mutated dataset.
        dataset: String,
        /// The mutated layer.
        layer: usize,
        /// The layer's epoch after the edit.
        epoch: u64,
        /// The inserted row id (insertions only).
        rid: Option<u64>,
    },
    /// Answer to [`ApiRequest::SessionNew`].
    Session {
        /// The new session's id.
        id: SessionId,
    },
    /// Answer to [`ApiRequest::SessionClose`].
    Closed,
    /// Answer to [`ApiRequest::Flush`]: the dataset was checkpointed to
    /// disk.
    Flushed {
        /// The flushed dataset.
        dataset: String,
        /// Dirty pages written back.
        pages: u64,
    },
    /// Answer to [`ApiRequest::Stats`] (per-dataset; the serving layer
    /// adds its own counters on top).
    Stats(Vec<DatasetStats>),
    /// Answer to [`ApiRequest::Aggregate`]: one reduced summary of the
    /// (optionally filtered) window.
    Aggregate {
        /// The dataset that answered.
        dataset: String,
        /// The layer aggregated.
        layer: usize,
        /// The layer's edit epoch the rows were read at.
        epoch: u64,
        /// The aggregation result.
        result: AggregateDto,
    },
    /// A response produced outside the engine — a replication endpoint's
    /// answer or a router's forwarded reply — already in wire form.
    Raw(ApiResponse),
}

impl ApiOutcome {
    /// Flatten into the pure wire DTO. Graph payloads are copied into the
    /// response string here — the HTTP window path avoids this method and
    /// splices the shared payload directly.
    pub fn into_response(self) -> ApiResponse {
        match self {
            ApiOutcome::Datasets(datasets) => ApiResponse::Datasets { datasets },
            ApiOutcome::Layers { dataset, layers } => ApiResponse::Layers { dataset, layers },
            ApiOutcome::Window(outcome) => {
                let meta = outcome.meta();
                ApiResponse::Window {
                    meta,
                    graph: outcome.response.json.text.clone(),
                }
            }
            ApiOutcome::Hits { hits, .. } => ApiResponse::Hits {
                hits: hits.iter().map(hit_dto).collect(),
            },
            ApiOutcome::Focus { json, rows, .. } => ApiResponse::Focus {
                rows: rows as u64,
                graph: json.text,
            },
            ApiOutcome::Mutated {
                dataset,
                layer,
                epoch,
                rid,
            } => ApiResponse::Mutated {
                dataset,
                layer,
                epoch,
                rid,
            },
            ApiOutcome::Session { id } => ApiResponse::Session { id },
            ApiOutcome::Closed => ApiResponse::Closed,
            ApiOutcome::Flushed { dataset, pages } => ApiResponse::Flushed { dataset, pages },
            ApiOutcome::Aggregate {
                dataset,
                layer,
                epoch,
                result,
            } => ApiResponse::Aggregate {
                dataset,
                layer,
                epoch,
                result,
            },
            ApiOutcome::Stats(datasets) => ApiResponse::Stats(StatsDto {
                served: 0,
                rejected: 0,
                workers: 0,
                backlog: 0,
                active_workers: 0,
                open_connections: 0,
                cpus: 0,
                shards_policy: String::new(),
                datasets,
                replication: None,
            }),
            ApiOutcome::Raw(response) => response,
        }
    }
}

/// Receives the frames of one streamed result, in order (see
/// [`GraphService::call_streamed`]). The HTTP layer implements this over
/// chunked transfer-encoding; [`FrameBuffer`] collects in memory for
/// tests and embedded consumers.
pub trait FrameSink {
    /// Deliver one frame. An `Err` aborts the stream — the canonical
    /// cause is a disconnected client — and implementations of
    /// [`GraphService::call_streamed`] propagate it immediately instead
    /// of producing further frames.
    fn emit(&mut self, frame: &ApiFrame) -> ApiResult<()>;
}

/// A [`FrameSink`] that collects every frame in memory.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    /// The frames emitted so far, in order.
    pub frames: Vec<ApiFrame>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FrameSink for FrameBuffer {
    fn emit(&mut self, frame: &ApiFrame) -> ApiResult<()> {
        self.frames.push(frame.clone());
        Ok(())
    }
}

/// The typed service every consumer programs against: one method per
/// protocol ([`GraphService::call`]), implemented by [`QueryManager`]
/// (single dataset, named [`DEFAULT_DATASET`]) and [`SharedWorkspace`]
/// (multi-dataset).
pub trait GraphService: Send + Sync {
    /// Execute one typed request.
    fn call(&self, request: &ApiRequest) -> ApiResult<ApiOutcome>;

    /// The dataset names this service can resolve.
    fn dataset_names(&self) -> Vec<String>;

    /// Execute one **streamable** request (`window`, `search`, `focus`),
    /// delivering the result as a typed frame sequence
    /// (`Header · Rows* · Trailer`, see `gvdb_api::frame`) instead of one
    /// buffered response.
    ///
    /// The default implementation wraps [`GraphService::call`] in a
    /// single `Header + Rows + Trailer` sequence — correct for any
    /// service, incremental for none. [`QueryManager`] and
    /// [`SharedWorkspace`] override it with the real incremental path:
    /// row batches stream as the engine produces them, delta pans emit
    /// reused rows before arrivals, and the trailer re-samples the layer
    /// epoch so a racing edit is visible to the client.
    ///
    /// Errors before the first frame surface as `Err` (the caller still
    /// owns its transport and can send a plain error response); once the
    /// header is out, sink failures propagate as `Err` and the caller
    /// must abandon the transport. Non-streamable operations are a
    /// [`gvdb_api::ErrorKind::BadRequest`].
    fn call_streamed(&self, request: &ApiRequest, sink: &mut dyn FrameSink) -> ApiResult<()> {
        let outcome = self.call(request)?;
        stream_single(request, outcome, sink)
    }
}

impl GraphService for QueryManager {
    fn call(&self, request: &ApiRequest) -> ApiResult<ApiOutcome> {
        match request {
            ApiRequest::ListDatasets => Ok(ApiOutcome::Datasets(vec![DatasetInfo {
                name: DEFAULT_DATASET.into(),
                layers: self.layer_count(),
            }])),
            ApiRequest::Stats => Ok(ApiOutcome::Stats(vec![dataset_stats(
                DEFAULT_DATASET,
                self,
            )])),
            other => {
                self.check_default_dataset(other)?;
                call_dataset(DEFAULT_DATASET, self, other)
            }
        }
    }

    fn dataset_names(&self) -> Vec<String> {
        vec![DEFAULT_DATASET.into()]
    }

    fn call_streamed(&self, request: &ApiRequest, sink: &mut dyn FrameSink) -> ApiResult<()> {
        match request {
            ApiRequest::Window { .. }
            | ApiRequest::Search { .. }
            | ApiRequest::Aggregate { .. } => {
                self.check_default_dataset(request)?;
                stream_dataset(DEFAULT_DATASET, self, request, sink)
            }
            other => stream_single(other, self.call(other)?, sink),
        }
    }
}

impl QueryManager {
    /// Reject dataset selectors other than [`DEFAULT_DATASET`] (the only
    /// name a bare manager serves under).
    fn check_default_dataset(&self, request: &ApiRequest) -> ApiResult<()> {
        if let Some(name) = request.dataset() {
            if name != DEFAULT_DATASET {
                return Err(ApiError::not_found(format!(
                    "dataset '{name}' not found (available: {DEFAULT_DATASET})"
                )));
            }
        }
        Ok(())
    }
}

impl GraphService for SharedWorkspace {
    fn call(&self, request: &ApiRequest) -> ApiResult<ApiOutcome> {
        match request {
            ApiRequest::ListDatasets => Ok(ApiOutcome::Datasets(
                self.entries()
                    .into_iter()
                    .map(|(name, qm)| DatasetInfo {
                        name,
                        layers: qm.layer_count(),
                    })
                    .collect(),
            )),
            ApiRequest::Stats => Ok(ApiOutcome::Stats(
                self.entries()
                    .into_iter()
                    .map(|(name, qm)| dataset_stats(&name, &qm))
                    .collect(),
            )),
            other => {
                let (name, qm) = self.resolve(other.dataset())?;
                call_dataset(&name, &qm, other)
            }
        }
    }

    fn dataset_names(&self) -> Vec<String> {
        self.names()
    }

    fn call_streamed(&self, request: &ApiRequest, sink: &mut dyn FrameSink) -> ApiResult<()> {
        match request {
            ApiRequest::Window { .. }
            | ApiRequest::Search { .. }
            | ApiRequest::Aggregate { .. } => {
                let (name, qm) = self.resolve(request.dataset())?;
                stream_dataset(&name, &qm, request, sink)
            }
            other => stream_single(other, self.call(other)?, sink),
        }
    }
}

/// Execute a dataset-addressed request against one resolved manager. The
/// shared core of both [`GraphService`] implementations.
fn call_dataset(name: &str, qm: &QueryManager, request: &ApiRequest) -> ApiResult<ApiOutcome> {
    match request {
        ApiRequest::ListDatasets | ApiRequest::Stats => {
            unreachable!("service-level requests are handled by the impls")
        }
        ApiRequest::ListLayers { .. } => Ok(ApiOutcome::Layers {
            dataset: name.to_string(),
            layers: layer_infos(qm),
        }),
        ApiRequest::Window {
            layer,
            window,
            session,
            predicate,
            rid_range,
            ..
        } => match rid_range {
            Some((lo, hi)) => {
                check_range_combines(*session, predicate.as_ref())?;
                window_range_op(name, qm, *layer, window, *lo, *hi)
            }
            None => window_op(name, qm, *layer, window, *session, predicate.as_ref()),
        },
        ApiRequest::Search {
            layer,
            query,
            predicate,
            ..
        } => Ok(ApiOutcome::Hits {
            dataset: name.to_string(),
            layer: *layer,
            epoch: qm.layer_epoch(*layer),
            hits: search_op(qm, *layer, query, predicate.as_ref())?,
        }),
        ApiRequest::Aggregate {
            layer,
            window,
            predicate,
            agg,
            ..
        } => {
            let layer = layer.unwrap_or(0);
            let (result, epoch) = qm
                .aggregate_window(
                    layer,
                    &to_rect(window)?,
                    predicate.as_ref(),
                    agg,
                    FilterMode::Auto,
                )
                .map_err(storage_error)?;
            Ok(ApiOutcome::Aggregate {
                dataset: name.to_string(),
                layer,
                epoch,
                result,
            })
        }
        ApiRequest::Focus { layer, node, .. } => {
            let rows = qm.focus_on_node(*layer, *node).map_err(storage_error)?;
            Ok(ApiOutcome::Focus {
                dataset: name.to_string(),
                layer: *layer,
                epoch: qm.layer_epoch(*layer),
                json: build_graph_json(&rows),
                rows: rows.len(),
            })
        }
        ApiRequest::Flush { .. } => Ok(ApiOutcome::Flushed {
            dataset: name.to_string(),
            pages: qm.flush().map_err(storage_error)? as u64,
        }),
        ApiRequest::InsertEdge { layer, edge, .. } => {
            let rid = qm
                .insert_row(*layer, &edge_row(edge))
                .map_err(storage_error)?;
            Ok(ApiOutcome::Mutated {
                dataset: name.to_string(),
                layer: *layer,
                epoch: qm.layer_epoch(*layer),
                rid: Some(rid.to_u64()),
            })
        }
        ApiRequest::DeleteEdge { layer, rid, .. } => {
            qm.delete_row(*layer, RowId::from_u64(*rid))
                .map_err(storage_error)?;
            Ok(ApiOutcome::Mutated {
                dataset: name.to_string(),
                layer: *layer,
                epoch: qm.layer_epoch(*layer),
                rid: None,
            })
        }
        ApiRequest::SessionNew { window, .. } => {
            let window = match window {
                Some(w) => to_rect(w)?,
                None => Rect::new(0.0, 0.0, 1000.0, 1000.0),
            };
            Ok(ApiOutcome::Session {
                id: qm.sessions().create(window),
            })
        }
        ApiRequest::SessionClose { session, .. } => {
            if qm.sessions().remove(*session) {
                Ok(ApiOutcome::Closed)
            } else {
                Err(unknown_session(*session))
            }
        }
    }
}

fn window_op(
    name: &str,
    qm: &QueryManager,
    layer: Option<usize>,
    window: &RectDto,
    session: Option<SessionId>,
    predicate: Option<&Predicate>,
) -> ApiResult<ApiOutcome> {
    let rect = to_rect(window)?;
    match session {
        Some(sid) => {
            let handle = qm.sessions().get(sid).ok_or_else(|| unknown_session(sid))?;
            // Per-session lock: one client's requests are ordered,
            // different clients run concurrently.
            let mut session = handle.lock();
            // A request that omits `layer` stays on the session's current
            // layer (keeping its delta anchor) instead of snapping to 0.
            let layer = layer.unwrap_or_else(|| session.layer());
            session.set_layer(qm, layer).map_err(storage_error)?;
            session.navigate(rect);
            let response = match predicate {
                // A predicate window bypasses the session's display
                // filters (the request states its own filter) but still
                // anchors the delta path on the session's last window.
                Some(p) => {
                    let anchor = session.anchor();
                    drop(session);
                    qm.window_query_filtered(layer, &rect, anchor.as_ref(), p, FilterMode::Auto)
                        .map_err(storage_error)?
                }
                None => session.view(qm).map_err(storage_error)?,
            };
            Ok(ApiOutcome::Window(WindowOutcome {
                dataset: name.to_string(),
                layer,
                response,
                session: Some(sid),
            }))
        }
        None => {
            let layer = layer.unwrap_or(0);
            let response = match predicate {
                Some(p) => qm
                    .window_query_filtered(layer, &rect, None, p, FilterMode::Auto)
                    .map_err(storage_error)?,
                None => qm.window_query(layer, &rect).map_err(storage_error)?,
            };
            Ok(ApiOutcome::Window(WindowOutcome {
                dataset: name.to_string(),
                layer,
                response,
                session: None,
            }))
        }
    }
}

/// A rid-range restriction composes with neither sessions (delta
/// anchors assume whole-window results) nor predicates (the router owns
/// no filter state) — shards answer plain range-restricted windows and
/// the router does the rest. Reject the combinations loudly instead of
/// silently dropping a clause.
fn check_range_combines(
    session: Option<SessionId>,
    predicate: Option<&Predicate>,
) -> ApiResult<()> {
    if session.is_some() {
        return Err(ApiError::bad_request(
            "rid_lo/rid_hi do not combine with a session",
        ));
    }
    if predicate.is_some() {
        return Err(ApiError::bad_request(
            "rid_lo/rid_hi do not combine with a predicate",
        ));
    }
    Ok(())
}

/// The buffered rid-range window: the shard-side half of a routed
/// window query. Bypasses the window cache (range slices would poison
/// whole-window entries) and builds a canonical payload over exactly
/// the rows whose id falls in `[lo, hi]`.
fn window_range_op(
    name: &str,
    qm: &QueryManager,
    layer: Option<usize>,
    window: &RectDto,
    lo: u64,
    hi: u64,
) -> ApiResult<ApiOutcome> {
    let rect = to_rect(window)?;
    let layer = layer.unwrap_or(0);
    let t0 = std::time::Instant::now();
    let (epoch, rows) = qm
        .window_rows_range(layer, &rect, lo, hi)
        .map_err(storage_error)?;
    let db_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = std::time::Instant::now();
    let json = build_graph_json(&rows);
    let rows_fetched = rows.len();
    let client = qm.client_model().deliver(&json);
    Ok(ApiOutcome::Window(WindowOutcome {
        dataset: name.to_string(),
        layer,
        response: WindowResponse {
            rows: std::sync::Arc::new(rows),
            json: std::sync::Arc::new(json),
            db_ms,
            build_json_ms: t1.elapsed().as_secs_f64() * 1e3,
            cache_ms: 0.0,
            epoch,
            cache_hit: false,
            delta: false,
            rows_reused: 0,
            rows_fetched,
            arrival_rids: Vec::new(),
            client,
        },
        session: None,
    }))
}

/// The search operation with predicate validation: edge-label operators
/// have no meaning against a node hit and are rejected, everything else
/// filters the hit list per node.
fn search_op(
    qm: &QueryManager,
    layer: usize,
    query: &str,
    predicate: Option<&Predicate>,
) -> ApiResult<Vec<SearchHit>> {
    if let Some(p) = predicate {
        if p.references_edge_labels() {
            return Err(ApiError::bad_request(
                "edge_label predicates do not apply to node search",
            ));
        }
    }
    qm.keyword_search_filtered(layer, query, predicate)
        .map_err(storage_error)
}

// ---------------------------------------------------------------------------
// The streaming result path
// ---------------------------------------------------------------------------

/// A [`SearchHit`] as the wire DTO.
fn hit_dto(h: &SearchHit) -> SearchHitDto {
    SearchHitDto {
        node: h.node_id,
        label: h.label.to_string(),
        x: h.position.x,
        y: h.position.y,
    }
}

/// The trait-default streaming shape: one `Header + Rows + Trailer`
/// sequence around an already-computed [`ApiOutcome`]. Correct for any
/// [`GraphService`]; the engine-backed implementations override
/// [`GraphService::call_streamed`] with the chunked incremental path
/// instead.
pub fn stream_single(
    request: &ApiRequest,
    outcome: ApiOutcome,
    sink: &mut dyn FrameSink,
) -> ApiResult<()> {
    match outcome {
        ApiOutcome::Window(outcome) => {
            let meta = outcome.meta();
            sink.emit(&ApiFrame::Header(window_header(&meta)))?;
            let rows = outcome.response.rows.len() as u64;
            let mut frames = 0u64;
            if rows > 0 {
                sink.emit(&ApiFrame::Rows(RowBatch::Graph {
                    graph: outcome.response.json.text.clone(),
                    nodes: outcome.response.json.node_count as u64,
                    edges: outcome.response.json.edge_count as u64,
                    reused: meta.source == Source::Hit,
                }))?;
                frames = 1;
            }
            sink.emit(&ApiFrame::Trailer(TrailerFrame {
                epoch: meta.epoch,
                source: Some(meta.source),
                rows,
                rows_reused: meta.rows_reused as u64,
                rows_fetched: meta.rows_fetched as u64,
                frames,
            }))
        }
        ApiOutcome::Hits {
            dataset,
            layer,
            epoch,
            hits,
        } => {
            sink.emit(&ApiFrame::Header(FrameHeader {
                op: "search".into(),
                dataset,
                layer,
                epoch,
                source: None,
                session: None,
            }))?;
            let mut frames = 0u64;
            if !hits.is_empty() {
                sink.emit(&ApiFrame::Rows(RowBatch::Hits {
                    hits: hits.iter().map(hit_dto).collect(),
                }))?;
                frames = 1;
            }
            sink.emit(&ApiFrame::Trailer(TrailerFrame {
                epoch,
                source: None,
                rows: hits.len() as u64,
                rows_reused: 0,
                rows_fetched: hits.len() as u64,
                frames,
            }))
        }
        ApiOutcome::Focus {
            dataset,
            layer,
            epoch,
            json,
            rows,
        } => {
            sink.emit(&ApiFrame::Header(FrameHeader {
                op: "focus".into(),
                dataset,
                layer,
                epoch,
                source: None,
                session: None,
            }))?;
            let mut frames = 0u64;
            if rows > 0 {
                sink.emit(&ApiFrame::Rows(RowBatch::Graph {
                    graph: json.text,
                    nodes: json.node_count as u64,
                    edges: json.edge_count as u64,
                    reused: false,
                }))?;
                frames = 1;
            }
            sink.emit(&ApiFrame::Trailer(TrailerFrame {
                epoch,
                source: None,
                rows: rows as u64,
                rows_reused: 0,
                rows_fetched: rows as u64,
                frames,
            }))
        }
        ApiOutcome::Aggregate {
            dataset,
            layer,
            epoch,
            result,
        } => {
            sink.emit(&ApiFrame::Header(FrameHeader {
                op: "aggregate".into(),
                dataset,
                layer,
                epoch,
                source: None,
                session: None,
            }))?;
            let rows = result.rows;
            sink.emit(&ApiFrame::Summary(result))?;
            sink.emit(&ApiFrame::Trailer(TrailerFrame {
                epoch,
                source: None,
                rows,
                rows_reused: 0,
                rows_fetched: rows,
                frames: 1,
            }))
        }
        _ => Err(ApiError::bad_request(format!(
            "op '{}' is not streamable; use the buffered call",
            request.op()
        ))),
    }
}

/// The [`FrameHeader`] of a window stream.
fn window_header(meta: &WindowMeta) -> FrameHeader {
    FrameHeader {
        op: "window".into(),
        dataset: meta.dataset.clone(),
        layer: meta.layer,
        epoch: meta.epoch,
        source: Some(meta.source),
        session: meta.session,
    }
}

/// The incremental streaming path of one resolved dataset: `window`,
/// `search` and `aggregate` requests only (every other op goes through
/// [`stream_single`]). Row batches are sized by the manager's
/// [`crate::ClientModel::chunk_rows`].
fn stream_dataset(
    name: &str,
    qm: &QueryManager,
    request: &ApiRequest,
    sink: &mut dyn FrameSink,
) -> ApiResult<()> {
    let chunk = qm.client_model().chunk_rows.max(1);
    match request {
        ApiRequest::Window {
            layer,
            window,
            session,
            packed,
            predicate,
            rid_range,
            ..
        } => {
            let packed = *packed;
            let predicate = predicate.as_ref();
            let rect = to_rect(window)?;
            if let Some((lo, hi)) = rid_range {
                check_range_combines(*session, predicate)?;
                return stream_window_range(
                    name,
                    qm,
                    layer.unwrap_or(0),
                    rect,
                    (*lo, *hi),
                    chunk,
                    packed,
                    sink,
                );
            }
            match session {
                Some(sid) => {
                    let handle = qm
                        .sessions()
                        .get(*sid)
                        .ok_or_else(|| unknown_session(*sid))?;
                    // The per-session lock covers only navigation: the
                    // stream itself runs with the session released, so a
                    // slow reader never pins its session entry.
                    let mut session = handle.lock();
                    let layer = layer.unwrap_or_else(|| session.layer());
                    session.set_layer(qm, layer).map_err(storage_error)?;
                    session.navigate(rect);
                    if predicate.is_none() && session.has_filters() {
                        // Filtered views rebuild a bespoke payload (the
                        // cache entry is unfiltered): compute it whole,
                        // then slice frames out of it. A request-level
                        // predicate instead takes the plan path below,
                        // which pushes it into the fetch.
                        let response = session.view(qm).map_err(storage_error)?;
                        drop(session);
                        let outcome = WindowOutcome {
                            dataset: name.to_string(),
                            layer,
                            response,
                            session: Some(*sid),
                        };
                        return stream_window_outcome(qm, outcome, chunk, packed, sink);
                    }
                    let anchor = session.anchor();
                    drop(session);
                    stream_window(
                        name,
                        qm,
                        layer,
                        rect,
                        anchor,
                        Some(*sid),
                        predicate,
                        chunk,
                        packed,
                        sink,
                    )
                }
                None => stream_window(
                    name,
                    qm,
                    layer.unwrap_or(0),
                    rect,
                    None,
                    None,
                    predicate,
                    chunk,
                    packed,
                    sink,
                ),
            }
        }
        ApiRequest::Aggregate {
            layer,
            window,
            predicate,
            agg,
            ..
        } => {
            let layer = layer.unwrap_or(0);
            // Compute before the header so errors surface as a plain
            // error response, not a truncated stream.
            let (result, epoch) = qm
                .aggregate_window(
                    layer,
                    &to_rect(window)?,
                    predicate.as_ref(),
                    agg,
                    FilterMode::Auto,
                )
                .map_err(storage_error)?;
            sink.emit(&ApiFrame::Header(FrameHeader {
                op: "aggregate".into(),
                dataset: name.to_string(),
                layer,
                epoch,
                source: None,
                session: None,
            }))?;
            sink.emit(&ApiFrame::Progress(ProgressFrame {
                rows_sent: result.rows,
                rows_total: result.rows,
            }))?;
            let rows = result.rows;
            sink.emit(&ApiFrame::Summary(result))?;
            sink.emit(&ApiFrame::Trailer(TrailerFrame {
                // Re-sampled: newer than the header epoch iff an edit
                // raced the aggregation.
                epoch: qm.layer_epoch(layer),
                source: None,
                rows,
                rows_reused: 0,
                rows_fetched: rows,
                frames: 1,
            }))
        }
        ApiRequest::Search {
            layer,
            query,
            predicate,
            ..
        } => {
            // Errors (missing layer, edge-label predicate) surface
            // before any frame is out.
            let hits = search_op(qm, *layer, query, predicate.as_ref())?;
            let epoch = qm.layer_epoch(*layer);
            sink.emit(&ApiFrame::Header(FrameHeader {
                op: "search".into(),
                dataset: name.to_string(),
                layer: *layer,
                epoch,
                source: None,
                session: None,
            }))?;
            let total = hits.len() as u64;
            let many = hits.len() > chunk;
            let mut frames = 0u64;
            let mut sent = 0u64;
            for batch in hits.chunks(chunk) {
                sink.emit(&ApiFrame::Rows(RowBatch::Hits {
                    hits: batch.iter().map(hit_dto).collect(),
                }))?;
                frames += 1;
                sent += batch.len() as u64;
                if many {
                    sink.emit(&ApiFrame::Progress(ProgressFrame {
                        rows_sent: sent,
                        rows_total: total,
                    }))?;
                }
            }
            sink.emit(&ApiFrame::Trailer(TrailerFrame {
                epoch: qm.layer_epoch(*layer),
                source: None,
                rows: total,
                rows_reused: 0,
                rows_fetched: total,
                frames,
            }))
        }
        other => {
            unreachable!(
                "stream_dataset only handles window/search/aggregate, got '{}'",
                other.op()
            )
        }
    }
}

/// Stream one window the v2 way: plan first, then either **slice** an
/// already-built payload ([`StreamPlan::Built`] — exact hit or delta
/// splice) or drive the **incremental cold path**
/// ([`StreamPlan::Cold`]), where each chunk is heap-fetched under a
/// short re-validated read guard and its frame is handed to the sink
/// before the next chunk's pages pin. Either way no frame is ever
/// re-serialized and no lock is held across `sink.emit`.
#[allow(clippy::too_many_arguments)]
fn stream_window(
    name: &str,
    qm: &QueryManager,
    layer: usize,
    window: Rect,
    anchor: Option<Rect>,
    session: Option<SessionId>,
    predicate: Option<&Predicate>,
    chunk: usize,
    packed: bool,
    sink: &mut dyn FrameSink,
) -> ApiResult<()> {
    let plan = match predicate {
        Some(p) => {
            qm.window_stream_plan_filtered(layer, &window, anchor.as_ref(), p, FilterMode::Auto)
        }
        None => qm.window_stream_plan(layer, &window, anchor.as_ref()),
    };
    match plan.map_err(storage_error)? {
        StreamPlan::Built(response) => {
            let outcome = WindowOutcome {
                dataset: name.to_string(),
                layer,
                response,
                session,
            };
            stream_window_outcome(qm, outcome, chunk, packed, sink)
        }
        StreamPlan::Cold(cold) => stream_cold(name, qm, layer, session, cold, chunk, packed, sink),
    }
}

/// Stream a rid-range restricted window: the shard-side half of a
/// routed window stream. Always the cold incremental path (range
/// slices never touch the window cache), and always canonical row
/// order — ascending [`RowId`] — which is what lets a router merge
/// shard streams by plain concatenation.
#[allow(clippy::too_many_arguments)]
fn stream_window_range(
    name: &str,
    qm: &QueryManager,
    layer: usize,
    window: Rect,
    range: (u64, u64),
    chunk: usize,
    packed: bool,
    sink: &mut dyn FrameSink,
) -> ApiResult<()> {
    let plan = qm
        .window_stream_plan_range(layer, &window, range.0, range.1)
        .map_err(storage_error)?;
    match plan {
        StreamPlan::Built(response) => {
            let outcome = WindowOutcome {
                dataset: name.to_string(),
                layer,
                response,
                session: None,
            };
            stream_window_outcome(qm, outcome, chunk, packed, sink)
        }
        StreamPlan::Cold(cold) => stream_cold(name, qm, layer, None, cold, chunk, packed, sink),
    }
}

/// Drive one [`StreamPlan::Cold`] to completion: chunked heap fetches
/// under short re-validated read guards, each frame emitted before the
/// next chunk's pages pin.
#[allow(clippy::too_many_arguments)]
fn stream_cold(
    name: &str,
    qm: &QueryManager,
    layer: usize,
    session: Option<SessionId>,
    mut cold: Box<crate::query::ColdWindowStream<'_>>,
    chunk: usize,
    packed: bool,
    sink: &mut dyn FrameSink,
) -> ApiResult<()> {
    sink.emit(&ApiFrame::Header(FrameHeader {
        op: "window".into(),
        dataset: name.to_string(),
        layer,
        epoch: cold.epoch(),
        source: Some(Source::Cold),
        session,
    }))?;
    {
        // The exact row count isn't known until the last chunk is
        // refined; progress totals use the candidate count (an upper
        // bound that only shrinks by refinement).
        let total = cold.candidate_rows() as u64;
        let many = cold.candidate_rows() > chunk;
        let mut frames = 0u64;
        let mut sent = 0u64;
        // Cold payloads are canonical by construction (incremental
        // builder), so the negotiated packed encoding applies to
        // every frame.
        let mut enc = PackedEncoder::new();
        let mut pack_ok = packed;
        while let Some(frame) = cold.next_chunk(chunk).map_err(storage_error)? {
            let compact = if pack_ok {
                let (start, end) = frame.edge_range;
                let rows = enc.frame(&cold.rows_so_far()[start..end]);
                if rows.nodes.len() == frame.nodes {
                    Some(rows)
                } else {
                    debug_assert!(false, "packed derivation diverged from the payload");
                    pack_ok = false;
                    None
                }
            } else {
                None
            };
            match compact {
                Some(rows) => sink.emit(&ApiFrame::Rows(RowBatch::Packed {
                    rows,
                    reused: false,
                }))?,
                None => sink.emit(&ApiFrame::Rows(RowBatch::Graph {
                    graph: frame.graph,
                    nodes: frame.nodes as u64,
                    edges: frame.edges as u64,
                    reused: false,
                }))?,
            }
            frames += 1;
            sent += frame.edges as u64;
            if many {
                sink.emit(&ApiFrame::Progress(ProgressFrame {
                    rows_sent: sent,
                    rows_total: total,
                }))?;
            }
        }
        let summary = cold.finish();
        sink.emit(&ApiFrame::Trailer(TrailerFrame {
            // Re-sampled: newer than the header epoch iff an edit
            // raced the stream.
            epoch: qm.layer_epoch(layer),
            source: Some(Source::Cold),
            rows: summary.rows as u64,
            rows_reused: 0,
            rows_fetched: summary.rows_fetched as u64,
            frames,
        }))
    }
}

/// Stream-level packed-frame encoder. Given each frame's row slice (in
/// emission order), it re-derives the frame's content — nodes
/// deduplicated across the whole stream, first occurrence wins — which
/// for a canonical payload is exactly the node emission order of
/// [`build_graph_json`] / the incremental builder. The caller verifies
/// the derived node count against the sliced frame's and falls back to
/// plain frames on any divergence, so a packed stream can never ship
/// different content than its plain twin.
struct PackedEncoder {
    seen: std::collections::HashSet<u64>,
}

impl PackedEncoder {
    fn new() -> Self {
        PackedEncoder {
            seen: std::collections::HashSet::new(),
        }
    }

    fn frame(&mut self, rows: &[(RowId, EdgeRow)]) -> PackedRows {
        let mut out = PackedRows::default();
        for (rid, row) in rows {
            for (id, label, x, y) in [
                (
                    row.node1_id,
                    &row.node1_label,
                    row.geometry.x1,
                    row.geometry.y1,
                ),
                (
                    row.node2_id,
                    &row.node2_label,
                    row.geometry.x2,
                    row.geometry.y2,
                ),
            ] {
                if self.seen.insert(id) {
                    out.nodes.push(PackedNode {
                        id,
                        label: label.to_string(),
                        xbits: x.to_bits(),
                        ybits: y.to_bits(),
                    });
                }
            }
            out.edges.push(PackedEdge {
                rid: rid.to_u64(),
                source: row.node1_id,
                target: row.node2_id,
                label: row.edge_label.to_string(),
                directed: row.geometry.directed,
            });
        }
        out
    }
}

/// Stream one computed [`WindowOutcome`] by **slicing its payload**:
/// every `Rows` frame is a contiguous span-index run of
/// `response.json` (two `memcpy`s — see [`GraphJson::frame_slices`]),
/// so nothing is re-serialized. Frames follow payload order (ascending
/// edge id); on a delta response each frame's `reused` flag reports
/// whether its edge range is pure kept region (no arrival in it), so a
/// panning client still repaints kept frames without waiting. The
/// trailer **re-samples the layer epoch** — the query's read guard was
/// released when the plan returned, so an edit racing the emission is
/// surfaced as a trailer epoch newer than the header's.
fn stream_window_outcome(
    qm: &QueryManager,
    outcome: WindowOutcome,
    chunk: usize,
    packed: bool,
    sink: &mut dyn FrameSink,
) -> ApiResult<()> {
    let meta = outcome.meta();
    sink.emit(&ApiFrame::Header(window_header(&meta)))?;

    let resp = &outcome.response;
    let total = resp.rows.len() as u64;
    let many = resp.rows.len() > chunk;
    let mut frames = 0u64;
    let mut sent = 0u64;
    // Packed frames only for canonical payloads: a spliced delta keeps
    // surviving nodes in their original positions, an order the
    // row-driven encoder cannot reproduce — those streams fall back to
    // plain frames wholesale (the negotiation is "may pack", not "must").
    let mut enc = PackedEncoder::new();
    let mut pack_ok = packed && resp.json.canonical;
    // Ascending arrival ids against ascending frame ranges: one
    // monotone pointer classifies every frame.
    let mut ai = 0usize;
    for frame in resp.json.frame_slices(&resp.rows, chunk) {
        let (start, end) = frame.edge_range;
        let reused = if resp.cache_hit {
            true
        } else if resp.delta {
            let lo = resp.rows[start].0;
            let hi = resp.rows[end - 1].0;
            while ai < resp.arrival_rids.len() && resp.arrival_rids[ai] < lo {
                ai += 1;
            }
            !(ai < resp.arrival_rids.len() && resp.arrival_rids[ai] <= hi)
        } else {
            false
        };
        let compact = if pack_ok {
            let rows = enc.frame(&resp.rows[start..end]);
            if rows.nodes.len() == frame.nodes {
                Some(rows)
            } else {
                debug_assert!(false, "packed derivation diverged from the payload");
                pack_ok = false;
                None
            }
        } else {
            None
        };
        match compact {
            Some(rows) => sink.emit(&ApiFrame::Rows(RowBatch::Packed { rows, reused }))?,
            None => sink.emit(&ApiFrame::Rows(RowBatch::Graph {
                graph: frame.graph,
                nodes: frame.nodes as u64,
                edges: frame.edges as u64,
                reused,
            }))?,
        }
        frames += 1;
        sent += frame.edges as u64;
        if many {
            sink.emit(&ApiFrame::Progress(ProgressFrame {
                rows_sent: sent,
                rows_total: total,
            }))?;
        }
    }
    sink.emit(&ApiFrame::Trailer(TrailerFrame {
        // Re-sampled: newer than the header epoch iff an edit raced the
        // stream.
        epoch: qm.layer_epoch(meta.layer),
        source: Some(meta.source),
        rows: total,
        rows_reused: meta.rows_reused as u64,
        rows_fetched: meta.rows_fetched as u64,
        frames,
    }))
}

/// Per-layer inventory of one manager. `rid_max` is computed under the
/// same read guard as the row count (a whole-plane R-tree descent), so a
/// shard-map builder sees a consistent inventory.
fn layer_infos(qm: &QueryManager) -> Vec<LayerInfo> {
    let db = qm.db();
    let everything = Rect::new(f64::MIN, f64::MIN, f64::MAX, f64::MAX);
    (0..db.layer_count())
        .map(|i| LayerInfo {
            index: i,
            rows: db.layer(i).map(|l| l.row_count()).unwrap_or(0),
            epoch: qm.layer_epoch(i),
            rid_max: db
                .layer(i)
                .and_then(|l| l.window_rids(db.pool(), &everything).ok())
                .and_then(|rids| rids.iter().map(|r| r.to_u64()).max())
                .unwrap_or(0),
        })
        .collect()
}

/// Full serving statistics of one dataset, as the wire DTO.
pub fn dataset_stats(name: &str, qm: &QueryManager) -> DatasetStats {
    let cache = qm.cache_stats();
    let pool = qm.pool_stats();
    let sessions = qm.sessions().stats();
    DatasetStats {
        name: name.to_string(),
        epochs: (0..qm.layer_count()).map(|l| qm.layer_epoch(l)).collect(),
        cache: gvdb_api::CacheStatsDto {
            hits: cache.hits,
            partial_hits: cache.partial_hits,
            misses: cache.misses,
            entries: cache.entries as u64,
            bytes: cache.bytes as u64,
            shards: qm
                .cache_shard_stats()
                .iter()
                .map(|s| (s.entries as u64, s.bytes as u64))
                .collect(),
        },
        pool: gvdb_api::PoolStatsDto {
            hits: pool.hits,
            misses: pool.misses,
            evictions: pool.evictions,
            logical_bytes: pool.logical_bytes,
            physical_bytes: pool.physical_bytes,
            shards: qm
                .pool_shard_stats()
                .iter()
                .map(|s| {
                    (
                        s.hits,
                        s.misses,
                        s.evictions,
                        s.logical_bytes,
                        s.physical_bytes,
                    )
                })
                .collect(),
        },
        sessions: SessionStatsDto {
            live: sessions.live as u64,
            created: sessions.created,
            evictions: sessions.evictions,
            expired: sessions.expired,
        },
        layers: {
            let db = qm.db();
            (0..db.layer_count())
                .map(|i| LayerStatsDto {
                    index: i as u64,
                    rows: db.layer(i).map(|l| l.row_count()).unwrap_or(0),
                    sidecar_nodes: db
                        .layer(i)
                        .and_then(|l| l.sidecar())
                        .map(|s| s.len() as u64)
                        .unwrap_or(0),
                })
                .collect()
        },
        chooser: {
            let (index, scan) = qm.chooser_counts();
            ChooserStatsDto { index, scan }
        },
    }
}

/// Map a storage failure onto the typed protocol error.
pub fn storage_error(e: StorageError) -> ApiError {
    match e {
        StorageError::LayerNotFound(_) | StorageError::RowNotFound => {
            ApiError::not_found(e.to_string())
        }
        StorageError::LayerExists(_) => ApiError::conflict(e.to_string()),
        StorageError::RecordTooLarge(_) => {
            ApiError::new(gvdb_api::ErrorKind::TooLarge, e.to_string())
        }
        other => ApiError::internal(other.to_string()),
    }
}

/// The mutation DTO as an engine row.
pub fn edge_row(edge: &EdgeDto) -> EdgeRow {
    EdgeRow {
        node1_id: edge.node1_id,
        node1_label: edge.node1_label.as_str().into(),
        geometry: EdgeGeometry {
            x1: edge.x1,
            y1: edge.y1,
            x2: edge.x2,
            y2: edge.y2,
            directed: edge.directed,
        },
        edge_label: edge.edge_label.as_str().into(),
        node2_id: edge.node2_id,
        node2_label: edge.node2_label.as_str().into(),
    }
}

/// A viewport DTO as an ordered [`Rect`]; inverted rectangles are a
/// [`gvdb_api::ErrorKind::BadRequest`] for every consumer at once.
pub fn to_rect(w: &RectDto) -> ApiResult<Rect> {
    if !w.is_ordered() {
        return Err(ApiError::bad_request(
            "window must satisfy min_x <= max_x and min_y <= max_y",
        ));
    }
    Ok(Rect::new(w.min_x, w.min_y, w.max_x, w.max_y))
}

fn unknown_session(sid: SessionId) -> ApiError {
    ApiError::not_found(format!("unknown session {sid}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use gvdb_api::ErrorKind;
    use gvdb_graph::generators::{patent_like, wikidata_like, CitationConfig, RdfConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gvdb-svc-{name}-{}", std::process::id()));
        p
    }

    fn manager(name: &str) -> (QueryManager, std::path::PathBuf) {
        let g = wikidata_like(RdfConfig {
            entities: 250,
            ..Default::default()
        });
        let path = tmp(name);
        let (db, _) = preprocess(
            &g,
            &path,
            &PreprocessConfig {
                k: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        (QueryManager::new(db), path)
    }

    fn window_req(session: Option<u64>) -> ApiRequest {
        ApiRequest::Window {
            predicate: None,
            dataset: None,
            layer: Some(0),
            window: RectDto {
                min_x: 0.0,
                min_y: 0.0,
                max_x: 2000.0,
                max_y: 2000.0,
            },
            session,
            packed: false,
            rid_range: None,
        }
    }

    #[test]
    fn query_manager_serves_the_default_dataset() {
        let (qm, path) = manager("single");
        let ApiOutcome::Datasets(datasets) = qm.call(&ApiRequest::ListDatasets).unwrap() else {
            panic!("wrong outcome")
        };
        assert_eq!(datasets.len(), 1);
        assert_eq!(datasets[0].name, DEFAULT_DATASET);
        assert_eq!(datasets[0].layers, qm.layer_count());

        // Addressing it as "default" works; any other name is NotFound.
        assert!(qm
            .call(&ApiRequest::ListLayers {
                dataset: Some("default".into())
            })
            .is_ok());
        let err = qm
            .call(&ApiRequest::ListLayers {
                dataset: Some("acm".into()),
            })
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::NotFound);
        assert!(err.message.contains("default"), "{}", err.message);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn window_flow_through_the_trait() {
        let (qm, path) = manager("winflow");
        let svc: &dyn GraphService = &qm;
        let ApiOutcome::Window(first) = svc.call(&window_req(None)).unwrap() else {
            panic!("wrong outcome")
        };
        assert_eq!(first.source(), Source::Cold);
        assert!(!first.response.rows.is_empty());
        // Same window again: exact cache hit through the same entry point.
        let ApiOutcome::Window(second) = svc.call(&window_req(None)).unwrap() else {
            panic!("wrong outcome")
        };
        assert_eq!(second.source(), Source::Hit);
        assert_eq!(second.response.rows, first.response.rows);

        // The wire DTO carries the meta and the payload.
        let resp = ApiOutcome::Window(second).into_response();
        let ApiResponse::Window { meta, graph } = &resp else {
            panic!("wrong response")
        };
        assert_eq!(meta.source, Source::Hit);
        assert_eq!(graph, &first.response.json.text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn session_anchored_pans_ride_delta() {
        let (qm, path) = manager("svcsession");
        let svc: &dyn GraphService = &qm;
        let ApiOutcome::Session { id } = svc
            .call(&ApiRequest::SessionNew {
                dataset: None,
                window: None,
            })
            .unwrap()
        else {
            panic!("wrong outcome")
        };
        let ApiOutcome::Window(first) = svc.call(&window_req(Some(id))).unwrap() else {
            panic!("wrong outcome")
        };
        assert_eq!(first.source(), Source::Cold);
        // 85%-overlap pan: must be incremental.
        let pan = ApiRequest::Window {
            predicate: None,
            dataset: None,
            layer: None,
            window: RectDto {
                min_x: 300.0,
                min_y: 0.0,
                max_x: 2300.0,
                max_y: 2000.0,
            },
            session: Some(id),
            packed: false,
            rid_range: None,
        };
        let ApiOutcome::Window(second) = svc.call(&pan).unwrap() else {
            panic!("wrong outcome")
        };
        assert_eq!(second.source(), Source::Delta);
        assert!(second.response.rows_reused > 0);

        // Close, then the id stops resolving.
        assert!(matches!(
            svc.call(&ApiRequest::SessionClose {
                dataset: None,
                session: id
            }),
            Ok(ApiOutcome::Closed)
        ));
        let err = svc.call(&window_req(Some(id))).unwrap_err();
        assert_eq!(err.kind, ErrorKind::NotFound);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mutations_carry_the_new_epoch() {
        let (qm, path) = manager("svcmut");
        let edge = EdgeDto {
            node1_id: 990_001,
            node1_label: "svc A".into(),
            node2_id: 990_002,
            node2_label: "svc B".into(),
            edge_label: "svc-edit".into(),
            x1: 5.0,
            y1: 5.0,
            x2: 25.0,
            y2: 25.0,
            directed: false,
        };
        let ApiOutcome::Mutated {
            epoch, rid, layer, ..
        } = qm
            .call(&ApiRequest::InsertEdge {
                dataset: None,
                layer: 0,
                edge,
            })
            .unwrap()
        else {
            panic!("wrong outcome")
        };
        assert_eq!(layer, 0);
        assert_eq!(epoch, 1, "insert bumps the layer epoch");
        let rid = rid.expect("insert returns the row id");

        // The write is observable through the same service.
        let ApiOutcome::Window(view) = qm.call(&window_req(None)).unwrap() else {
            panic!("wrong outcome")
        };
        assert_eq!(view.response.epoch, 1);
        assert!(view
            .response
            .rows
            .iter()
            .any(|(_, r)| &*r.edge_label == "svc-edit"));

        // Delete through the protocol, epoch bumps again.
        let ApiOutcome::Mutated {
            epoch, rid: none, ..
        } = qm
            .call(&ApiRequest::DeleteEdge {
                dataset: None,
                layer: 0,
                rid,
            })
            .unwrap()
        else {
            panic!("wrong outcome")
        };
        assert_eq!(epoch, 2);
        assert!(none.is_none());

        // Deleting a missing row is NotFound, not a panic.
        let err = qm
            .call(&ApiRequest::DeleteEdge {
                dataset: None,
                layer: 0,
                rid,
            })
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::NotFound);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_window_is_bad_request() {
        let (qm, path) = manager("svcbadrect");
        let err = qm
            .call(&ApiRequest::Window {
                predicate: None,
                dataset: None,
                layer: Some(0),
                window: RectDto {
                    min_x: 5.0,
                    min_y: 0.0,
                    max_x: 1.0,
                    max_y: 1.0,
                },
                session: None,
                packed: false,
                rid_range: None,
            })
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        // A missing layer is NotFound.
        let err = qm
            .call(&ApiRequest::Search {
                predicate: None,
                dataset: None,
                layer: 99,
                query: "x".into(),
            })
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::NotFound);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_window_chunks_rows_and_reports_in_the_trailer() {
        let (qm, path) = manager("stream-chunks");
        let chunk = qm.client_model().chunk_rows;
        let everything = ApiRequest::Window {
            predicate: None,
            dataset: None,
            layer: Some(0),
            window: RectDto {
                min_x: -1e9,
                min_y: -1e9,
                max_x: 1e9,
                max_y: 1e9,
            },
            session: None,
            packed: false,
            rid_range: None,
        };
        let mut sink = crate::FrameBuffer::new();
        qm.call_streamed(&everything, &mut sink).unwrap();

        let gvdb_api::ApiFrame::Header(header) = &sink.frames[0] else {
            panic!("first frame is the header")
        };
        assert_eq!(header.op, "window");
        assert_eq!(header.dataset, DEFAULT_DATASET);
        assert_eq!(header.source, Some(Source::Cold));
        let gvdb_api::ApiFrame::Trailer(trailer) = sink.frames.last().unwrap() else {
            panic!("last frame is the trailer")
        };
        let mut rows = 0u64;
        let mut batches = 0u64;
        for frame in &sink.frames {
            if let gvdb_api::ApiFrame::Rows(batch) = frame {
                assert!(batch.len() <= chunk, "batches respect chunk_rows");
                rows += batch.len() as u64;
                batches += 1;
            }
        }
        assert_eq!(trailer.rows, rows);
        assert_eq!(trailer.frames, batches);
        assert!(rows > 0);
        // The streamed rows equal the buffered response's.
        let ApiOutcome::Window(buffered) = qm.call(&everything).unwrap() else {
            panic!("wrong outcome")
        };
        assert_eq!(buffered.response.rows.len() as u64, rows);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn window_smaller_than_one_chunk_streams_a_single_frame() {
        // A chunk wider than the whole plane: the stream degenerates to
        // Header, one Rows frame carrying everything, Trailer — and no
        // Progress frame, since one chunk needs no progress reporting.
        let g = wikidata_like(RdfConfig {
            entities: 250,
            ..Default::default()
        });
        let path = tmp("stream-tiny");
        let (db, _) = preprocess(
            &g,
            &path,
            &PreprocessConfig {
                k: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        let model = crate::ClientModel {
            chunk_rows: 1_000_000,
            ..Default::default()
        };
        let qm = QueryManager::with_client(db, model);
        let mut sink = crate::FrameBuffer::new();
        qm.call_streamed(&window_req(None), &mut sink).unwrap();
        assert_eq!(sink.frames.len(), 3, "header + one rows frame + trailer");
        assert!(matches!(sink.frames[0], gvdb_api::ApiFrame::Header(_)));
        let gvdb_api::ApiFrame::Rows(batch) = &sink.frames[1] else {
            panic!("middle frame carries the rows")
        };
        let gvdb_api::ApiFrame::Trailer(trailer) = &sink.frames[2] else {
            panic!("last frame is the trailer")
        };
        assert_eq!(trailer.frames, 1);
        assert_eq!(trailer.rows, batch.len() as u64);
        assert!(trailer.rows > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_delta_pan_reassembles_to_the_buffered_payload() {
        // A small chunk so the pan's delta spans several frames: with the
        // default 128 the whole result fits in one frame and the per-frame
        // `reused` tagging has nothing to distinguish.
        let g = wikidata_like(RdfConfig {
            entities: 250,
            ..Default::default()
        });
        let path = tmp("stream-delta");
        let (db, _) = preprocess(
            &g,
            &path,
            &PreprocessConfig {
                k: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        let model = crate::ClientModel {
            chunk_rows: 8,
            ..Default::default()
        };
        let qm = QueryManager::with_client(db, model);
        // Anchor on the left 60% of the data extent, then pan right so the
        // window keeps most of the anchor but picks up a fresh strip —
        // guaranteeing the delta path sees both reused rows and arrivals
        // regardless of how the layout spread this particular graph.
        let everything = qm
            .window_query(0, &Rect::new(-1e9, -1e9, 1e9, 1e9))
            .unwrap();
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, row) in everything.rows.iter() {
            min_x = min_x.min(row.geometry.x1).min(row.geometry.x2);
            max_x = max_x.max(row.geometry.x1).max(row.geometry.x2);
        }
        let w = max_x - min_x;
        // Drop the whole-plane probe from the cache (an edit invalidates
        // the layer) so the pan deltas against the anchor below, not the
        // probe.
        let dummy = everything.rows[0].1.clone();
        let rid = qm.insert_row(0, &dummy).unwrap();
        qm.delete_row(0, rid).unwrap();
        let rect = |lo: f64, hi: f64| RectDto {
            min_x: min_x + lo * w,
            min_y: -1e9,
            max_x: min_x + hi * w,
            max_y: 1e9,
        };
        qm.call(&ApiRequest::Window {
            predicate: None,
            dataset: None,
            layer: Some(0),
            window: rect(0.0, 0.6),
            session: None,
            packed: false,
            rid_range: None,
        })
        .unwrap(); // anchor the cache
        let pan = ApiRequest::Window {
            predicate: None,
            dataset: None,
            layer: Some(0),
            window: rect(0.15, 0.75),
            session: None,
            packed: false,
            rid_range: None,
        };
        let mut sink = crate::FrameBuffer::new();
        qm.call_streamed(&pan, &mut sink).unwrap();
        let gvdb_api::ApiFrame::Header(header) = &sink.frames[0] else {
            panic!("first frame is the header")
        };
        assert_eq!(header.source, Some(Source::Delta));
        let mut flags = Vec::new();
        let mut fragments = Vec::new();
        for frame in &sink.frames {
            if let gvdb_api::ApiFrame::Rows(gvdb_api::RowBatch::Graph { reused, graph, .. }) = frame
            {
                flags.push(*reused);
                fragments.push(graph.as_str());
            }
        }
        // A delta pan carries both kinds of frame: pure-reuse frames from
        // the kept region and at least one frame holding arrival rows.
        assert!(flags.contains(&true), "a delta pan reuses rows: {flags:?}");
        assert!(
            flags.contains(&false),
            "a delta pan fetches rows: {flags:?}"
        );
        // Frames are verbatim slices of the spliced payload: gluing the
        // fragments back together reproduces the buffered envelope
        // byte-for-byte (the repeated query below is an exact cache hit on
        // the payload the stream just sliced).
        let reassembled = gvdb_api::reassemble_graph(fragments).unwrap();
        let ApiOutcome::Window(buffered) = qm.call(&pan).unwrap() else {
            panic!("wrong outcome")
        };
        assert!(buffered.response.cache_hit);
        assert_eq!(reassembled, buffered.response.json.text);
        std::fs::remove_file(&path).ok();
    }

    /// Decode every Rows frame in `sink` to a plain graph fragment,
    /// counting how many arrived packed on the way.
    fn decode_rows_frames(sink: &crate::FrameBuffer) -> (Vec<String>, usize) {
        let mut fragments = Vec::new();
        let mut packed_frames = 0usize;
        for frame in &sink.frames {
            let gvdb_api::ApiFrame::Rows(batch) = frame else {
                continue;
            };
            if matches!(batch, gvdb_api::RowBatch::Packed { .. }) {
                packed_frames += 1;
            }
            let gvdb_api::RowBatch::Graph { graph, .. } = batch.clone().into_plain() else {
                panic!("rows frames decode to graph batches")
            };
            fragments.push(graph);
        }
        (fragments, packed_frames)
    }

    #[test]
    fn packed_cold_and_hit_streams_decode_byte_identical_to_buffered() {
        let g = wikidata_like(RdfConfig {
            entities: 250,
            ..Default::default()
        });
        let path = tmp("stream-packed");
        let (db, _) = preprocess(
            &g,
            &path,
            &PreprocessConfig {
                k: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        // A small chunk so the whole-plane stream spans many frames.
        let model = crate::ClientModel {
            chunk_rows: 8,
            ..Default::default()
        };
        let qm = QueryManager::with_client(db, model);
        let packed_req = ApiRequest::Window {
            predicate: None,
            dataset: None,
            layer: Some(0),
            window: RectDto {
                min_x: -1e9,
                min_y: -1e9,
                max_x: 1e9,
                max_y: 1e9,
            },
            session: None,
            packed: true,
            rid_range: None,
        };

        // Cold path: the stream packs every frame straight from the rows.
        let mut sink = crate::FrameBuffer::new();
        qm.call_streamed(&packed_req, &mut sink).unwrap();
        let gvdb_api::ApiFrame::Header(header) = &sink.frames[0] else {
            panic!("first frame is the header")
        };
        assert_eq!(header.source, Some(Source::Cold));
        let (fragments, packed_frames) = decode_rows_frames(&sink);
        assert!(packed_frames > 1, "cold stream negotiated packed frames");
        assert_eq!(packed_frames, fragments.len(), "every cold frame packs");
        let reassembled = gvdb_api::reassemble_graph(fragments.iter().map(String::as_str)).unwrap();

        // The buffered envelope for the identical window is an exact
        // cache hit on the payload the stream just built — the decoded
        // fragments must reproduce it byte for byte.
        let plain_req = ApiRequest::Window {
            predicate: None,
            dataset: None,
            layer: Some(0),
            window: RectDto {
                min_x: -1e9,
                min_y: -1e9,
                max_x: 1e9,
                max_y: 1e9,
            },
            session: None,
            packed: false,
            rid_range: None,
        };
        let ApiOutcome::Window(buffered) = qm.call(&plain_req).unwrap() else {
            panic!("wrong outcome")
        };
        assert!(buffered.response.cache_hit);
        assert_eq!(reassembled, buffered.response.json.text);

        // Hit path: the cached canonical payload streams packed too, and
        // decodes to the same bytes.
        let mut sink = crate::FrameBuffer::new();
        qm.call_streamed(&packed_req, &mut sink).unwrap();
        let gvdb_api::ApiFrame::Header(header) = &sink.frames[0] else {
            panic!("first frame is the header")
        };
        assert_eq!(header.source, Some(Source::Hit));
        let (fragments, packed_frames) = decode_rows_frames(&sink);
        assert!(packed_frames > 1, "hit stream negotiated packed frames");
        let reassembled = gvdb_api::reassemble_graph(fragments.iter().map(String::as_str)).unwrap();
        assert_eq!(reassembled, buffered.response.json.text);
        std::fs::remove_file(&path).ok();
    }

    /// Random pans over one dataset: whatever mix of cold, exact-hit and
    /// spliced-delta payloads each window lands on, a packed stream must
    /// decode to the exact bytes of the buffered envelope. Non-canonical
    /// (spliced) payloads are the fallback case — those frames simply
    /// arrive plain, and the equality still holds.
    #[test]
    fn packed_streams_stay_byte_identical_across_random_pans() {
        let g = wikidata_like(RdfConfig {
            entities: 200,
            ..Default::default()
        });
        let path = tmp("stream-packed-prop");
        let (db, _) = preprocess(
            &g,
            &path,
            &PreprocessConfig {
                k: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        let model = crate::ClientModel {
            chunk_rows: 16,
            ..Default::default()
        };
        let qm = QueryManager::with_client(db, model);
        let extent = qm
            .window_query(0, &Rect::new(-1e9, -1e9, 1e9, 1e9))
            .unwrap();
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, row) in extent.rows.iter() {
            min_x = min_x.min(row.geometry.x1).min(row.geometry.x2);
            max_x = max_x.max(row.geometry.x1).max(row.geometry.x2);
            min_y = min_y.min(row.geometry.y1).min(row.geometry.y2);
            max_y = max_y.max(row.geometry.y1).max(row.geometry.y2);
        }
        let (w, h) = (max_x - min_x, max_y - min_y);

        for case in 0..24u32 {
            let mut rng = proptest::TestRng::for_case("packed_pans", case);
            let (fx, fy) = (rng.unit_f64() * 0.7, rng.unit_f64() * 0.7);
            let (fw, fh) = (0.2 + rng.unit_f64() * 0.4, 0.2 + rng.unit_f64() * 0.4);
            let window = RectDto {
                min_x: min_x + fx * w,
                min_y: min_y + fy * h,
                max_x: min_x + (fx + fw) * w,
                max_y: min_y + (fy + fh) * h,
            };
            let packed_req = ApiRequest::Window {
                predicate: None,
                dataset: None,
                layer: Some(0),
                window,
                session: None,
                packed: true,
                rid_range: None,
            };
            let mut sink = crate::FrameBuffer::new();
            qm.call_streamed(&packed_req, &mut sink).unwrap();
            let (fragments, _) = decode_rows_frames(&sink);
            let reassembled =
                gvdb_api::reassemble_graph(fragments.iter().map(String::as_str)).unwrap();
            let plain_req = ApiRequest::Window {
                predicate: None,
                dataset: None,
                layer: Some(0),
                window,
                session: None,
                packed: false,
                rid_range: None,
            };
            let ApiOutcome::Window(buffered) = qm.call(&plain_req).unwrap() else {
                panic!("wrong outcome")
            };
            assert!(buffered.response.cache_hit, "stream primed the cache");
            assert_eq!(
                reassembled, buffered.response.json.text,
                "window {window:?} diverged"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_streamable_ops_fall_back_or_reject() {
        let (qm, path) = manager("stream-misc");
        // Focus streams through the single-sequence default.
        let hits = qm.keyword_search(0, "Q1").unwrap();
        let mut sink = crate::FrameBuffer::new();
        qm.call_streamed(
            &ApiRequest::Focus {
                dataset: None,
                layer: 0,
                node: hits[0].node_id,
            },
            &mut sink,
        )
        .unwrap();
        assert!(
            matches!(sink.frames.first(), Some(gvdb_api::ApiFrame::Header(h)) if h.op == "focus")
        );
        assert!(matches!(
            sink.frames.last(),
            Some(gvdb_api::ApiFrame::Trailer(_))
        ));

        // Stats has no row stream: a typed BadRequest, no frames emitted.
        let mut sink = crate::FrameBuffer::new();
        let err = qm.call_streamed(&ApiRequest::Stats, &mut sink).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(sink.frames.is_empty());

        // Errors surface before any frame for streamable ops too.
        let mut sink = crate::FrameBuffer::new();
        let err = qm
            .call_streamed(
                &ApiRequest::Search {
                    predicate: None,
                    dataset: None,
                    layer: 99,
                    query: "x".into(),
                },
                &mut sink,
            )
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::NotFound);
        assert!(sink.frames.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_workspace_keeps_datasets_isolated() {
        let rdf_path = tmp("ws-rdf");
        let cite_path = tmp("ws-cite");
        let cfg = PreprocessConfig {
            k: Some(2),
            ..Default::default()
        };
        let (rdf_db, _) = preprocess(
            &wikidata_like(RdfConfig {
                entities: 200,
                ..Default::default()
            }),
            &rdf_path,
            &cfg,
        )
        .unwrap();
        let (cite_db, _) = preprocess(
            &patent_like(CitationConfig {
                nodes: 300,
                ..Default::default()
            }),
            &cite_path,
            &cfg,
        )
        .unwrap();

        let ws = SharedWorkspace::new();
        ws.add("dblp", rdf_db).unwrap();
        ws.add("patents", cite_db).unwrap();
        let svc: &dyn GraphService = &ws;

        let ApiOutcome::Datasets(datasets) = svc.call(&ApiRequest::ListDatasets).unwrap() else {
            panic!("wrong outcome")
        };
        assert_eq!(
            datasets.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(),
            vec!["dblp", "patents"]
        );

        // With several datasets, an unaddressed request is BadRequest.
        let err = svc.call(&window_req(None)).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.message.contains("dblp"), "{}", err.message);

        // Warm both caches, then mutate only patents.
        let win = |dataset: &str| ApiRequest::Window {
            predicate: None,
            dataset: Some(dataset.into()),
            layer: Some(0),
            window: RectDto {
                min_x: -1e9,
                min_y: -1e9,
                max_x: 1e9,
                max_y: 1e9,
            },
            session: None,
            packed: false,
            rid_range: None,
        };
        svc.call(&win("dblp")).unwrap();
        svc.call(&win("patents")).unwrap();
        let ApiOutcome::Mutated { epoch, .. } = svc
            .call(&ApiRequest::InsertEdge {
                dataset: Some("patents".into()),
                layer: 0,
                edge: EdgeDto {
                    node1_id: 991_001,
                    node1_label: "iso A".into(),
                    node2_id: 991_002,
                    node2_label: "iso B".into(),
                    edge_label: "isolated-edit".into(),
                    x1: 0.0,
                    y1: 0.0,
                    x2: 1.0,
                    y2: 1.0,
                    directed: false,
                },
            })
            .unwrap()
        else {
            panic!("wrong outcome")
        };
        assert_eq!(epoch, 1);

        // The mutated dataset re-queries cold at the new epoch; the other
        // dataset's cached window and epochs are untouched.
        let ApiOutcome::Window(pat) = svc.call(&win("patents")).unwrap() else {
            panic!("wrong outcome")
        };
        assert_eq!(pat.response.epoch, 1);
        assert_ne!(pat.source(), Source::Hit);
        let ApiOutcome::Window(rdf) = svc.call(&win("dblp")).unwrap() else {
            panic!("wrong outcome")
        };
        assert_eq!(rdf.response.epoch, 0, "other dataset's epochs untouched");
        assert_eq!(rdf.source(), Source::Hit, "other dataset's cache survives");

        // Per-dataset stats expose the divergence.
        let ApiOutcome::Stats(stats) = svc.call(&ApiRequest::Stats).unwrap() else {
            panic!("wrong outcome")
        };
        let by_name = |n: &str| stats.iter().find(|d| d.name == n).unwrap();
        assert_eq!(by_name("patents").epochs[0], 1);
        assert_eq!(by_name("dblp").epochs[0], 0);

        std::fs::remove_file(&rdf_path).ok();
        std::fs::remove_file(&cite_path).ok();
    }

    // -- the attribute query engine ------------------------------------------

    use crate::filter::{CompiledFilter, FilterMode};
    use gvdb_api::{AggOp, Field, Predicate};

    fn case_predicate(case: u32) -> Predicate {
        match case % 4 {
            0 => Predicate::Range {
                field: Field::Degree,
                min: Some(2.0),
                max: None,
            },
            1 => Predicate::NodeLabelPrefix("Q1".into()),
            2 => Predicate::Or(vec![
                Predicate::NodeLabelEq("Q5".into()),
                Predicate::Range {
                    field: Field::Rank,
                    min: Some(0.005),
                    max: None,
                },
            ]),
            _ => Predicate::And(vec![
                Predicate::NodeLabelPrefix("Q".into()),
                Predicate::Range {
                    field: Field::X,
                    min: None,
                    max: Some(1200.0),
                },
            ]),
        }
    }

    fn sorted_rids(resp: &WindowResponse) -> Vec<gvdb_storage::RowId> {
        let mut rids: Vec<gvdb_storage::RowId> = resp.rows.iter().map(|(rid, _)| *rid).collect();
        rids.sort_unstable();
        rids
    }

    /// The satellite invariant: a filtered window equals "fetch the
    /// window cold, then filter", row for row, whatever path serves it —
    /// cold (chooser), exact cache hit, delta splice, or the streamed
    /// twin of each.
    #[test]
    fn filtered_windows_match_fetch_then_filter_across_paths() {
        let (qm, path) = manager("filter-prop");
        let compiled = |pred: &Predicate| {
            let db = qm.db();
            let sidecar = db.layer(0).unwrap().sidecar().cloned();
            CompiledFilter::new(pred.clone(), sidecar)
        };

        // Cold streamed filtered path first, while the cache is empty:
        // byte-identical to the buffered filtered payload, and it must
        // NOT seed the cache (the entry would be missing rows).
        let cold_pred = case_predicate(0);
        let window = RectDto {
            min_x: 0.0,
            min_y: 0.0,
            max_x: 2000.0,
            max_y: 2000.0,
        };
        let filtered_req = |packed: bool| ApiRequest::Window {
            predicate: Some(cold_pred.clone()),
            dataset: None,
            layer: Some(0),
            window,
            session: None,
            packed,
            rid_range: None,
        };
        let mut sink = crate::FrameBuffer::new();
        qm.call_streamed(&filtered_req(true), &mut sink).unwrap();
        let (fragments, _) = decode_rows_frames(&sink);
        let reassembled = gvdb_api::reassemble_graph(fragments.iter().map(String::as_str)).unwrap();
        let ApiOutcome::Window(buffered) = qm.call(&filtered_req(false)).unwrap() else {
            panic!("wrong outcome")
        };
        assert!(
            !buffered.response.cache_hit,
            "a filtered stream must not seed the cache"
        );
        assert_eq!(
            reassembled, buffered.response.json.text,
            "filtered streams keep byte-identity with the buffered envelope"
        );

        // Random windows × operator mix, across every serving path.
        let extent = qm
            .window_query(0, &Rect::new(-1e9, -1e9, 1e9, 1e9))
            .unwrap();
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, row) in extent.rows.iter() {
            min_x = min_x.min(row.geometry.x1).min(row.geometry.x2);
            max_x = max_x.max(row.geometry.x1).max(row.geometry.x2);
            min_y = min_y.min(row.geometry.y1).min(row.geometry.y2);
            max_y = max_y.max(row.geometry.y1).max(row.geometry.y2);
        }
        let (w, h) = (max_x - min_x, max_y - min_y);
        let mut saw_delta = false;
        let mut saw_nonempty = false;
        for case in 0..16u32 {
            let mut rng = proptest::TestRng::for_case("filtered_windows", case);
            let pred = case_predicate(case);
            let filter = compiled(&pred);
            let (fx, fy) = (rng.unit_f64() * 0.5, rng.unit_f64() * 0.5);
            let (fw, fh) = (0.3 + rng.unit_f64() * 0.4, 0.3 + rng.unit_f64() * 0.4);
            let rect = Rect::new(
                min_x + fx * w,
                min_y + fy * h,
                min_x + (fx + fw) * w,
                min_y + (fy + fh) * h,
            );

            // Cold (or overlap-delta) filtered vs fetch-then-filter.
            let filtered = qm
                .window_query_filtered(0, &rect, None, &pred, FilterMode::Auto)
                .unwrap();
            let unfiltered = qm.window_query(0, &rect).unwrap();
            let mut expected: Vec<gvdb_storage::RowId> = unfiltered
                .rows
                .iter()
                .filter(|(_, row)| filter.matches_row(row))
                .map(|(rid, _)| *rid)
                .collect();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(sorted_rids(&filtered), expected, "cold path, case {case}");
            saw_nonempty |= !expected.is_empty();

            // Exact-hit filtered (the unfiltered query above cached the
            // window).
            let hit = qm
                .window_query_filtered(0, &rect, None, &pred, FilterMode::Auto)
                .unwrap();
            assert!(hit.cache_hit, "case {case} should hit the cache now");
            assert_eq!(sorted_rids(&hit), expected, "hit path, case {case}");

            // Anchored pan: filtered delta vs fetch-then-filter.
            let pan = Rect::new(
                rect.min_x + 0.1 * (rect.max_x - rect.min_x),
                rect.min_y,
                rect.max_x + 0.1 * (rect.max_x - rect.min_x),
                rect.max_y,
            );
            let delta = qm
                .window_query_filtered(0, &pan, Some(&rect), &pred, FilterMode::Auto)
                .unwrap();
            saw_delta |= delta.delta;
            let pan_unfiltered = qm.window_query(0, &pan).unwrap();
            let mut pan_expected: Vec<gvdb_storage::RowId> = pan_unfiltered
                .rows
                .iter()
                .filter(|(_, row)| filter.matches_row(row))
                .map(|(rid, _)| *rid)
                .collect();
            pan_expected.sort_unstable();
            pan_expected.dedup();
            assert_eq!(sorted_rids(&delta), pan_expected, "delta path, case {case}");

            // Streamed filtered (Built plan now) stays byte-identical to
            // its buffered twin.
            let dto = RectDto {
                min_x: pan.min_x,
                min_y: pan.min_y,
                max_x: pan.max_x,
                max_y: pan.max_y,
            };
            let req = |packed: bool| ApiRequest::Window {
                predicate: Some(pred.clone()),
                dataset: None,
                layer: Some(0),
                window: dto,
                session: None,
                packed,
                rid_range: None,
            };
            let mut sink = crate::FrameBuffer::new();
            qm.call_streamed(&req(true), &mut sink).unwrap();
            let (fragments, _) = decode_rows_frames(&sink);
            let reassembled =
                gvdb_api::reassemble_graph(fragments.iter().map(String::as_str)).unwrap();
            let ApiOutcome::Window(buffered) = qm.call(&req(false)).unwrap() else {
                panic!("wrong outcome")
            };
            assert_eq!(
                reassembled, buffered.response.json.text,
                "stream, case {case}"
            );
        }
        assert!(saw_delta, "at least one pan should ride the delta path");
        assert!(saw_nonempty, "the predicates should match something");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn aggregates_reduce_the_filtered_window() {
        let (qm, path) = manager("agg");
        let plane = Rect::new(-1e9, -1e9, 1e9, 1e9);
        let pred = Predicate::Range {
            field: Field::Degree,
            min: Some(2.0),
            max: None,
        };

        let filtered = qm
            .window_query_filtered(0, &plane, None, &pred, FilterMode::Auto)
            .unwrap();
        let (count, _) = qm
            .aggregate_window(0, &plane, Some(&pred), &AggOp::Count, FilterMode::Auto)
            .unwrap();
        assert_eq!(count.rows, filtered.rows.len() as u64);
        let mut node_ids: Vec<u64> = filtered
            .rows
            .iter()
            .flat_map(|(_, r)| [r.node1_id, r.node2_id])
            .collect();
        node_ids.sort_unstable();
        node_ids.dedup();
        assert_eq!(count.nodes, node_ids.len() as u64);
        assert!(count.value.is_none() && count.histogram.is_none());

        // min/max reduce over distinct nodes.
        let (min_x, _) = qm
            .aggregate_window(
                0,
                &plane,
                Some(&pred),
                &AggOp::Min(Field::X),
                FilterMode::Auto,
            )
            .unwrap();
        let expected_min = filtered
            .rows
            .iter()
            .flat_map(|(_, r)| [r.geometry.x1, r.geometry.x2])
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min_x.value, Some(expected_min));

        // An unfiltered aggregate counts the whole window.
        let whole = qm.window_query(0, &plane).unwrap();
        let (all, _) = qm
            .aggregate_window(0, &plane, None, &AggOp::Count, FilterMode::Auto)
            .unwrap();
        assert_eq!(all.rows, whole.rows.len() as u64);

        // Histogram mass equals the distinct node count.
        let (hist, _) = qm
            .aggregate_window(
                0,
                &plane,
                None,
                &AggOp::Histogram {
                    field: Field::Degree,
                    buckets: 8,
                },
                FilterMode::Auto,
            )
            .unwrap();
        let h = hist.histogram.expect("non-empty window yields a histogram");
        assert_eq!(h.counts.len(), 8);
        assert_eq!(h.counts.iter().sum::<u64>(), hist.nodes);
        assert!(h.lo <= h.hi);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn aggregate_streams_progress_then_summary() {
        let (qm, path) = manager("agg-stream");
        let req = ApiRequest::Aggregate {
            dataset: None,
            layer: Some(0),
            window: RectDto {
                min_x: 0.0,
                min_y: 0.0,
                max_x: 2000.0,
                max_y: 2000.0,
            },
            predicate: Some(Predicate::NodeLabelPrefix("Q".into())),
            agg: AggOp::Count,
        };
        // Buffered and streamed answers agree.
        let ApiOutcome::Aggregate { result, epoch, .. } = qm.call(&req).unwrap() else {
            panic!("wrong outcome")
        };
        let mut sink = crate::FrameBuffer::new();
        qm.call_streamed(&req, &mut sink).unwrap();
        let kinds: Vec<&str> = sink.frames.iter().map(|f| f.kind()).collect();
        assert_eq!(kinds, ["header", "progress", "summary", "trailer"]);
        let Some(gvdb_api::ApiFrame::Header(h)) = sink.frames.first() else {
            panic!("no header")
        };
        assert_eq!(h.op, "aggregate");
        assert_eq!(h.epoch, epoch);
        let Some(gvdb_api::ApiFrame::Summary(s)) = sink.frames.get(2) else {
            panic!("no summary")
        };
        assert_eq!(s, &result);
        let Some(gvdb_api::ApiFrame::Trailer(t)) = sink.frames.last() else {
            panic!("no trailer")
        };
        assert_eq!(t.rows, result.rows);
        assert_eq!(t.epoch, epoch, "no racing edit: trailer epoch unchanged");
        assert_eq!(t.frames, 1);

        // Errors (bad layer) surface before any frame.
        let mut sink = crate::FrameBuffer::new();
        let err = qm
            .call_streamed(
                &ApiRequest::Aggregate {
                    dataset: None,
                    layer: Some(99),
                    window: RectDto {
                        min_x: 0.0,
                        min_y: 0.0,
                        max_x: 1.0,
                        max_y: 1.0,
                    },
                    predicate: None,
                    agg: AggOp::Count,
                },
                &mut sink,
            )
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::NotFound);
        assert!(sink.frames.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn search_applies_node_predicates_and_rejects_edge_ones() {
        let (qm, path) = manager("search-filter");
        let all = qm.keyword_search(0, "Q1").unwrap();
        assert!(!all.is_empty());
        let half = Predicate::Range {
            field: Field::X,
            min: None,
            max: Some(1000.0),
        };
        let filtered = qm.keyword_search_filtered(0, "Q1", Some(&half)).unwrap();
        let expected: Vec<u64> = all
            .iter()
            .filter(|hit| hit.position.x <= 1000.0)
            .map(|hit| hit.node_id)
            .collect();
        assert_eq!(
            filtered.iter().map(|h| h.node_id).collect::<Vec<_>>(),
            expected
        );

        let err = qm
            .call(&ApiRequest::Search {
                predicate: Some(Predicate::EdgeLabelEq("wdt:P31".into())),
                dataset: None,
                layer: 0,
                query: "Q1".into(),
            })
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_expose_layer_cardinality_and_chooser_decisions() {
        let (qm, path) = manager("filter-stats");
        // A selective label probe should take the index path; an x-range
        // has no access path and scans.
        let selective = Predicate::NodeLabelEq("Q123".into());
        let scan_only = Predicate::Range {
            field: Field::X,
            min: Some(0.0),
            max: None,
        };
        let plane = Rect::new(-1e9, -1e9, 1e9, 1e9);
        let auto = qm
            .window_query_filtered(0, &plane, None, &selective, FilterMode::Auto)
            .unwrap();
        let (index_n, scan_n) = qm.chooser_counts();
        assert_eq!(
            (index_n, scan_n),
            (1, 0),
            "a selective label predicate probes the index"
        );
        // Forced scan over a distinct (still uncached) window returns the
        // same surviving rows.
        let wide = Rect::new(-2e9, -2e9, 2e9, 2e9);
        let scanned = qm
            .window_query_filtered(0, &wide, None, &selective, FilterMode::ForceScan)
            .unwrap();
        assert_eq!(sorted_rids(&auto), sorted_rids(&scanned));
        let _ = qm
            .window_query_filtered(0, &plane, None, &scan_only, FilterMode::Auto)
            .unwrap();
        let (index_n, scan_n) = qm.chooser_counts();
        assert_eq!(index_n, 1);
        assert_eq!(scan_n, 2, "forced + unindexable scans both counted");

        let ApiOutcome::Stats(stats) = qm.call(&ApiRequest::Stats).unwrap() else {
            panic!("wrong outcome")
        };
        let ds = &stats[0];
        assert_eq!(ds.layers.len(), qm.layer_count());
        for (i, layer) in ds.layers.iter().enumerate() {
            assert_eq!(layer.index, i as u64);
            assert!(layer.rows > 0, "layer {i} has rows");
            assert!(
                layer.sidecar_nodes > 0,
                "layer {i} carries a degree/rank sidecar"
            );
        }
        assert_eq!(ds.chooser.index, 1);
        assert_eq!(ds.chooser.scan, 2);
        std::fs::remove_file(&path).ok();
    }
}
