//! The attribute query engine's evaluation core: compile a wire
//! [`Predicate`] into a row filter, pick an access path for a cold
//! filtered window, and reduce a filtered row set into an aggregate.
//!
//! ## Semantics
//!
//! A predicate describes **nodes** except for the `edge_label_*`
//! operators, which describe the row itself. A node-level predicate
//! matches a row when **either endpoint** satisfies it — the window
//! query returns edges, and an edge is interesting if it touches an
//! interesting node. `and`/`or` compose at row level.
//!
//! `degree`/`rank` scores come from the layer's preprocess-time
//! [`RankSidecar`]; nodes the preprocess run never saw (rows inserted
//! through the edit path) default both scores to `0.0`.
//!
//! ## The access-path chooser
//!
//! A cold filtered window can be served two ways:
//!
//! * **scan** — R-tree descent over the window, heap-fetch every
//!   candidate, apply the predicate as a residual filter while rows are
//!   kept or dropped (pushdown: non-matching rows never reach the
//!   serializer);
//! * **index** — turn the predicate into a candidate row set through a
//!   secondary index (label tries, node B+-tree, sidecar scan), fetch
//!   only those rows, and intersect with the window rectangle.
//!
//! [`choose_access`] compares the index candidate count against the
//! layer's row cardinality and takes the index path when the predicate
//! is selective ([`INDEX_SELECTIVITY_DEN`]); the caller counts the
//! decision so `/v1/stats` can report the split.

use gvdb_api::{AggOp, AggregateDto, Field, HistogramDto, Predicate};
use gvdb_storage::{BufferPool, EdgeRow, LayerTable, RankSidecar, Result, RowId};

/// How a filtered query picks its access path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterMode {
    /// Cost-based: index when the candidate set is selective, scan
    /// otherwise (the serving default).
    #[default]
    Auto,
    /// Always scan-and-filter (the benchmark baseline).
    ForceScan,
    /// Always the index path when the predicate is indexable at all
    /// (falls back to scan when it is not).
    ForceIndex,
}

/// The chooser's verdict for one cold filtered window.
#[derive(Debug)]
pub enum AccessPath {
    /// Fetch exactly these candidate rows (ascending, deduplicated) and
    /// intersect with the window.
    Index(Vec<RowId>),
    /// R-tree descent over the window with a residual filter.
    Scan,
}

/// The chooser takes the index path when `candidates * DEN <= rows`,
/// i.e. at most 1/4 of the layer — below that, probing the candidate
/// rows beats descending the R-tree and fetching the whole window.
pub const INDEX_SELECTIVITY_DEN: u64 = 4;

/// A wire predicate bound to one layer's sidecar, ready to evaluate
/// against rows and nodes. Cloning is cheap (the sidecar is
/// `Arc`-backed), so a compiled filter can outlive the database read
/// guard it was built under.
#[derive(Debug, Clone)]
pub struct CompiledFilter {
    pred: Predicate,
    sidecar: RankSidecar,
}

impl CompiledFilter {
    /// Bind `pred` to a layer's sidecar (`None` for layers preprocessed
    /// before sidecars existed — every score reads as `0.0`).
    pub fn new(pred: Predicate, sidecar: Option<RankSidecar>) -> Self {
        CompiledFilter {
            pred,
            sidecar: sidecar.unwrap_or_default(),
        }
    }

    /// The predicate this filter evaluates.
    pub fn predicate(&self) -> &Predicate {
        &self.pred
    }

    /// Whether `row` survives the filter (see the module docs for the
    /// either-endpoint rule).
    pub fn matches_row(&self, row: &EdgeRow) -> bool {
        self.eval_row(&self.pred, row)
    }

    /// Whether one node (a search hit) satisfies the predicate.
    /// `edge_label_*` operators never match in node context — callers
    /// reject them up front.
    pub fn matches_node(&self, node_id: u64, label: &str, x: f64, y: f64) -> bool {
        self.eval_node(&self.pred, node_id, label, x, y)
    }

    fn score(&self, node_id: u64, field: Field) -> f64 {
        let (degree, rank) = self.sidecar.get(node_id).unwrap_or((0.0, 0.0));
        match field {
            Field::Degree => degree,
            Field::Rank => rank,
            Field::X | Field::Y => unreachable!("coordinates come from the row"),
        }
    }

    fn eval_row(&self, p: &Predicate, row: &EdgeRow) -> bool {
        match p {
            Predicate::Range { field, min, max } => {
                let (a, b) = match field {
                    Field::X => (row.geometry.x1, row.geometry.x2),
                    Field::Y => (row.geometry.y1, row.geometry.y2),
                    Field::Degree | Field::Rank => (
                        self.score(row.node1_id, *field),
                        self.score(row.node2_id, *field),
                    ),
                };
                in_range(a, min, max) || in_range(b, min, max)
            }
            Predicate::NodeLabelEq(v) => &*row.node1_label == v || &*row.node2_label == v,
            Predicate::NodeLabelPrefix(v) => {
                row.node1_label.starts_with(v.as_str()) || row.node2_label.starts_with(v.as_str())
            }
            Predicate::EdgeLabelEq(v) => &*row.edge_label == v,
            Predicate::EdgeLabelPrefix(v) => row.edge_label.starts_with(v.as_str()),
            Predicate::And(ps) => ps.iter().all(|p| self.eval_row(p, row)),
            Predicate::Or(ps) => ps.iter().any(|p| self.eval_row(p, row)),
        }
    }

    fn eval_node(&self, p: &Predicate, node_id: u64, label: &str, x: f64, y: f64) -> bool {
        match p {
            Predicate::Range { field, min, max } => {
                let v = match field {
                    Field::X => x,
                    Field::Y => y,
                    Field::Degree | Field::Rank => self.score(node_id, *field),
                };
                in_range(v, min, max)
            }
            Predicate::NodeLabelEq(v) => label == v,
            Predicate::NodeLabelPrefix(v) => label.starts_with(v.as_str()),
            Predicate::EdgeLabelEq(_) | Predicate::EdgeLabelPrefix(_) => false,
            Predicate::And(ps) => ps.iter().all(|p| self.eval_node(p, node_id, label, x, y)),
            Predicate::Or(ps) => ps.iter().any(|p| self.eval_node(p, node_id, label, x, y)),
        }
    }
}

fn in_range(v: f64, min: &Option<f64>, max: &Option<f64>) -> bool {
    min.is_none_or(|m| v >= m) && max.is_none_or(|m| v <= m)
}

/// Pick the access path for a cold filtered window (see module docs).
/// `Auto` computes the index candidate set — in-memory trie and sidecar
/// probes plus one B+-tree lookup per matched node — and scans when the
/// predicate is not indexable or not selective.
pub fn choose_access(
    table: &LayerTable,
    pool: &BufferPool,
    filter: &CompiledFilter,
    mode: FilterMode,
) -> Result<AccessPath> {
    if mode == FilterMode::ForceScan {
        return Ok(AccessPath::Scan);
    }
    let Some(mut rids) = index_candidates(table, pool, &filter.pred, &filter.sidecar)? else {
        return Ok(AccessPath::Scan);
    };
    rids.sort_unstable();
    rids.dedup();
    let selective = (rids.len() as u64).saturating_mul(INDEX_SELECTIVITY_DEN) <= table.row_count();
    if mode == FilterMode::ForceIndex || selective {
        Ok(AccessPath::Index(rids))
    } else {
        Ok(AccessPath::Scan)
    }
}

/// The candidate row set of an indexable predicate — a **superset** of
/// the rows the predicate matches, so the residual filter stays exact:
///
/// * `node_label_*` — trie probe (substring index) + one B+-tree lookup
///   per matched node;
/// * `edge_label_*` — edge-trie probe, row ids directly;
/// * `degree`/`rank` range — one sidecar scan to the matching node set,
///   then B+-tree lookups. Only indexable when the range **excludes**
///   `0.0`: nodes the sidecar never saw (edit-path inserts) score `0.0`,
///   and the candidate set must not miss them;
/// * `and` — the first indexable conjunct (the rest is residual);
/// * `or` — the union of all branches, indexable only if every branch
///   is;
/// * `x`/`y` ranges — not indexable (the R-tree already is the spatial
///   access path).
fn index_candidates(
    table: &LayerTable,
    pool: &BufferPool,
    pred: &Predicate,
    sidecar: &RankSidecar,
) -> Result<Option<Vec<RowId>>> {
    match pred {
        Predicate::Range { field, min, max } => match field {
            Field::X | Field::Y => Ok(None),
            Field::Degree | Field::Rank => {
                // A range admitting 0.0 also admits unscored nodes,
                // which no sidecar scan can enumerate.
                if !min.is_some_and(|m| m > 0.0) {
                    return Ok(None);
                }
                let mut rids = Vec::new();
                for &(id, degree, rank) in sidecar.entries() {
                    let v = if *field == Field::Degree {
                        degree
                    } else {
                        rank
                    };
                    if in_range(v, min, max) {
                        rids.extend(table.rows_of_node(pool, id)?);
                    }
                }
                Ok(Some(rids))
            }
        },
        Predicate::NodeLabelEq(v) | Predicate::NodeLabelPrefix(v) => {
            let mut rids = Vec::new();
            for id in table.search_nodes(v) {
                rids.extend(table.rows_of_node(pool, id)?);
            }
            Ok(Some(rids))
        }
        Predicate::EdgeLabelEq(v) | Predicate::EdgeLabelPrefix(v) => {
            Ok(Some(table.search_edges(v)))
        }
        Predicate::And(ps) => {
            for p in ps {
                if let Some(rids) = index_candidates(table, pool, p, sidecar)? {
                    return Ok(Some(rids));
                }
            }
            Ok(None)
        }
        Predicate::Or(ps) => {
            let mut rids = Vec::new();
            for p in ps {
                match index_candidates(table, pool, p, sidecar)? {
                    Some(mut r) => rids.append(&mut r),
                    None => return Ok(None),
                }
            }
            Ok(Some(rids))
        }
    }
}

/// Reduce a filtered window's rows into the requested aggregate.
/// `count` counts rows (edges); `min`/`max`/`histogram` reduce over the
/// **distinct nodes** of the filtered rows. An empty node set yields no
/// value and no histogram.
pub fn aggregate_rows(
    rows: &[(RowId, EdgeRow)],
    sidecar: &RankSidecar,
    agg: &AggOp,
) -> AggregateDto {
    let mut nodes: Vec<(u64, f64, f64)> = Vec::with_capacity(rows.len() * 2);
    for (_, r) in rows {
        nodes.push((r.node1_id, r.geometry.x1, r.geometry.y1));
        nodes.push((r.node2_id, r.geometry.x2, r.geometry.y2));
    }
    nodes.sort_by_key(|&(id, _, _)| id);
    nodes.dedup_by_key(|&mut (id, _, _)| id);

    let mut out = AggregateDto {
        agg: agg.clone(),
        rows: rows.len() as u64,
        nodes: nodes.len() as u64,
        value: None,
        histogram: None,
    };
    let values = |field: Field| -> Vec<f64> {
        nodes
            .iter()
            .map(|&(id, x, y)| match field {
                Field::X => x,
                Field::Y => y,
                Field::Degree | Field::Rank => {
                    let (degree, rank) = sidecar.get(id).unwrap_or((0.0, 0.0));
                    if field == Field::Degree {
                        degree
                    } else {
                        rank
                    }
                }
            })
            .collect()
    };
    match agg {
        AggOp::Count => {}
        AggOp::Min(field) => {
            out.value = values(*field).into_iter().reduce(f64::min);
        }
        AggOp::Max(field) => {
            out.value = values(*field).into_iter().reduce(f64::max);
        }
        AggOp::Histogram { field, buckets } => {
            let vals = values(*field);
            if !vals.is_empty() {
                let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let n = (*buckets).max(1);
                let width = (hi - lo) / n as f64;
                let mut counts = vec![0u64; n];
                for v in vals {
                    let idx = if width > 0.0 {
                        (((v - lo) / width) as usize).min(n - 1)
                    } else {
                        0
                    };
                    counts[idx] += 1;
                }
                out.histogram = Some(HistogramDto { lo, hi, counts });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_storage::EdgeGeometry;

    fn row(n1: u64, l1: &str, n2: u64, l2: &str, el: &str, x1: f64, y1: f64) -> EdgeRow {
        EdgeRow {
            node1_id: n1,
            node1_label: l1.into(),
            geometry: EdgeGeometry {
                x1,
                y1,
                x2: x1 + 10.0,
                y2: y1 + 10.0,
                directed: false,
            },
            edge_label: el.into(),
            node2_id: n2,
            node2_label: l2.into(),
        }
    }

    fn sidecar() -> RankSidecar {
        RankSidecar::new(vec![(1, 3.0, 0.5), (2, 1.0, 0.1), (3, 8.0, 0.9)])
    }

    #[test]
    fn either_endpoint_matches_node_predicates() {
        let f = CompiledFilter::new(Predicate::NodeLabelPrefix("alpha".into()), None);
        assert!(f.matches_row(&row(1, "alpha-1", 2, "beta-2", "e", 0.0, 0.0)));
        assert!(f.matches_row(&row(1, "beta-1", 2, "alpha-2", "e", 0.0, 0.0)));
        assert!(!f.matches_row(&row(1, "beta-1", 2, "gamma-2", "e", 0.0, 0.0)));
    }

    #[test]
    fn degree_ranges_read_the_sidecar_and_default_to_zero() {
        let f = CompiledFilter::new(
            Predicate::Range {
                field: Field::Degree,
                min: Some(2.0),
                max: None,
            },
            Some(sidecar()),
        );
        // Node 1 scores 3.0: matches through either endpoint slot.
        assert!(f.matches_row(&row(1, "a", 2, "b", "e", 0.0, 0.0)));
        // Nodes 2 (1.0) and 99 (unscored, 0.0) both miss.
        assert!(!f.matches_row(&row(2, "a", 99, "b", "e", 0.0, 0.0)));
    }

    #[test]
    fn composition_is_row_level() {
        let f = CompiledFilter::new(
            Predicate::And(vec![
                Predicate::EdgeLabelEq("cites".into()),
                Predicate::Or(vec![
                    Predicate::NodeLabelEq("x".into()),
                    Predicate::Range {
                        field: Field::X,
                        min: Some(100.0),
                        max: None,
                    },
                ]),
            ]),
            None,
        );
        assert!(f.matches_row(&row(1, "x", 2, "y", "cites", 0.0, 0.0)));
        assert!(f.matches_row(&row(1, "a", 2, "y", "cites", 150.0, 0.0)));
        assert!(!f.matches_row(&row(1, "a", 2, "y", "cites", 0.0, 0.0)));
        assert!(!f.matches_row(&row(1, "x", 2, "y", "refs", 0.0, 0.0)));
    }

    #[test]
    fn node_context_evaluates_per_node() {
        let f = CompiledFilter::new(
            Predicate::Range {
                field: Field::Rank,
                min: Some(0.4),
                max: None,
            },
            Some(sidecar()),
        );
        assert!(f.matches_node(1, "a", 0.0, 0.0));
        assert!(!f.matches_node(2, "a", 0.0, 0.0));
        // Edge operators never match a bare node.
        let f = CompiledFilter::new(Predicate::EdgeLabelEq("e".into()), None);
        assert!(!f.matches_node(1, "e", 0.0, 0.0));
    }

    #[test]
    fn aggregates_reduce_distinct_nodes() {
        let rows = vec![
            (RowId::from_u64(1), row(1, "a", 2, "b", "e", 0.0, 5.0)),
            (RowId::from_u64(2), row(2, "b", 3, "c", "e", 10.0, 7.0)),
        ];
        let sc = sidecar();
        let count = aggregate_rows(&rows, &sc, &AggOp::Count);
        assert_eq!((count.rows, count.nodes), (2, 3));
        assert_eq!(count.value, None);

        let max = aggregate_rows(&rows, &sc, &AggOp::Max(Field::Degree));
        assert_eq!(max.value, Some(8.0));
        let min = aggregate_rows(&rows, &sc, &AggOp::Min(Field::Rank));
        assert_eq!(min.value, Some(0.1));

        let hist = aggregate_rows(
            &rows,
            &sc,
            &AggOp::Histogram {
                field: Field::Degree,
                buckets: 2,
            },
        );
        let h = hist.histogram.expect("non-empty node set");
        assert_eq!((h.lo, h.hi), (1.0, 8.0));
        assert_eq!(h.counts, vec![2, 1]);

        let empty = aggregate_rows(&[], &sc, &AggOp::Min(Field::X));
        assert_eq!(empty.value, None);
        assert_eq!(empty.nodes, 0);
    }

    #[test]
    fn histogram_with_one_value_lands_in_bucket_zero() {
        let rows = vec![(RowId::from_u64(1), row(7, "a", 7, "a", "", 3.0, 3.0))];
        let out = aggregate_rows(
            &rows,
            &RankSidecar::default(),
            &AggOp::Histogram {
                field: Field::X,
                buckets: 4,
            },
        );
        let h = out.histogram.unwrap();
        assert_eq!(h.lo, h.hi);
        assert_eq!(h.counts, vec![1, 0, 0, 0]);
    }
}
