//! The simulated browser client: communication + rendering cost model.
//!
//! The paper's Fig. 3 reports "Communication + Rendering" as one series
//! because the server streams the window's sub-graph to the client in
//! small pieces, interleaving transfer with mxGraph DOM rendering. Since
//! the streamed frame protocol (`gvdb_api::ApiFrame`) made that pipeline
//! real, this model prices exactly what the wire carries: a `Header`
//! frame, one `Rows` frame per [`ClientModel::chunk_rows`] rows (each
//! paying the measured frame-envelope overhead,
//! [`gvdb_api::rows_envelope_bytes`]), and a `Trailer` frame — no
//! separately-maintained chunking math.
//!
//! Calibration (documented in `DESIGN.md` §4): at the paper's measured
//! ~2.5 s total for ~350 elements, per-element rendering must be in the
//! 5–8 ms range with transfer contributing a small linear term — DOM
//! object creation dominates, which matches mxGraph experience. Defaults
//! below use 6 ms/node, 5 ms/edge, 100 Mbit/s, 10 ms RTT, and the frame
//! layer's default batch size ([`gvdb_api::DEFAULT_CHUNK_ROWS`]).
//!
//! The model is deterministic; it *computes* times instead of sleeping, so
//! the Fig. 3 harness can sweep thousands of windows in seconds.

use crate::json::GraphJson;

/// Client/network cost model.
#[derive(Debug, Clone, Copy)]
pub struct ClientModel {
    /// One-way latency per request (ms).
    pub rtt_ms: f64,
    /// Transfer rate (bytes per ms). 100 Mbit/s ≈ 12_500 bytes/ms.
    pub bytes_per_ms: f64,
    /// Rows per streamed `Rows` frame — the same batch size the real
    /// streaming path uses (see `QueryManager::call_streamed`).
    pub chunk_rows: usize,
    /// Per-chunk processing overhead on the client (ms).
    pub per_chunk_ms: f64,
    /// DOM-object creation cost per node (ms).
    pub per_node_ms: f64,
    /// DOM-object creation cost per edge (ms).
    pub per_edge_ms: f64,
}

impl Default for ClientModel {
    fn default() -> Self {
        ClientModel {
            rtt_ms: 10.0,
            bytes_per_ms: 12_500.0,
            chunk_rows: gvdb_api::DEFAULT_CHUNK_ROWS,
            per_chunk_ms: 0.5,
            per_node_ms: 6.0,
            per_edge_ms: 5.0,
        }
    }
}

/// Simulated cost of delivering and rendering one window result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientCost {
    /// Communication + rendering in ms (reported combined, as in Fig. 3).
    pub comm_render_ms: f64,
    /// Number of streamed `Rows` frames.
    pub chunks: usize,
}

impl ClientModel {
    /// Number of `Rows` frames a payload of `rows` rows streams as (at
    /// least one — an empty window still sends its frame sequence).
    pub fn chunks_for(&self, rows: usize) -> usize {
        rows.div_ceil(self.chunk_rows.max(1)).max(1)
    }

    /// Cost of shipping `json` to the browser as a frame stream and
    /// rendering it.
    pub fn deliver(&self, json: &GraphJson) -> ClientCost {
        let chunks = self.chunks_for(json.edge_count);
        // On the wire: the payload plus each Rows frame's envelope, with
        // the Header and Trailer frames bracketing the stream priced at
        // the same (measured) envelope size.
        let bytes = json.byte_len() + (chunks + 2) * gvdb_api::rows_envelope_bytes();
        let transfer =
            self.rtt_ms + bytes as f64 / self.bytes_per_ms + chunks as f64 * self.per_chunk_ms;
        let render =
            json.node_count as f64 * self.per_node_ms + json.edge_count as f64 * self.per_edge_ms;
        ClientCost {
            comm_render_ms: transfer + render,
            chunks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(nodes: usize, edges: usize, bytes: usize) -> GraphJson {
        GraphJson {
            text: "x".repeat(bytes),
            node_count: nodes,
            edge_count: edges,
            node_spans: Vec::new(),
            edge_spans: Vec::new(),
            canonical: false,
        }
    }

    #[test]
    fn cost_scales_linearly_with_objects() {
        let m = ClientModel::default();
        let small = m.deliver(&json(10, 10, 2_000));
        let large = m.deliver(&json(100, 100, 20_000));
        // 10x objects: rendering term dominates, near-10x ratio.
        let ratio = large.comm_render_ms / small.comm_render_ms;
        assert!((5.0..15.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rendering_dominates_at_paper_scale() {
        // ~350 elements like the paper's 3000^2 Wikidata windows.
        let m = ClientModel::default();
        let cost = m.deliver(&json(200, 150, 60_000));
        let render_only = 200.0 * m.per_node_ms + 150.0 * m.per_edge_ms;
        assert!(cost.comm_render_ms > render_only);
        assert!(
            render_only / cost.comm_render_ms > 0.9,
            "transfer should be a small fraction"
        );
        // Paper magnitude check: around 2-3 seconds.
        assert!((1_000.0..4_000.0).contains(&cost.comm_render_ms));
    }

    #[test]
    fn chunk_count_follows_row_count() {
        let m = ClientModel::default();
        // Chunking is row-driven: one frame per chunk_rows edges.
        assert_eq!(m.deliver(&json(5, 0, 400)).chunks, 1);
        assert_eq!(m.deliver(&json(10, m.chunk_rows, 50_000)).chunks, 1);
        assert_eq!(m.deliver(&json(10, m.chunk_rows + 1, 50_000)).chunks, 2);
        assert_eq!(m.chunks_for(m.chunk_rows * 3), 3);
    }

    #[test]
    fn frame_envelopes_are_charged_on_the_wire() {
        // Same payload bytes, more rows => more frames => more wire bytes
        // and per-chunk overhead, so delivery costs (slightly) more even
        // with rendering held constant.
        let m = ClientModel {
            per_node_ms: 0.0,
            per_edge_ms: 0.0,
            ..Default::default()
        };
        let few_frames = m.deliver(&json(0, m.chunk_rows, 100_000));
        let many_frames = m.deliver(&json(0, m.chunk_rows * 8, 100_000));
        assert!(many_frames.chunks > few_frames.chunks);
        assert!(many_frames.comm_render_ms > few_frames.comm_render_ms);
    }

    #[test]
    fn empty_payload_costs_one_rtt() {
        let m = ClientModel::default();
        let cost = m.deliver(&json(0, 0, 2));
        assert!(cost.comm_render_ms >= m.rtt_ms);
        assert!(cost.comm_render_ms < m.rtt_ms + 2.0);
    }
}
