//! The Query Manager: translates client operations into index lookups and
//! measures each stage the way Fig. 3 reports them.
//!
//! * **DB Query Execution** — R-tree window lookup + heap fetch.
//! * **Build JSON Objects** — serializing the sub-graph for the client.
//! * **Communication + Rendering** — the simulated client pipeline.
//!
//! A sharded LRU [`crate::cache::WindowCache`] fronts
//! [`QueryManager::window_query`]: a repeated `(layer, window)` pair is
//! served from memory (counted in [`WindowResponse::cache_hit`] /
//! [`QueryManager::cache_stats`]) without touching the spatial index or
//! rebuilding JSON. Any mutable database access through
//! [`QueryManager::db_mut`] invalidates the entire cache, so edits are
//! never masked by stale entries.

use crate::cache::{CacheConfig, CacheStats, CachedWindow, WindowCache};
use crate::client::{ClientCost, ClientModel};
use crate::json::{build_graph_json, GraphJson};
use gvdb_spatial::{Point, Rect};
use gvdb_storage::{EdgeRow, GraphDb, Result, RowId, StorageError};
use std::sync::Arc;
use std::time::Instant;

/// One measured window query, stage by stage.
///
/// `rows` and `json` are `Arc`s shared with the window cache: a cache hit
/// costs two reference-count bumps, not a payload copy. Mutating
/// consumers (session filters) use `Arc::make_mut` for copy-on-write.
#[derive(Debug)]
pub struct WindowResponse {
    /// The rows in the window.
    pub rows: Arc<Vec<(RowId, EdgeRow)>>,
    /// The client payload.
    pub json: Arc<GraphJson>,
    /// DB query execution time (ms). Zero on a cache hit.
    pub db_ms: f64,
    /// JSON building time (ms). Zero on a cache hit.
    pub build_json_ms: f64,
    /// Cache lookup time (ms); on a hit this replaces `db_ms` +
    /// `build_json_ms` as the server-side cost.
    pub cache_ms: f64,
    /// Whether this response was served from the window cache.
    pub cache_hit: bool,
    /// Simulated communication + rendering cost.
    pub client: ClientCost,
}

impl WindowResponse {
    /// Total response time (ms): the Fig. 3 "Total Time" series.
    pub fn total_ms(&self) -> f64 {
        self.db_ms + self.build_json_ms + self.cache_ms + self.client.comm_render_ms
    }

    /// Server-side time only (ms): everything except the simulated
    /// client. This is the quantity the window cache shrinks.
    pub fn server_ms(&self) -> f64 {
        self.db_ms + self.build_json_ms + self.cache_ms
    }
}

/// A keyword-search hit: node id, label and plane position.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Node id within the queried layer.
    pub node_id: u64,
    /// Node label.
    pub label: String,
    /// Position on the plane (used to focus the window).
    pub position: Point,
}

/// The server-side query engine over a preprocessed database.
#[derive(Debug)]
pub struct QueryManager {
    db: GraphDb,
    client: ClientModel,
    cache: WindowCache,
}

impl QueryManager {
    /// Wrap a database with the default client model and cache.
    pub fn new(db: GraphDb) -> Self {
        QueryManager {
            db,
            client: ClientModel::default(),
            cache: WindowCache::default(),
        }
    }

    /// Wrap with an explicit client model.
    pub fn with_client(db: GraphDb, client: ClientModel) -> Self {
        QueryManager {
            db,
            client,
            cache: WindowCache::default(),
        }
    }

    /// Wrap with an explicit window-cache configuration. A zero-capacity
    /// configuration is clamped to one entry; to measure the uncached
    /// path, query distinct windows instead.
    pub fn with_cache_config(db: GraphDb, config: CacheConfig) -> Self {
        QueryManager {
            db,
            client: ClientModel::default(),
            cache: WindowCache::new(config),
        }
    }

    /// The underlying database.
    pub fn db(&self) -> &GraphDb {
        &self.db
    }

    /// Mutable database access (edit operations). Invalidates the window
    /// cache: after any mutation, no stale window may be served.
    pub fn db_mut(&mut self) -> &mut GraphDb {
        self.cache.invalidate_all();
        &mut self.db
    }

    /// Window-cache hit/miss/occupancy counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The client cost model responses are priced with.
    pub fn client_model(&self) -> &ClientModel {
        &self.client
    }

    /// Number of abstraction layers.
    pub fn layer_count(&self) -> usize {
        self.db.layer_count()
    }

    /// Interactive navigation: evaluate a window query on `layer` and
    /// measure every stage. Repeated queries for the same `(layer,
    /// window)` are served from the sharded LRU cache.
    pub fn window_query(&self, layer: usize, window: &Rect) -> Result<WindowResponse> {
        // Resolve the layer before consulting the cache so an invalid
        // layer is an error, not a counted miss.
        let table = self
            .db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;

        let t = Instant::now();
        if let Some(CachedWindow { rows, json }) = self.cache.get(layer, window) {
            // Arc handles shared with the cache entry: no payload copy.
            let cache_ms = t.elapsed().as_secs_f64() * 1e3;
            let client = self.client.deliver(&json);
            return Ok(WindowResponse {
                rows,
                json,
                db_ms: 0.0,
                build_json_ms: 0.0,
                cache_ms,
                cache_hit: true,
                client,
            });
        }
        let cache_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let rows = Arc::new(table.window(self.db.pool(), window, true)?);
        let db_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let json = Arc::new(build_graph_json(&rows));
        let build_json_ms = t.elapsed().as_secs_f64() * 1e3;

        // The cache entry shares the same Arcs as the response: inserting
        // copies nothing.
        self.cache.insert(
            layer,
            window,
            CachedWindow {
                rows: rows.clone(),
                json: json.clone(),
            },
        );

        let client = self.client.deliver(&json);
        Ok(WindowResponse {
            rows,
            json,
            db_ms,
            build_json_ms,
            cache_ms,
            cache_hit: false,
            client,
        })
    }

    /// Keyword search over node labels of `layer` (trie lookup), with
    /// positions resolved for focusing.
    pub fn keyword_search(&self, layer: usize, keyword: &str) -> Result<Vec<SearchHit>> {
        let table = self
            .db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let mut hits = Vec::new();
        for node_id in table.search_nodes(keyword) {
            if let Some((position, label)) = table.node_position(self.db.pool(), node_id)? {
                hits.push(SearchHit {
                    node_id,
                    label,
                    position,
                });
            }
        }
        Ok(hits)
    }

    /// The focus window for a search hit: a rectangle of the client's
    /// window size centered on the node (paper §II-B).
    pub fn focus_window(&self, hit: &SearchHit, width: f64, height: f64) -> Rect {
        Rect::centered(hit.position, width, height)
    }

    /// "Focus on node" mode: the node's row set (the node and its direct
    /// neighbours), bypassing the spatial index.
    pub fn focus_on_node(&self, layer: usize, node_id: u64) -> Result<Vec<(RowId, EdgeRow)>> {
        let table = self
            .db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let rids = table.rows_of_node(self.db.pool(), node_id)?;
        let mut rows = Vec::with_capacity(rids.len());
        for rid in rids {
            rows.push((rid, table.get(self.db.pool(), rid)?));
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use gvdb_graph::generators::planted_partition;

    fn manager(name: &str) -> (QueryManager, std::path::PathBuf) {
        let g = planted_partition(4, 50, 6.0, 0.5, 1);
        let mut path = std::env::temp_dir();
        path.push(format!("gvdb-qm-{name}-{}", std::process::id()));
        let (db, _) = preprocess(
            &g,
            &path,
            &PreprocessConfig {
                k: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        (QueryManager::new(db), path)
    }

    #[test]
    fn window_query_measures_all_stages() {
        let (qm, path) = manager("stages");
        let resp = qm
            .window_query(0, &Rect::new(0.0, 0.0, 1500.0, 1500.0))
            .unwrap();
        assert!(!resp.rows.is_empty());
        assert!(resp.db_ms >= 0.0);
        assert!(resp.build_json_ms >= 0.0);
        assert!(resp.client.comm_render_ms > 0.0);
        assert!(resp.total_ms() >= resp.client.comm_render_ms);
        assert_eq!(resp.json.edge_count, resp.rows.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repeated_window_is_a_cache_hit() {
        let (qm, path) = manager("cachehit");
        let w = Rect::new(0.0, 0.0, 2000.0, 2000.0);
        let first = qm.window_query(0, &w).unwrap();
        assert!(!first.cache_hit);
        let second = qm.window_query(0, &w).unwrap();
        assert!(second.cache_hit, "identical (layer, window) must hit");
        assert_eq!(second.rows, first.rows);
        assert_eq!(second.json, first.json);
        assert_eq!(second.db_ms, 0.0);
        assert!(
            second.server_ms() <= first.server_ms(),
            "hit ({:.4} ms) must not cost more than the miss ({:.4} ms)",
            second.server_ms(),
            first.server_ms()
        );
        let stats = qm.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nearby_windows_are_distinct_entries() {
        let (qm, path) = manager("cachedistinct");
        let a = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let b = Rect::new(10.0, 0.0, 1010.0, 1000.0);
        let ra = qm.window_query(0, &a).unwrap();
        let rb = qm.window_query(0, &b).unwrap();
        assert!(!ra.cache_hit && !rb.cache_hit);
        // Both repeats hit, each with its own rows.
        assert!(qm.window_query(0, &a).unwrap().cache_hit);
        assert!(qm.window_query(0, &b).unwrap().cache_hit);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn db_mut_invalidates_the_cache() {
        let (mut qm, path) = manager("cacheinval");
        let w = Rect::new(0.0, 0.0, 1500.0, 1500.0);
        let before = qm.window_query(0, &w).unwrap();
        assert!(qm.window_query(0, &w).unwrap().cache_hit);

        // Insert a row inside the window through the edit path.
        let row = gvdb_storage::EdgeRow {
            node1_id: 777_001,
            node1_label: "edit-a".into(),
            geometry: gvdb_storage::EdgeGeometry {
                x1: 10.0,
                y1: 10.0,
                x2: 20.0,
                y2: 20.0,
                directed: false,
            },
            edge_label: "edited".into(),
            node2_id: 777_002,
            node2_label: "edit-b".into(),
        };
        qm.db_mut().insert_row(0, &row).unwrap();

        let after = qm.window_query(0, &w).unwrap();
        assert!(!after.cache_hit, "edits must invalidate cached windows");
        assert_eq!(after.rows.len(), before.rows.len() + 1);
        assert!(after.rows.iter().any(|(_, r)| r.edge_label == "edited"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_layer_is_an_error() {
        let (qm, path) = manager("missing");
        assert!(matches!(
            qm.window_query(99, &Rect::new(0.0, 0.0, 1.0, 1.0)),
            Err(StorageError::LayerNotFound(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn keyword_search_focuses_on_hit() {
        let (qm, path) = manager("search");
        // planted_partition labels are c{community}-n{index}
        let hits = qm.keyword_search(0, "c2 n7").unwrap();
        assert!(!hits.is_empty());
        let w = qm.focus_window(&hits[0], 800.0, 600.0);
        assert!((w.width() - 800.0).abs() < 1e-9);
        // The focused window must contain the hit node's edges.
        let resp = qm.window_query(0, &w).unwrap();
        assert!(resp
            .rows
            .iter()
            .any(|(_, r)| r.node1_id == hits[0].node_id || r.node2_id == hits[0].node_id));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn focus_on_node_returns_neighborhood() {
        let (qm, path) = manager("focus");
        let hits = qm.keyword_search(0, "c0 n0").unwrap();
        let rows = qm.focus_on_node(0, hits[0].node_id).unwrap();
        assert!(!rows.is_empty());
        for (_, r) in &rows {
            assert!(r.node1_id == hits[0].node_id || r.node2_id == hits[0].node_id);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn higher_layers_return_fewer_objects() {
        let (qm, path) = manager("layers");
        let everything = Rect::new(-1e9, -1e9, 1e9, 1e9);
        let l0 = qm.window_query(0, &everything).unwrap();
        let top = qm.window_query(qm.layer_count() - 1, &everything).unwrap();
        assert!(top.rows.len() < l0.rows.len());
        std::fs::remove_file(&path).ok();
    }
}
