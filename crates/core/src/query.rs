//! The Query Manager: translates client operations into index lookups and
//! measures each stage the way Fig. 3 reports them.
//!
//! * **DB Query Execution** — R-tree window lookup + heap fetch.
//! * **Build JSON Objects** — serializing the sub-graph for the client.
//! * **Communication + Rendering** — the simulated client pipeline.
//!
//! A sharded LRU [`crate::cache::WindowCache`] fronts
//! [`QueryManager::window_query`] at two levels:
//!
//! * an **exact hit** — the same `(layer, window)` again — is served
//!   whole from memory ([`WindowResponse::cache_hit`]);
//! * a **partial hit** — a pan/zoom window overlapping a cached one —
//!   runs the *delta path* ([`WindowResponse::delta`]): the R-tree is
//!   descended only over the up-to-four strips of window not covered by
//!   the cached anchor ([`gvdb_spatial::Rect::difference`]), departed
//!   rows are dropped from the cached result, arriving rows are fetched
//!   with one buffer-pool pin per heap page
//!   (`gvdb_storage::LayerTable::fetch_many`), and the payload is spliced
//!   incrementally ([`GraphJson::retain`] / [`GraphJson::merge`]) instead
//!   of rebuilt. [`WindowResponse::rows_reused`] /
//!   [`WindowResponse::rows_fetched`] report the split.
//!
//! ## Shared edits and epochs
//!
//! The manager is **shared for writes too**: edits go through the
//! layer-aware [`QueryManager::insert_row`] / [`QueryManager::delete_row`]
//! (both `&self`), which take the internal [`RwLock`]'s write guard,
//! mutate the database, bump the layer's monotonically increasing **edit
//! epoch** and invalidate that layer's cached windows. Readers take the
//! read guard — so N window queries run concurrently with each other and
//! are serialized only against an in-flight edit. Every response records
//! the epoch it is consistent with ([`WindowResponse::epoch`]), and every
//! cache entry records the epoch its rows were read at; a lookup only
//! serves an entry whose epoch matches the layer's current one, so a
//! racing edit can never be masked by a stale cached or delta-merged
//! window. Raw access through [`QueryManager::db_mut`] (exclusive `&mut`)
//! or [`QueryManager::edit_db`] (shared, write-locked) cannot know the
//! target layer and therefore bumps every epoch and clears the whole
//! cache.

use crate::cache::{CacheConfig, CacheShardStats, CacheStats, CachedWindow, WindowCache};
use crate::client::{ClientCost, ClientModel};
use crate::filter::{aggregate_rows, choose_access, AccessPath, CompiledFilter, FilterMode};
use crate::json::{build_graph_json, GraphJson, GraphJsonBuilder};
use crate::registry::SessionRegistry;
use gvdb_api::{AggOp, AggregateDto, Predicate};
use gvdb_spatial::{Point, Rect};
use gvdb_storage::{EdgeRow, GraphDb, LayerTable, PoolStats, Result, RowId, StorageError};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The read guard handed out by [`QueryManager::db`]. Holding it keeps
/// edits out; drop it promptly.
pub type DbReadGuard<'a> = parking_lot::RwLockReadGuard<'a, GraphDb>;

/// Minimum fraction of a requested window that a cached window must cover
/// for the delta path to engage. Below this the strips are so large that
/// a cold query is as cheap, and the overlap bookkeeping pure overhead;
/// typical interactive pans overlap 80–95%.
pub const MIN_DELTA_OVERLAP: f64 = 0.35;

/// One measured window query, stage by stage.
///
/// `rows` and `json` are `Arc`s shared with the window cache: a cache hit
/// costs two reference-count bumps, not a payload copy. Mutating
/// consumers (session filters) use `Arc::make_mut` for copy-on-write.
#[derive(Debug)]
pub struct WindowResponse {
    /// The rows in the window.
    pub rows: Arc<Vec<(RowId, EdgeRow)>>,
    /// The client payload.
    pub json: Arc<GraphJson>,
    /// DB query execution time (ms). Zero on a cache hit.
    pub db_ms: f64,
    /// JSON building time (ms). Zero on a cache hit.
    pub build_json_ms: f64,
    /// Cache lookup time (ms); on a hit this replaces `db_ms` +
    /// `build_json_ms` as the server-side cost.
    pub cache_ms: f64,
    /// The edit epoch of the queried layer this response is consistent
    /// with: the rows reflect exactly the edits applied before the epoch
    /// reached this value, and none after (see
    /// [`QueryManager::layer_epoch`]).
    pub epoch: u64,
    /// Whether this response was served whole from the window cache.
    pub cache_hit: bool,
    /// Whether this response was assembled by the delta path: an
    /// overlapping cached window supplied the kept region and only the
    /// delta strips touched the index and heap.
    pub delta: bool,
    /// Rows taken from the overlapping cached window (or the whole
    /// result on an exact cache hit). Zero on a cold query.
    pub rows_reused: usize,
    /// Rows fetched from the heap for this response: every R-tree
    /// candidate the query actually decoded, including bounding-box
    /// matches the exact segment refinement later rejected. On the delta
    /// path this is bounded by the candidates of the delta strips.
    pub rows_fetched: usize,
    /// On the delta path, the [`RowId`]s of the rows that actually
    /// *arrived* (fetched from the heap and kept), ascending. Empty for
    /// cold queries and cache hits. The streaming path uses this to tag
    /// each sliced frame's `reused` flag: a frame whose edge-id range
    /// contains no arrival is pure kept region and can repaint without
    /// waiting for the strips.
    pub arrival_rids: Vec<RowId>,
    /// Simulated communication + rendering cost.
    pub client: ClientCost,
}

impl WindowResponse {
    /// Total response time (ms): the Fig. 3 "Total Time" series.
    pub fn total_ms(&self) -> f64 {
        self.db_ms + self.build_json_ms + self.cache_ms + self.client.comm_render_ms
    }

    /// Server-side time only (ms): everything except the simulated
    /// client. This is the quantity the window cache shrinks.
    pub fn server_ms(&self) -> f64 {
        self.db_ms + self.build_json_ms + self.cache_ms
    }
}

/// A keyword-search hit: node id, label and plane position.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Node id within the queried layer.
    pub node_id: u64,
    /// Node label.
    pub label: gvdb_storage::Label,
    /// Position on the plane (used to focus the window).
    pub position: Point,
}

/// How a streamed window query will be produced — what
/// [`QueryManager::window_stream_plan`] hands back.
pub enum StreamPlan<'a> {
    /// The payload already exists (exact cache hit, or a delta splice
    /// that just ran): slice the frames out of it by span index.
    Built(WindowResponse),
    /// Cold window: nothing is built yet. Drive
    /// [`ColdWindowStream::next_chunk`] to fetch + serialize
    /// chunk-at-a-time, then [`ColdWindowStream::finish`]. Boxed: the
    /// stream state (chunk cursor + compiled filter) dwarfs the `Built`
    /// variant, and the cold path is about to do I/O anyway.
    Cold(Box<ColdWindowStream<'a>>),
}

/// A cold window query being streamed chunk-at-a-time.
///
/// The planning step ran the R-tree descent and snapshotted the layer
/// epoch; each [`ColdWindowStream::next_chunk`] call then re-acquires
/// the database read guard just long enough to **validate the epoch**
/// and batch-fetch one chunk of candidates (page-sorted pinning via
/// `LayerTable::fetch_many`), and serializes the chunk *after dropping
/// the guard* — so the caller emits every frame with no lock held and a
/// slow client never blocks a writer.
///
/// A racing edit flips the stream to lame-duck mode rather than
/// aborting: remaining chunks still stream (an insert never moves
/// existing rows), the result is **not** cached, and the caller's
/// trailer re-samples the epoch so the client sees
/// `trailer.epoch > header.epoch` — the existing staleness contract. If
/// a fetch fails *after* the epoch moved (e.g. a candidate row was
/// deleted), the stream ends early by the same contract instead of
/// erroring.
pub struct ColdWindowStream<'a> {
    qm: &'a QueryManager,
    layer: usize,
    window: Rect,
    epoch: u64,
    candidates: Vec<RowId>,
    pos: usize,
    builder: GraphJsonBuilder,
    rows: Vec<(RowId, EdgeRow)>,
    epoch_valid: bool,
    /// Pushdown predicate: applied while chunks are kept or dropped, so
    /// filtered-out rows never reach the serializer. Filtered results
    /// are never cached ([`ColdWindowStream::finish`]).
    filter: Option<CompiledFilter>,
    /// Whether [`ColdWindowStream::finish`] may seed the window cache.
    /// Rid-range-restricted streams (the router fan-out primitive) carry
    /// partial windows that must never masquerade as the whole answer.
    cacheable: bool,
}

/// What a fully drained [`ColdWindowStream`] streamed, for the trailer.
pub struct ColdStreamSummary {
    /// Rows streamed (candidates that survived segment refinement).
    pub rows: usize,
    /// Candidates fetched from the heap (the cold `rows_fetched` stat).
    pub rows_fetched: usize,
}

impl ColdWindowStream<'_> {
    /// The epoch snapshotted at plan time — what the stream header
    /// advertises.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Candidate rows the stream will fetch (an upper bound on the rows
    /// it will emit — segment refinement can only shrink it). Progress
    /// frames use this as the total.
    pub fn candidate_rows(&self) -> usize {
        self.candidates.len()
    }

    /// Every row emitted so far, in emission order. A frame returned by
    /// [`ColdWindowStream::next_chunk`] covers `edge_range` indexes of
    /// this slice — what the packed-frame encoder reads to re-derive the
    /// frame's content from rows instead of re-parsing its JSON.
    pub fn rows_so_far(&self) -> &[(RowId, EdgeRow)] {
        &self.rows
    }

    /// Fetch and serialize the next non-empty chunk: at most
    /// `chunk_rows` candidates are heap-fetched under the read guard,
    /// refined against the window, and appended to the incremental
    /// payload; the returned frame slices exactly the appended rows.
    /// `None` once every candidate has been consumed. Chunks whose
    /// candidates all fail refinement are skipped, so a returned frame
    /// always carries at least one edge.
    pub fn next_chunk(&mut self, chunk_rows: usize) -> Result<Option<crate::json::GraphFrame>> {
        let chunk = chunk_rows.max(1);
        while self.pos < self.candidates.len() {
            let end = (self.pos + chunk).min(self.candidates.len());
            let slice = &self.candidates[self.pos..end];
            let db = self.qm.db.read();
            if self.qm.layer_epoch(self.layer) != self.epoch {
                self.epoch_valid = false;
            }
            let table = db
                .layer(self.layer)
                .ok_or_else(|| StorageError::LayerNotFound(format!("index {}", self.layer)))?;
            let fetched = match table.fetch_many(db.pool(), slice) {
                Ok(rows) => rows,
                Err(_) if !self.epoch_valid => {
                    // The edit that moved the epoch invalidated these
                    // candidates; end the stream, the trailer epoch
                    // tells the client to re-query.
                    self.pos = self.candidates.len();
                    return Ok(None);
                }
                Err(e) => return Err(e),
            };
            drop(db);
            self.pos = end;
            let mut kept: Vec<(RowId, EdgeRow)> = fetched
                .into_iter()
                .filter(|(_, row)| {
                    row.geometry.segment().intersects_rect(&self.window)
                        && self.filter.as_ref().is_none_or(|f| f.matches_row(row))
                })
                .collect();
            if kept.is_empty() {
                continue;
            }
            self.builder.push_rows(&kept);
            self.rows.append(&mut kept);
            return Ok(Some(self.builder.take_frame().expect("non-empty chunk")));
        }
        Ok(None)
    }

    /// Finalize the stream: assemble the full payload from the chunks
    /// already serialized (no second pass) and — when no edit raced the
    /// stream — insert it into the window cache exactly like a buffered
    /// cold query would, so the *next* request for this window is a hit
    /// or a delta base. Filtered streams are never cached: the cache
    /// holds only unfiltered windows, which every predicate then filters
    /// on top of. Returns the trailer counts.
    pub fn finish(self) -> ColdStreamSummary {
        let rows_fetched = self.candidates.len();
        let rows = Arc::new(self.rows);
        let summary = ColdStreamSummary {
            rows: rows.len(),
            rows_fetched,
        };
        if !self.epoch_valid || self.filter.is_some() || !self.cacheable {
            return summary;
        }
        let json = Arc::new(self.builder.finish());
        let (rids, node_refs) = if self.qm.cache.min_delta_overlap() <= 1.0 {
            (
                rows.iter().map(|(rid, _)| *rid).collect(),
                CachedWindow::count_node_refs(&rows),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        self.qm.cache.insert(
            self.layer,
            &self.window,
            self.epoch,
            CachedWindow {
                node_refs: Arc::new(node_refs),
                rids: Arc::new(rids),
                rows,
                json,
            },
        );
        summary
    }
}

/// The server-side query engine over a preprocessed database.
///
/// Shared by reference between any number of reader threads *and*
/// writers: reads take the internal lock's read guard, edits its write
/// guard (see the module docs for the epoch protocol).
#[derive(Debug)]
pub struct QueryManager {
    db: RwLock<GraphDb>,
    /// Per-layer edit epochs. Grown on demand; guarded by its own tiny
    /// lock, always acquired *after* `db` (readers: `db.read()` then
    /// `epochs.read()`; writers: `db.write()` then `epochs.write()`), so
    /// the pair can never deadlock.
    epochs: RwLock<Vec<u64>>,
    client: ClientModel,
    cache: WindowCache,
    /// Registered client sessions (delta-pan anchoring over stateless
    /// protocols). Owned per manager, so a multi-dataset workspace gets
    /// per-dataset session registries for free.
    sessions: SessionRegistry,
    /// Access-path chooser decisions: cold filtered windows served
    /// through a secondary index…
    chooser_index: AtomicU64,
    /// …and through scan-and-filter (`/v1/stats` reports the split).
    chooser_scan: AtomicU64,
    /// Per-layer epochs sampled inside the last flush (under the `db`
    /// write lock, so exactly consistent with the checkpoint written).
    /// These ride in the checkpoint's metadata blob and are what a
    /// leader advertises as the replication position of that
    /// checkpoint. Empty until the first flush of this process.
    last_flush_epochs: RwLock<Vec<u64>>,
}

impl QueryManager {
    /// Wrap a database with the default client model and cache.
    pub fn new(db: GraphDb) -> Self {
        Self::build(db, ClientModel::default(), WindowCache::default())
    }

    /// Wrap with an explicit client model.
    pub fn with_client(db: GraphDb, client: ClientModel) -> Self {
        Self::build(db, client, WindowCache::default())
    }

    /// Wrap with an explicit window-cache configuration. A zero-capacity
    /// configuration is clamped to one entry; to measure the uncached
    /// path, query distinct windows instead.
    pub fn with_cache_config(db: GraphDb, config: CacheConfig) -> Self {
        Self::build(db, ClientModel::default(), WindowCache::new(config))
    }

    fn build(db: GraphDb, client: ClientModel, cache: WindowCache) -> Self {
        let epochs = vec![0u64; db.layer_count()];
        QueryManager {
            db: RwLock::new(db),
            epochs: RwLock::new(epochs),
            client,
            cache,
            sessions: SessionRegistry::new(),
            chooser_index: AtomicU64::new(0),
            chooser_scan: AtomicU64::new(0),
            last_flush_epochs: RwLock::new(Vec::new()),
        }
    }

    /// This manager's session registry (see [`SessionRegistry`]): clients
    /// that want anchored delta pans register here and tag their window
    /// requests with the returned id.
    pub fn sessions(&self) -> &SessionRegistry {
        &self.sessions
    }

    /// Shared read access to the underlying database. The guard blocks
    /// writers while held — take it once per batch of lookups and drop
    /// it, rather than calling `db()` repeatedly in one expression.
    pub fn db(&self) -> DbReadGuard<'_> {
        self.db.read()
    }

    /// Exclusive mutable database access (requires `&mut self`, so no
    /// reader can exist concurrently). Invalidates the **whole** window
    /// cache and bumps **every** layer's epoch — raw access cannot know
    /// which layer will be mutated. Edits that know their layer should go
    /// through [`QueryManager::insert_row`] / [`QueryManager::delete_row`],
    /// which are `&self` and invalidate only that layer.
    pub fn db_mut(&mut self) -> &mut GraphDb {
        self.cache.invalidate_all();
        let db = self.db.get_mut();
        Self::bump_all_epochs(&self.epochs, db.layer_count());
        db
    }

    /// Bump every layer's epoch (growing the table to `layer_count`):
    /// the raw-access invalidation step shared by [`QueryManager::db_mut`]
    /// and [`QueryManager::edit_db`]. Called with exclusive database
    /// access (the `&mut` borrow or the write guard).
    fn bump_all_epochs(epochs: &RwLock<Vec<u64>>, layer_count: usize) {
        let mut epochs = epochs.write();
        let len = epochs.len().max(layer_count);
        epochs.resize(len, 0);
        for e in epochs.iter_mut() {
            *e += 1;
        }
    }

    /// Shared-reference equivalent of [`QueryManager::db_mut`]: run `f`
    /// under the write lock (readers drained and blocked for the
    /// duration), then bump every epoch and clear the cache. Prefer the
    /// layer-scoped edit methods when the mutated layer is known.
    pub fn edit_db<R>(&self, f: impl FnOnce(&mut GraphDb) -> R) -> R {
        let mut db = self.db.write();
        let out = f(&mut db);
        Self::bump_all_epochs(&self.epochs, db.layer_count());
        self.cache.invalidate_all();
        out
    }

    /// Edit path: insert a row into `layer`, invalidating only that
    /// layer's cached windows and bumping only its epoch. Cached windows
    /// of other layers stay warm — each layer is an independent table, so
    /// they can never serve stale rows for this edit. Concurrent readers
    /// are blocked only for the duration of the row insert itself.
    pub fn insert_row(&self, layer: usize, row: &EdgeRow) -> Result<RowId> {
        let mut db = self.db.write();
        let rid = db.insert_row(layer, row)?;
        self.bump_epoch(layer);
        self.cache.invalidate_layer(layer);
        Ok(rid)
    }

    /// Edit path: delete a row from `layer`, invalidating only that
    /// layer's cached windows (see [`QueryManager::insert_row`]).
    pub fn delete_row(&self, layer: usize, rid: RowId) -> Result<()> {
        let mut db = self.db.write();
        db.delete_row(layer, rid)?;
        self.bump_epoch(layer);
        self.cache.invalidate_layer(layer);
        Ok(())
    }

    /// The current edit epoch of `layer`: incremented once per completed
    /// edit on that layer (never-edited layers are at 0). A
    /// [`WindowResponse`] whose [`WindowResponse::epoch`] equals this
    /// value is consistent with the layer's latest state.
    pub fn layer_epoch(&self, layer: usize) -> u64 {
        self.epochs.read().get(layer).copied().unwrap_or(0)
    }

    /// Increment `layer`'s epoch (called with the `db` write guard held).
    fn bump_epoch(&self, layer: usize) {
        let mut epochs = self.epochs.write();
        if layer >= epochs.len() {
            epochs.resize(layer + 1, 0);
        }
        epochs[layer] += 1;
    }

    /// Durability hook: checkpoint and fsync the database to disk (the
    /// `/v1/flush` operation), returning the number of dirty pages
    /// written back. Takes the write lock for the duration — readers
    /// drain first and queue behind — but bumps **no** epoch and clears
    /// **no** cache: a flush persists already-applied edits without
    /// changing any visible row, so every cached window stays exact.
    ///
    /// The per-layer epochs are sampled under the same write lock and
    /// written into the checkpoint's metadata blob, so the checkpoint
    /// carries its exact replication position: a follower that applies
    /// it sets its epochs to these values and its answers become
    /// bounded-staleness — every row consistent with exactly
    /// `1..=epoch` of the leader's edits per layer.
    pub fn flush(&self) -> Result<usize> {
        let mut db = self.db.write();
        let mut epochs = self.epochs.read().clone();
        if epochs.len() < db.layer_count() {
            epochs.resize(db.layer_count(), 0);
        }
        let flushed = db.flush_with_meta(&encode_epoch_meta(&epochs))?;
        *self.last_flush_epochs.write() = epochs;
        Ok(flushed)
    }

    /// Consistent full-database snapshot for replication resync:
    /// checkpoint and read back the database file under **one** hold of
    /// the write lock, so the returned bytes are exactly the committed
    /// state of the returned `(seq, epochs)` — concurrent edits (whose
    /// evicted dirty pages would otherwise tear a plain file read) are
    /// fenced out for the duration. Returns `(seq, epochs, bytes)`.
    pub fn snapshot_bytes(&self) -> Result<(u64, Vec<u64>, Vec<u8>)> {
        let mut db = self.db.write();
        let mut epochs = self.epochs.read().clone();
        if epochs.len() < db.layer_count() {
            epochs.resize(db.layer_count(), 0);
        }
        db.flush_with_meta(&encode_epoch_meta(&epochs))?;
        *self.last_flush_epochs.write() = epochs.clone();
        let bytes = std::fs::read(db.path())?;
        Ok((db.checkpoint_seq(), epochs, bytes))
    }

    /// Sequence number of the last committed checkpoint (the leader's
    /// shipping position; 0 = never flushed).
    pub fn checkpoint_seq(&self) -> u64 {
        self.db.read().checkpoint_seq()
    }

    /// Path of the backing database file (what the replication layer
    /// reads checkpoint archives and snapshots from).
    pub fn db_path(&self) -> std::path::PathBuf {
        self.db.read().path().to_path_buf()
    }

    /// The per-layer epochs recorded by the last [`QueryManager::flush`]
    /// of this process (empty before the first). These — not the live
    /// epochs — are the replication position of the durable state.
    pub fn last_flush_epochs(&self) -> Vec<u64> {
        self.last_flush_epochs.read().clone()
    }

    /// Overwrite every layer's epoch with `values` and drop the whole
    /// window cache. The follower apply path: shipped checkpoints carry
    /// the leader's flush-time epochs, and a replica *sets* (never
    /// bumps) its epochs so they are positions in the leader's edit
    /// history — the trailer-epoch contract then reports exactly how
    /// stale a replica's answer is.
    pub fn set_epochs(&self, values: &[u64]) {
        {
            let mut epochs = self.epochs.write();
            epochs.clear();
            epochs.extend_from_slice(values);
        }
        self.cache.invalidate_all();
    }

    /// Apply a shipped checkpoint image atomically: CRC-verify and
    /// decode it, write it as the local **active WAL**, and reopen the
    /// database in place — the ordinary crash-recovery path replays the
    /// committed checkpoint, and a crash anywhere in between leaves a
    /// torn WAL that the next open discards (the previous complete
    /// checkpoint keeps being served). On success the layer epochs are
    /// set to the leader's flush-time values from the checkpoint
    /// metadata and the window cache is dropped. Returns the applied
    /// `(seq, epochs)`.
    pub fn apply_checkpoint(&self, bytes: &[u8]) -> Result<(u64, Vec<u64>)> {
        let cp = gvdb_storage::wal::decode_checkpoint(bytes)
            .ok_or_else(|| StorageError::Corrupt("shipped checkpoint torn or corrupt".into()))?;
        let epochs = decode_epoch_meta(&cp.meta);
        let mut db = self.db.write();
        let path = db.path().to_path_buf();
        let cache_pages = db.pool().capacity();
        gvdb_storage::wal::write_shipped(&path, bytes)?;
        *db = GraphDb::open_with_cache(&path, cache_pages)?;
        let seq = db.checkpoint_seq();
        {
            // Lock order db-then-epochs, same as every writer.
            let mut e = self.epochs.write();
            e.clear();
            e.extend_from_slice(&epochs);
            let want = e.len().max(db.layer_count());
            e.resize(want, 0);
        }
        self.cache.invalidate_all();
        drop(db);
        Ok((seq, epochs))
    }

    /// Full resync: replace the backing database file with a shipped
    /// snapshot and reopen, setting the epochs to the leader's
    /// flush-time values. The write lock fences out every reader for
    /// the duration. Returns the snapshot's checkpoint seq.
    pub fn replace_db_file(&self, bytes: &[u8], epochs: &[u64]) -> Result<u64> {
        let mut db = self.db.write();
        let path = db.path().to_path_buf();
        let cache_pages = db.pool().capacity();
        std::fs::write(&path, bytes)?;
        gvdb_storage::wal::remove(&path)?;
        *db = GraphDb::open_with_cache(&path, cache_pages)?;
        let seq = db.checkpoint_seq();
        {
            let mut e = self.epochs.write();
            e.clear();
            e.extend_from_slice(epochs);
            let want = e.len().max(db.layer_count());
            e.resize(want, 0);
        }
        self.cache.invalidate_all();
        drop(db);
        Ok(seq)
    }

    /// Window-cache hit/miss/occupancy counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-shard window-cache occupancy (see
    /// [`WindowCache::shard_stats`]).
    pub fn cache_shard_stats(&self) -> Vec<CacheShardStats> {
        self.cache.shard_stats()
    }

    /// Buffer-pool counters (page pins served from memory vs disk) —
    /// difference two snapshots around a query to see what it cost in
    /// page accesses.
    pub fn pool_stats(&self) -> PoolStats {
        self.db.read().pool().stats().snapshot()
    }

    /// Per-shard buffer-pool counters (index = pool shard); sums to
    /// [`QueryManager::pool_stats`].
    pub fn pool_shard_stats(&self) -> Vec<PoolStats> {
        self.db.read().pool().shard_stats()
    }

    /// The client cost model responses are priced with.
    pub fn client_model(&self) -> &ClientModel {
        &self.client
    }

    /// Number of abstraction layers.
    pub fn layer_count(&self) -> usize {
        self.db.read().layer_count()
    }

    /// Every layer's current edit epoch (length = layer count; layers
    /// never edited report 0). On a replica these are the applied
    /// replication position — see [`QueryManager::set_epochs`].
    pub fn epochs(&self) -> Vec<u64> {
        let count = self.db.read().layer_count();
        let epochs = self.epochs.read();
        (0..count.max(epochs.len()))
            .map(|i| epochs.get(i).copied().unwrap_or(0))
            .collect()
    }

    /// Interactive navigation: evaluate a window query on `layer` and
    /// measure every stage. Repeated queries for the same `(layer,
    /// window)` are served whole from the sharded LRU cache; windows
    /// overlapping a cached one by at least [`MIN_DELTA_OVERLAP`] run the
    /// delta path (see [`QueryManager::window_query_anchored`]).
    pub fn window_query(&self, layer: usize, window: &Rect) -> Result<WindowResponse> {
        self.window_query_anchored(layer, window, None)
    }

    /// [`QueryManager::window_query`] with an explicit delta anchor: a
    /// session that just panned or zoomed passes its *previous* window,
    /// and if that exact window is still cached with enough overlap it is
    /// used as the delta base without scanning the cache for overlap
    /// candidates. Without an anchor (or when the anchor is gone or
    /// barely overlaps) the cache is scanned for the best overlapping
    /// entry instead, so anonymous repeat traffic gets the same benefit.
    pub fn window_query_anchored(
        &self,
        layer: usize,
        window: &Rect,
        anchor: Option<&Rect>,
    ) -> Result<WindowResponse> {
        // The read guard is held for the whole query: edits are fenced
        // out, so the epoch loaded below is exact for everything this
        // query reads, caches and returns.
        let db = self.db.read();
        // Resolve the layer before consulting the cache so an invalid
        // layer is an error, not a counted miss.
        let table = db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let epoch = self.layer_epoch(layer);

        let t = Instant::now();
        if let Some(CachedWindow { rows, json, .. }) = self.cache.get(layer, window, epoch) {
            // Arc handles shared with the cache entry: no payload copy.
            let cache_ms = t.elapsed().as_secs_f64() * 1e3;
            let rows_reused = rows.len();
            let client = self.client.deliver(&json);
            return Ok(WindowResponse {
                rows,
                json,
                db_ms: 0.0,
                build_json_ms: 0.0,
                cache_ms,
                epoch,
                cache_hit: true,
                delta: false,
                rows_reused,
                rows_fetched: 0,
                arrival_rids: Vec::new(),
                client,
            });
        }
        // Partial hit: prefer the caller's anchor if it is still cached
        // and covers enough of the new window; otherwise scan for the
        // best overlapping entry. Both probes are epoch-checked, so an
        // anchor from before an edit can never seed the delta path.
        let base = self
            .anchored_base(layer, window, epoch, anchor)
            .or_else(|| {
                self.cache
                    .best_overlap(layer, window, epoch, self.cache.min_delta_overlap())
            });
        let cache_ms = t.elapsed().as_secs_f64() * 1e3;

        match base {
            Some((old_rect, old)) => {
                self.delta_window_query(&db, table, layer, epoch, window, &old_rect, &old, cache_ms)
            }
            None => self.cold_window_query(&db, table, layer, epoch, window, cache_ms),
        }
    }

    /// Plan a **streamed** window query: probe the cache and delta paths
    /// exactly like [`QueryManager::window_query_anchored`], but when the
    /// window is cold, return a [`ColdWindowStream`] instead of computing
    /// everything up front — the caller then drives
    /// [`ColdWindowStream::next_chunk`] to fetch, serialize, and emit the
    /// result chunk-at-a-time, with the first frame leaving before the
    /// second chunk's pages pin. Hit and delta windows come back
    /// [`StreamPlan::Built`]: their payload already exists (shared Arc or
    /// one splice), and the caller slices frames out of it by span index
    /// ([`GraphJson::frame_slices`]) without re-serializing.
    pub fn window_stream_plan(
        &self,
        layer: usize,
        window: &Rect,
        anchor: Option<&Rect>,
    ) -> Result<StreamPlan<'_>> {
        let db = self.db.read();
        let table = db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let epoch = self.layer_epoch(layer);

        let t = Instant::now();
        if let Some(CachedWindow { rows, json, .. }) = self.cache.get(layer, window, epoch) {
            let cache_ms = t.elapsed().as_secs_f64() * 1e3;
            let rows_reused = rows.len();
            let client = self.client.deliver(&json);
            return Ok(StreamPlan::Built(WindowResponse {
                rows,
                json,
                db_ms: 0.0,
                build_json_ms: 0.0,
                cache_ms,
                epoch,
                cache_hit: true,
                delta: false,
                rows_reused,
                rows_fetched: 0,
                arrival_rids: Vec::new(),
                client,
            }));
        }
        let base = self
            .anchored_base(layer, window, epoch, anchor)
            .or_else(|| {
                self.cache
                    .best_overlap(layer, window, epoch, self.cache.min_delta_overlap())
            });
        let cache_ms = t.elapsed().as_secs_f64() * 1e3;
        if let Some((old_rect, old)) = base {
            return self
                .delta_window_query(&db, table, layer, epoch, window, &old_rect, &old, cache_ms)
                .map(StreamPlan::Built);
        }

        // Cold: only the R-tree descent runs under this read guard. The
        // candidate list is sorted ascending so the chunked heap fetch
        // visits pages in order and every chunk's page set is disjoint
        // from every other chunk's.
        let mut candidates = table.window_rids(db.pool(), window)?;
        candidates.sort_unstable();
        candidates.dedup();
        drop(db);
        let builder = GraphJsonBuilder::with_capacity(candidates.len() * 96);
        Ok(StreamPlan::Cold(Box::new(ColdWindowStream {
            qm: self,
            layer,
            window: *window,
            epoch,
            candidates,
            pos: 0,
            builder,
            rows: Vec::new(),
            epoch_valid: true,
            filter: None,
            cacheable: true,
        })))
    }

    /// [`QueryManager::window_query_anchored`] with a pushdown
    /// predicate. The cache stays **unfiltered**: an exact hit or a
    /// delta splice produces the unfiltered window first (sharing or
    /// seeding cache entries exactly like the plain path), then the
    /// predicate drops rows before the payload is built; a cold window
    /// goes through the access-path chooser ([`crate::filter`]) and is
    /// not cached at all. The response's `rows`/`json` hold only the
    /// surviving rows.
    pub fn window_query_filtered(
        &self,
        layer: usize,
        window: &Rect,
        anchor: Option<&Rect>,
        pred: &Predicate,
        mode: FilterMode,
    ) -> Result<WindowResponse> {
        let db = self.db.read();
        let table = db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let epoch = self.layer_epoch(layer);
        let filter = CompiledFilter::new(pred.clone(), table.sidecar().cloned());

        let t = Instant::now();
        if let Some(CachedWindow { rows, .. }) = self.cache.get(layer, window, epoch) {
            let cache_ms = t.elapsed().as_secs_f64() * 1e3;
            return Ok(self.filter_built(&filter, &rows, epoch, cache_ms, true, false, 0, &[]));
        }
        let base = self
            .anchored_base(layer, window, epoch, anchor)
            .or_else(|| {
                self.cache
                    .best_overlap(layer, window, epoch, self.cache.min_delta_overlap())
            });
        let cache_ms = t.elapsed().as_secs_f64() * 1e3;
        if let Some((old_rect, old)) = base {
            // The unfiltered delta runs (and re-caches) first; the
            // filter then applies on top of its row set.
            let resp = self
                .delta_window_query(&db, table, layer, epoch, window, &old_rect, &old, cache_ms)?;
            return Ok(self.filter_built(
                &filter,
                &resp.rows,
                epoch,
                resp.cache_ms,
                false,
                true,
                resp.rows_fetched,
                &resp.arrival_rids,
            ));
        }

        // Cold: the chooser picks index-probe vs scan-and-filter.
        let t = Instant::now();
        let candidates = self.filtered_candidates(&db, table, window, &filter, mode)?;
        let rows_fetched = candidates.len();
        let mut rows = table.fetch_many(db.pool(), &candidates)?;
        rows.retain(|(_, row)| {
            row.geometry.segment().intersects_rect(window) && filter.matches_row(row)
        });
        let rows = Arc::new(rows);
        let db_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let json = Arc::new(build_graph_json(&rows));
        let build_json_ms = t.elapsed().as_secs_f64() * 1e3;
        let client = self.client.deliver(&json);
        Ok(WindowResponse {
            rows,
            json,
            db_ms,
            build_json_ms,
            cache_ms,
            epoch,
            cache_hit: false,
            delta: false,
            rows_reused: 0,
            rows_fetched,
            arrival_rids: Vec::new(),
            client,
        })
    }

    /// Streamed twin of [`QueryManager::window_query_filtered`]: hit and
    /// delta windows come back [`StreamPlan::Built`] holding only the
    /// surviving rows; a cold window returns a [`ColdWindowStream`] with
    /// the predicate pushed into its chunk loop (and caching disabled).
    pub fn window_stream_plan_filtered(
        &self,
        layer: usize,
        window: &Rect,
        anchor: Option<&Rect>,
        pred: &Predicate,
        mode: FilterMode,
    ) -> Result<StreamPlan<'_>> {
        let db = self.db.read();
        let table = db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let epoch = self.layer_epoch(layer);
        let filter = CompiledFilter::new(pred.clone(), table.sidecar().cloned());

        let t = Instant::now();
        if let Some(CachedWindow { rows, .. }) = self.cache.get(layer, window, epoch) {
            let cache_ms = t.elapsed().as_secs_f64() * 1e3;
            return Ok(StreamPlan::Built(self.filter_built(
                &filter,
                &rows,
                epoch,
                cache_ms,
                true,
                false,
                0,
                &[],
            )));
        }
        let base = self
            .anchored_base(layer, window, epoch, anchor)
            .or_else(|| {
                self.cache
                    .best_overlap(layer, window, epoch, self.cache.min_delta_overlap())
            });
        let cache_ms = t.elapsed().as_secs_f64() * 1e3;
        if let Some((old_rect, old)) = base {
            let resp = self
                .delta_window_query(&db, table, layer, epoch, window, &old_rect, &old, cache_ms)?;
            return Ok(StreamPlan::Built(self.filter_built(
                &filter,
                &resp.rows,
                epoch,
                resp.cache_ms,
                false,
                true,
                resp.rows_fetched,
                &resp.arrival_rids,
            )));
        }

        let candidates = self.filtered_candidates(&db, table, window, &filter, mode)?;
        drop(db);
        let builder = GraphJsonBuilder::with_capacity(candidates.len() * 96);
        Ok(StreamPlan::Cold(Box::new(ColdWindowStream {
            qm: self,
            layer,
            window: *window,
            epoch,
            candidates,
            pos: 0,
            builder,
            rows: Vec::new(),
            epoch_valid: true,
            filter: Some(filter),
            cacheable: true,
        })))
    }

    /// Streamed rid-range window: the shard-side half of the router's
    /// fan-out/merge. Plans a **cold** stream over only the candidates
    /// whose [`RowId`] falls in `lo..=hi` — cache and delta paths are
    /// bypassed entirely (the range restriction is an internal fan-out
    /// primitive, not an interactive query) and the result is never
    /// cached. Candidates are sorted ascending, so the emitted row
    /// stream is ascending by rid; concatenating the streams of
    /// disjoint adjacent ranges reproduces the unrestricted stream's
    /// row order exactly.
    pub fn window_stream_plan_range(
        &self,
        layer: usize,
        window: &Rect,
        lo: u64,
        hi: u64,
    ) -> Result<StreamPlan<'_>> {
        let db = self.db.read();
        let table = db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let epoch = self.layer_epoch(layer);
        let mut candidates = table.window_rids(db.pool(), window)?;
        drop(db);
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|rid| {
            let v = rid.to_u64();
            lo <= v && v <= hi
        });
        let builder = GraphJsonBuilder::with_capacity(candidates.len() * 96);
        Ok(StreamPlan::Cold(Box::new(ColdWindowStream {
            qm: self,
            layer,
            window: *window,
            epoch,
            candidates,
            pos: 0,
            builder,
            rows: Vec::new(),
            epoch_valid: true,
            filter: None,
            cacheable: false,
        })))
    }

    /// Buffered rid-range window: the rows of `window` whose [`RowId`]
    /// falls in `lo..=hi`, ascending by rid, with the epoch they were
    /// read at. Same refinement pipeline as the cold window path (R-tree
    /// candidates, page-sorted heap fetch, exact segment-vs-rect test);
    /// bypasses the cache in both directions.
    pub fn window_rows_range(
        &self,
        layer: usize,
        window: &Rect,
        lo: u64,
        hi: u64,
    ) -> Result<(u64, Vec<(RowId, EdgeRow)>)> {
        let db = self.db.read();
        let table = db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let epoch = self.layer_epoch(layer);
        let mut candidates = table.window_rids(db.pool(), window)?;
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|rid| {
            let v = rid.to_u64();
            lo <= v && v <= hi
        });
        let mut rows = table.fetch_many(db.pool(), &candidates)?;
        rows.retain(|(_, row)| row.geometry.segment().intersects_rect(window));
        Ok((epoch, rows))
    }

    /// Highest [`RowId`] present in `layer` (as `to_u64`; 0 when empty).
    /// A router splits `[0, rid_max]` into per-shard ranges — O(rows)
    /// via a whole-plane R-tree descent, acceptable for the rare
    /// `list_layers` call that feeds shard-map construction.
    pub fn layer_rid_max(&self, layer: usize) -> Result<u64> {
        let db = self.db.read();
        let table = db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let everything = Rect::new(f64::MIN, f64::MIN, f64::MAX, f64::MAX);
        let rids = table.window_rids(db.pool(), &everything)?;
        Ok(rids.iter().map(|r| r.to_u64()).max().unwrap_or(0))
    }

    /// Window aggregation: reduce the (optionally filtered) window to
    /// one [`AggregateDto`]. Serves rows from an exact unfiltered cache
    /// hit when one exists, otherwise runs the cold path (with the
    /// chooser when a predicate is present); nothing is cached. Returns
    /// the layer epoch the rows were read at.
    pub fn aggregate_window(
        &self,
        layer: usize,
        window: &Rect,
        pred: Option<&Predicate>,
        agg: &AggOp,
        mode: FilterMode,
    ) -> Result<(AggregateDto, u64)> {
        let db = self.db.read();
        let table = db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let epoch = self.layer_epoch(layer);
        let sidecar = table.sidecar().cloned().unwrap_or_default();
        let filter = pred.map(|p| CompiledFilter::new(p.clone(), Some(sidecar.clone())));

        let mut rows: Vec<(RowId, EdgeRow)> = match self.cache.get(layer, window, epoch) {
            Some(CachedWindow { rows, .. }) => rows.to_vec(),
            None => {
                let candidates = match &filter {
                    Some(f) => self.filtered_candidates(&db, table, window, f, mode)?,
                    None => {
                        let mut rids = table.window_rids(db.pool(), window)?;
                        rids.sort_unstable();
                        rids.dedup();
                        rids
                    }
                };
                table.fetch_many(db.pool(), &candidates)?
            }
        };
        rows.retain(|(_, row)| {
            row.geometry.segment().intersects_rect(window)
                && filter.as_ref().is_none_or(|f| f.matches_row(row))
        });
        Ok((aggregate_rows(&rows, &sidecar, agg), epoch))
    }

    /// Cold filtered candidates: run the chooser, count its decision,
    /// and return an ascending deduplicated rid list (index probe or
    /// R-tree window descent).
    fn filtered_candidates(
        &self,
        db: &GraphDb,
        table: &LayerTable,
        window: &Rect,
        filter: &CompiledFilter,
        mode: FilterMode,
    ) -> Result<Vec<RowId>> {
        match choose_access(table, db.pool(), filter, mode)? {
            AccessPath::Index(rids) => {
                self.chooser_index.fetch_add(1, Ordering::Relaxed);
                Ok(rids)
            }
            AccessPath::Scan => {
                self.chooser_scan.fetch_add(1, Ordering::Relaxed);
                let mut rids = table.window_rids(db.pool(), window)?;
                rids.sort_unstable();
                rids.dedup();
                Ok(rids)
            }
        }
    }

    /// Filter an already-built (cached or delta-spliced) row set and
    /// rebuild the payload over the survivors. The filtered payload is
    /// canonical (freshly built), so packed streaming still applies.
    /// `arrivals` carries the unfiltered delta's arrival rids; only the
    /// ones that survive the filter tag the response.
    #[allow(clippy::too_many_arguments)]
    fn filter_built(
        &self,
        filter: &CompiledFilter,
        rows: &[(RowId, EdgeRow)],
        epoch: u64,
        cache_ms: f64,
        cache_hit: bool,
        delta: bool,
        rows_fetched: usize,
        arrivals: &[RowId],
    ) -> WindowResponse {
        let t = Instant::now();
        let kept: Vec<(RowId, EdgeRow)> = rows
            .iter()
            .filter(|(_, row)| filter.matches_row(row))
            .cloned()
            .collect();
        // Spliced row sets are not rid-sorted, so membership goes
        // through a sorted copy of the surviving rids.
        let mut kept_rids: Vec<RowId> = kept.iter().map(|(rid, _)| *rid).collect();
        kept_rids.sort_unstable();
        let arrival_rids: Vec<RowId> = arrivals
            .iter()
            .copied()
            .filter(|r| kept_rids.binary_search(r).is_ok())
            .collect();
        let rows_reused = kept.len() - arrival_rids.len();
        let kept = Arc::new(kept);
        let db_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let json = Arc::new(build_graph_json(&kept));
        let build_json_ms = t.elapsed().as_secs_f64() * 1e3;
        let client = self.client.deliver(&json);
        WindowResponse {
            rows: kept,
            json,
            db_ms,
            build_json_ms,
            cache_ms,
            epoch,
            cache_hit,
            delta,
            rows_reused,
            rows_fetched,
            arrival_rids,
            client,
        }
    }

    /// Chooser decision counters since startup: `(index-path, scan-path)`
    /// cold filtered windows.
    pub fn chooser_counts(&self) -> (u64, u64) {
        (
            self.chooser_index.load(Ordering::Relaxed),
            self.chooser_scan.load(Ordering::Relaxed),
        )
    }

    /// The caller-supplied anchor as a delta base, if its entry survives
    /// in the cache at the current `epoch` and covers at least
    /// [`MIN_DELTA_OVERLAP`] of `window`.
    fn anchored_base(
        &self,
        layer: usize,
        window: &Rect,
        epoch: u64,
        anchor: Option<&Rect>,
    ) -> Option<(Rect, CachedWindow)> {
        let a = anchor?;
        let area = window.area();
        if area <= 0.0 || a.intersection_area(window) / area < self.cache.min_delta_overlap() {
            return None;
        }
        let value = self.cache.peek(layer, a, epoch)?;
        self.cache.count_partial_hit();
        Some((*a, value))
    }

    /// The uncached path: full R-tree descent + batched heap fetch + full
    /// JSON build.
    #[allow(clippy::too_many_arguments)]
    fn cold_window_query(
        &self,
        db: &GraphDb,
        table: &LayerTable,
        layer: usize,
        epoch: u64,
        window: &Rect,
        cache_ms: f64,
    ) -> Result<WindowResponse> {
        let t = Instant::now();
        let candidates = table.window_rids(db.pool(), window)?;
        let rows_fetched = candidates.len();
        let mut rows = table.fetch_many(db.pool(), &candidates)?;
        rows.retain(|(_, row)| row.geometry.segment().intersects_rect(window));
        let rows = Arc::new(rows);
        let db_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let json = Arc::new(build_graph_json(&rows));
        let build_json_ms = t.elapsed().as_secs_f64() * 1e3;

        // The cache entry shares the same Arcs as the response: inserting
        // copies nothing. The rid column and node-reference index seed
        // future delta queries anchored on this window — skipped when the
        // delta path is disabled ([`CacheConfig::min_delta_overlap`] above
        // 1.0, the benchmark baseline), so the baseline pays no
        // incremental-engine bookkeeping.
        let (rids, node_refs) = if self.cache.min_delta_overlap() <= 1.0 {
            (
                rows.iter().map(|(rid, _)| *rid).collect(),
                CachedWindow::count_node_refs(&rows),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        self.cache.insert(
            layer,
            window,
            epoch,
            CachedWindow {
                node_refs: Arc::new(node_refs),
                rids: Arc::new(rids),
                rows: rows.clone(),
                json: json.clone(),
            },
        );

        let client = self.client.deliver(&json);
        Ok(WindowResponse {
            rows,
            json,
            db_ms,
            build_json_ms,
            cache_ms,
            epoch,
            cache_hit: false,
            delta: false,
            rows_reused: 0,
            rows_fetched,
            arrival_rids: Vec::new(),
            client,
        })
    }

    /// The delta path: assemble `window`'s result from an overlapping
    /// cached window instead of re-running the full query. Every
    /// *per-row* expensive step (index descent, heap fetch, row decode,
    /// serialization, hashing) runs only over the rows that changed; the
    /// surviving majority is moved by clone-of-`Arc` and `memcpy`.
    ///
    /// 1. **Departures** — a cached row can only leave if its segment
    ///    touches the departed region, so the R-tree is descended over
    ///    the `old \ new` strips ([`Rect::difference`]) and only those
    ///    candidates are re-tested against the new window. Everything
    ///    else is kept *without being looked at*.
    /// 2. **Arrivals** — a row intersecting the new window but absent
    ///    from the cached result must cross a `new \ old` strip;
    ///    candidates there (minus rows already cached, by binary search)
    ///    are heap-fetched in one batched page-sorted pass
    ///    (`LayerTable::fetch_many`) and refined against the full window.
    /// 3. **Merge** — cached-minus-departed and fetched rows two-way
    ///    merge in ascending [`RowId`] order (all inputs already are),
    ///    making the result row-for-row identical to a cold query.
    /// 4. **Splice** — the cached window's node-reference index is
    ///    updated by the departure/arrival counts, yielding the orphaned
    ///    nodes directly; the payload is then spliced with
    ///    [`GraphJson::retain`] (drop departed edges + orphaned nodes)
    ///    and [`GraphJson::merge`] (splice in the fetched rows'
    ///    fragments, deduplicating nodes), all by indexed `memcpy`.
    #[allow(clippy::too_many_arguments)]
    fn delta_window_query(
        &self,
        db: &GraphDb,
        table: &LayerTable,
        layer: usize,
        epoch: u64,
        window: &Rect,
        old_rect: &Rect,
        old: &CachedWindow,
        cache_ms: f64,
    ) -> Result<WindowResponse> {
        let pool = db.pool();
        let t = Instant::now();

        // One R-tree descent over the whole change ring: the `old \ new`
        // strips (where cached rows can depart) together with the
        // `new \ old` strips (where rows can arrive). Tree pages shared
        // by several strips are pinned and scanned once.
        let arrival_strips = window.difference(old_rect);
        let mut ring = old_rect.difference(window);
        ring.extend_from_slice(&arrival_strips);
        let candidates = table.window_candidates_multi(pool, &ring)?;

        // Classify every ring candidate in one pass against the cached
        // rid column (both ascending):
        //
        // * **cached** → departure test: the row leaves iff its segment
        //   no longer intersects the new window (bbox miss short-cuts the
        //   test). Cached rows outside the ring are kept *without being
        //   looked at*.
        // * **not cached, bbox touching an arrival strip** → fetch
        //   candidate. (A ring candidate only near the departed strips
        //   cannot enter the window: it would already be cached if it
        //   did.)
        let mut departed: Vec<usize> = Vec::new();
        let mut strip_rids: Vec<RowId> = Vec::new();
        let mut oi = 0usize;
        for (bbox, rid) in &candidates {
            while oi < old.rids.len() && old.rids[oi] < *rid {
                oi += 1;
            }
            if oi < old.rids.len() && old.rids[oi] == *rid {
                if !bbox.intersects(window)
                    || !old.rows[oi].1.geometry.segment().intersects_rect(window)
                {
                    departed.push(oi);
                }
            } else if arrival_strips.iter().any(|s| bbox.intersects(s)) {
                strip_rids.push(*rid);
            }
        }
        // Arrivals: batch-fetched and refined against the full window.
        let rows_fetched = strip_rids.len();
        let mut fetched = table.fetch_many(pool, &strip_rids)?;
        fetched.retain(|(_, row)| row.geometry.segment().intersects_rect(window));
        let arrival_rids: Vec<RowId> = fetched.iter().map(|(rid, _)| *rid).collect();

        // Nothing departed and nothing arrived: the result is
        // row-for-row the anchor's. Share its Arcs outright — a
        // sub-quantum pan or a re-centering costs no row or payload work
        // at all.
        if departed.is_empty() && fetched.is_empty() {
            let db_ms = t.elapsed().as_secs_f64() * 1e3;
            self.cache.insert(layer, window, epoch, old.clone());
            let rows_reused = old.rows.len();
            let client = self.client.deliver(&old.json);
            return Ok(WindowResponse {
                rows: old.rows.clone(),
                json: old.json.clone(),
                db_ms,
                build_json_ms: 0.0,
                cache_ms,
                epoch,
                cache_hit: false,
                delta: true,
                rows_reused,
                rows_fetched,
                arrival_rids: Vec::new(),
                client,
            });
        }

        // 3. Merge rows: copy the cached rows skipping departures,
        //    splicing arrivals in RowId position (all ascending). Kept
        //    rows are cloned in maximal runs between events, so the
        //    common case is chunked slice clones rather than per-row
        //    branching.
        let capacity = old.rows.len() - departed.len() + fetched.len();
        let mut rows: Vec<(RowId, EdgeRow)> = Vec::with_capacity(capacity);
        let mut gone = departed.iter().peekable();
        let mut arriving = fetched.iter().peekable();
        let mut run = 0usize;
        let flush = |upto: usize, rows: &mut Vec<(RowId, EdgeRow)>, run: &mut usize| {
            rows.extend_from_slice(&old.rows[*run..upto]);
            *run = upto;
        };
        // Monotonic cursor for arrival insert positions: arrivals come in
        // ascending RowId order, so the scan never backtracks and the
        // whole merge stays O(rows) even with many departures.
        let mut aj = 0usize;
        loop {
            let next_gone = gone.peek().map(|&&i| i);
            // Find where the next arrival slots into the kept sequence.
            let next_arrival_pos = arriving.peek().map(|(frid, _)| {
                aj = aj.max(run);
                while aj < old.rows.len() && old.rows[aj].0 < *frid {
                    aj += 1;
                }
                aj
            });
            match (next_gone, next_arrival_pos) {
                (Some(g), Some(a)) if g < a => {
                    flush(g, &mut rows, &mut run);
                    run = g + 1;
                    gone.next();
                }
                (_, Some(a)) => {
                    flush(a, &mut rows, &mut run);
                    rows.push(arriving.next().expect("peeked").clone());
                }
                (Some(g), None) => {
                    flush(g, &mut rows, &mut run);
                    run = g + 1;
                    gone.next();
                }
                (None, None) => {
                    flush(old.rows.len(), &mut rows, &mut run);
                    break;
                }
            }
        }
        let rids: Vec<RowId> = rows.iter().map(|(rid, _)| *rid).collect();
        let rows_reused = rows.len() - fetched.len();
        let rows = Arc::new(rows);
        let db_ms = t.elapsed().as_secs_f64() * 1e3;

        // 4. Splice JSON. The node-reference update surfaces orphaned
        //    nodes in O(changed rows); the drop lists come out ascending
        //    because `departed` and the index are.
        let t = Instant::now();
        let mut ref_changes: Vec<(u64, i64)> =
            Vec::with_capacity(2 * (fetched.len() + departed.len()));
        for (_, row) in &fetched {
            ref_changes.push((row.node1_id, 1));
            ref_changes.push((row.node2_id, 1));
        }
        for &i in &departed {
            let row = &old.rows[i].1;
            ref_changes.push((row.node1_id, -1));
            ref_changes.push((row.node2_id, -1));
        }
        ref_changes.sort_unstable();
        let (node_refs, dropped_nodes, added_nodes) =
            apply_ref_changes(&old.node_refs, &ref_changes);
        let drop_edges: Vec<u64> = departed.iter().map(|&i| old.rows[i].0.to_u64()).collect();

        let add = build_graph_json(&fetched);
        let json = Arc::new(
            old.json
                .splice(&drop_edges, &dropped_nodes, &add, &added_nodes),
        );
        let build_json_ms = t.elapsed().as_secs_f64() * 1e3;

        self.cache.insert(
            layer,
            window,
            epoch,
            CachedWindow {
                rows: rows.clone(),
                rids: Arc::new(rids),
                json: json.clone(),
                node_refs: Arc::new(node_refs),
            },
        );

        let client = self.client.deliver(&json);
        Ok(WindowResponse {
            rows,
            json,
            db_ms,
            build_json_ms,
            cache_ms,
            epoch,
            cache_hit: false,
            delta: true,
            rows_reused,
            rows_fetched,
            arrival_rids,
            client,
        })
    }

    /// Keyword search over node labels of `layer` (trie lookup), with
    /// positions resolved for focusing.
    pub fn keyword_search(&self, layer: usize, keyword: &str) -> Result<Vec<SearchHit>> {
        self.keyword_search_filtered(layer, keyword, None)
    }

    /// [`QueryManager::keyword_search`] with an optional node-level
    /// predicate: hits are dropped unless the node satisfies it
    /// (coordinates from the node's position, degree/rank from the
    /// sidecar). Edge-label operators never match in node context —
    /// callers reject those predicates up front.
    pub fn keyword_search_filtered(
        &self,
        layer: usize,
        keyword: &str,
        pred: Option<&Predicate>,
    ) -> Result<Vec<SearchHit>> {
        let db = self.db.read();
        let table = db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let filter = pred.map(|p| CompiledFilter::new(p.clone(), table.sidecar().cloned()));
        let mut hits = Vec::new();
        for node_id in table.search_nodes(keyword) {
            if let Some((position, label)) = table.node_position(db.pool(), node_id)? {
                if filter
                    .as_ref()
                    .is_none_or(|f| f.matches_node(node_id, &label, position.x, position.y))
                {
                    hits.push(SearchHit {
                        node_id,
                        label,
                        position,
                    });
                }
            }
        }
        Ok(hits)
    }

    /// The focus window for a search hit: a rectangle of the client's
    /// window size centered on the node (paper §II-B).
    pub fn focus_window(&self, hit: &SearchHit, width: f64, height: f64) -> Rect {
        Rect::centered(hit.position, width, height)
    }

    /// "Focus on node" mode: the node's row set (the node and its direct
    /// neighbours), bypassing the spatial index.
    pub fn focus_on_node(&self, layer: usize, node_id: u64) -> Result<Vec<(RowId, EdgeRow)>> {
        let db = self.db.read();
        let table = db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let rids = table.rows_of_node(db.pool(), node_id)?;
        let mut rows = Vec::with_capacity(rids.len());
        for rid in rids {
            rows.push((rid, table.get(db.pool(), rid)?));
        }
        Ok(rows)
    }
}

/// Apply sorted `(node id, ±1)` reference changes to a sorted
/// node-reference index (see [`CachedWindow::node_refs`]). Returns the
/// updated index, the node ids whose count reached zero (the nodes a pan
/// orphaned — what the splice drops) and the ids that appeared (what
/// [`GraphJson::splice`] splices in). All outputs are ascending.
/// O(index + changes), no hashing.
#[allow(clippy::type_complexity)]
fn apply_ref_changes(
    old: &[(u64, u32)],
    changes: &[(u64, i64)],
) -> (Vec<(u64, u32)>, Vec<u64>, Vec<u64>) {
    let mut out = Vec::with_capacity(old.len() + changes.len());
    let mut dropped = Vec::new();
    let mut added = Vec::new();
    let (mut oi, mut ci) = (0usize, 0usize);
    while oi < old.len() || ci < changes.len() {
        let oid = old.get(oi).map(|o| o.0);
        let cid = changes.get(ci).map(|c| c.0);
        match (oid, cid) {
            (Some(a), Some(b)) if a < b => {
                out.push(old[oi]);
                oi += 1;
            }
            (Some(a), Some(b)) if a == b => {
                let mut delta = 0i64;
                while ci < changes.len() && changes[ci].0 == b {
                    delta += changes[ci].1;
                    ci += 1;
                }
                let count = old[oi].1 as i64 + delta;
                oi += 1;
                if count > 0 {
                    out.push((a, count as u32));
                } else {
                    debug_assert_eq!(count, 0, "reference count went negative");
                    dropped.push(a);
                }
            }
            (_, Some(b)) => {
                // Absent from the old index: must be net-new arrivals.
                let mut delta = 0i64;
                while ci < changes.len() && changes[ci].0 == b {
                    delta += changes[ci].1;
                    ci += 1;
                }
                debug_assert!(delta >= 0, "negative change for unindexed node");
                if delta > 0 {
                    out.push((b, delta as u32));
                    added.push(b);
                }
            }
            (Some(_), None) => {
                out.push(old[oi]);
                oi += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    (out, dropped, added)
}

/// Encode per-layer edit epochs into checkpoint metadata: a `u32` layer
/// count followed by one little-endian `u64` per layer. The storage layer
/// treats this as opaque bytes; only the core encodes and decodes it, so
/// epochs ride inside shipped checkpoints without the WAL format knowing
/// what a layer is.
pub fn encode_epoch_meta(epochs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + epochs.len() * 8);
    out.extend_from_slice(&(epochs.len() as u32).to_le_bytes());
    for e in epochs {
        out.extend_from_slice(&e.to_le_bytes());
    }
    out
}

/// Decode checkpoint metadata written by [`encode_epoch_meta`]. Lenient:
/// anything short, truncated, or from a pre-replication checkpoint (empty
/// meta) decodes to an empty vector, which callers treat as "all zero".
pub fn decode_epoch_meta(bytes: &[u8]) -> Vec<u64> {
    if bytes.len() < 4 {
        return Vec::new();
    }
    let count = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    if bytes.len() < 4 + count * 8 {
        return Vec::new();
    }
    (0..count)
        .map(|i| {
            let at = 4 + i * 8;
            u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use gvdb_graph::generators::planted_partition;

    fn manager(name: &str) -> (QueryManager, std::path::PathBuf) {
        let g = planted_partition(4, 50, 6.0, 0.5, 1);
        let mut path = std::env::temp_dir();
        path.push(format!("gvdb-qm-{name}-{}", std::process::id()));
        let (db, _) = preprocess(
            &g,
            &path,
            &PreprocessConfig {
                k: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        (QueryManager::new(db), path)
    }

    #[test]
    fn window_query_measures_all_stages() {
        let (qm, path) = manager("stages");
        let resp = qm
            .window_query(0, &Rect::new(0.0, 0.0, 1500.0, 1500.0))
            .unwrap();
        assert!(!resp.rows.is_empty());
        assert!(resp.db_ms >= 0.0);
        assert!(resp.build_json_ms >= 0.0);
        assert!(resp.client.comm_render_ms > 0.0);
        assert!(resp.total_ms() >= resp.client.comm_render_ms);
        assert_eq!(resp.json.edge_count, resp.rows.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repeated_window_is_a_cache_hit() {
        let (qm, path) = manager("cachehit");
        let w = Rect::new(0.0, 0.0, 2000.0, 2000.0);
        let first = qm.window_query(0, &w).unwrap();
        assert!(!first.cache_hit);
        let second = qm.window_query(0, &w).unwrap();
        assert!(second.cache_hit, "identical (layer, window) must hit");
        assert_eq!(second.rows, first.rows);
        assert_eq!(second.json, first.json);
        assert_eq!(second.db_ms, 0.0);
        assert!(
            second.server_ms() <= first.server_ms(),
            "hit ({:.4} ms) must not cost more than the miss ({:.4} ms)",
            second.server_ms(),
            first.server_ms()
        );
        let stats = qm.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nearby_windows_are_distinct_entries() {
        let (qm, path) = manager("cachedistinct");
        let a = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let b = Rect::new(10.0, 0.0, 1010.0, 1000.0);
        let ra = qm.window_query(0, &a).unwrap();
        let rb = qm.window_query(0, &b).unwrap();
        assert!(!ra.cache_hit && !rb.cache_hit);
        // Both repeats hit, each with its own rows.
        assert!(qm.window_query(0, &a).unwrap().cache_hit);
        assert!(qm.window_query(0, &b).unwrap().cache_hit);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn db_mut_invalidates_the_cache() {
        let (mut qm, path) = manager("cacheinval");
        let w = Rect::new(0.0, 0.0, 1500.0, 1500.0);
        let before = qm.window_query(0, &w).unwrap();
        assert!(qm.window_query(0, &w).unwrap().cache_hit);

        // Insert a row inside the window through the edit path.
        let row = gvdb_storage::EdgeRow {
            node1_id: 777_001,
            node1_label: "edit-a".into(),
            geometry: gvdb_storage::EdgeGeometry {
                x1: 10.0,
                y1: 10.0,
                x2: 20.0,
                y2: 20.0,
                directed: false,
            },
            edge_label: "edited".into(),
            node2_id: 777_002,
            node2_label: "edit-b".into(),
        };
        qm.db_mut().insert_row(0, &row).unwrap();

        let after = qm.window_query(0, &w).unwrap();
        assert!(!after.cache_hit, "edits must invalidate cached windows");
        assert_eq!(after.rows.len(), before.rows.len() + 1);
        assert!(after.rows.iter().any(|(_, r)| &*r.edge_label == "edited"));
        std::fs::remove_file(&path).ok();
    }

    /// Ground truth for a window, straight off the table (no cache).
    fn cold_rows(qm: &QueryManager, layer: usize, w: &Rect) -> Vec<(RowId, EdgeRow)> {
        let db = qm.db();
        db.layer(layer).unwrap().window(db.pool(), w, true).unwrap()
    }

    #[test]
    fn pan_runs_delta_path_and_matches_cold() {
        let (qm, path) = manager("deltapan");
        let w1 = Rect::new(0.0, 0.0, 2000.0, 2000.0);
        let first = qm.window_query(0, &w1).unwrap();
        assert!(!first.delta && !first.cache_hit);
        assert!(first.rows_fetched > 0 && first.rows_reused == 0);

        // 80%-overlap pan to the right.
        let w2 = Rect::new(400.0, 0.0, 2400.0, 2000.0);
        let resp = qm.window_query(0, &w2).unwrap();
        assert!(resp.delta, "overlapping pan must take the delta path");
        assert!(!resp.cache_hit);
        assert!(
            resp.rows_fetched < first.rows_fetched,
            "delta fetched {} rows, cold fetched {}",
            resp.rows_fetched,
            first.rows_fetched
        );
        assert!(resp.rows_reused > 0);
        assert_eq!(*resp.rows, cold_rows(&qm, 0, &w2), "row-for-row identical");
        assert_eq!(resp.json.edge_count, resp.rows.len());
        assert_eq!(qm.cache_stats().partial_hits, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zoom_out_delta_covers_the_ring() {
        let (qm, path) = manager("deltazoom");
        let inner = Rect::new(500.0, 500.0, 2000.0, 2000.0);
        qm.window_query(0, &inner).unwrap();
        // Zoom out around the same center: old window covers 56% of new.
        let outer = Rect::new(250.0, 250.0, 2250.0, 2250.0);
        let resp = qm.window_query(0, &outer).unwrap();
        assert!(resp.delta);
        assert_eq!(*resp.rows, cold_rows(&qm, 0, &outer));
        // Zoom back in: pure subset, nothing to fetch.
        let resp = qm.window_query(0, &inner).unwrap();
        assert!(resp.cache_hit, "inner window still cached exactly");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shrink_window_delta_fetches_nothing() {
        let (qm, path) = manager("deltashrink");
        let big = Rect::new(0.0, 0.0, 2500.0, 2500.0);
        qm.window_query(0, &big).unwrap();
        // A zoom-in strictly inside the cached window: all rows kept or
        // dropped, no strips at all.
        let small = Rect::new(300.0, 300.0, 2200.0, 2200.0);
        let resp = qm.window_query(0, &small).unwrap();
        assert!(resp.delta);
        assert_eq!(resp.rows_fetched, 0, "subset pan needs no heap access");
        assert_eq!(*resp.rows, cold_rows(&qm, 0, &small));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disjoint_window_stays_cold() {
        let (qm, path) = manager("deltacold");
        qm.window_query(0, &Rect::new(0.0, 0.0, 1000.0, 1000.0))
            .unwrap();
        let far = Rect::new(5000.0, 5000.0, 6000.0, 6000.0);
        let resp = qm.window_query(0, &far).unwrap();
        assert!(!resp.delta && !resp.cache_hit);
        assert_eq!(qm.cache_stats().partial_hits, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn anchored_query_prefers_the_anchor() {
        let (qm, path) = manager("anchored");
        let w1 = Rect::new(0.0, 0.0, 1800.0, 1800.0);
        qm.window_query(0, &w1).unwrap();
        let w2 = Rect::new(300.0, 200.0, 2100.0, 2000.0);
        let resp = qm.window_query_anchored(0, &w2, Some(&w1)).unwrap();
        assert!(resp.delta);
        assert_eq!(*resp.rows, cold_rows(&qm, 0, &w2));
        assert_eq!(qm.cache_stats().partial_hits, 1);
        // An anchor that was never cached falls back gracefully.
        let w3 = Rect::new(350.0, 250.0, 2150.0, 2050.0);
        let ghost = Rect::new(9e6, 9e6, 9.1e6, 9.1e6);
        let resp = qm.window_query_anchored(0, &w3, Some(&ghost)).unwrap();
        assert_eq!(*resp.rows, cold_rows(&qm, 0, &w3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn layer_scoped_edit_invalidates_only_that_layer() {
        let (qm, path) = manager("layerinval");
        let w = Rect::new(0.0, 0.0, 1500.0, 1500.0);
        let l0_before = qm.window_query(0, &w).unwrap();
        qm.window_query(1, &w).unwrap();

        let row = gvdb_storage::EdgeRow {
            node1_id: 888_001,
            node1_label: "scoped-a".into(),
            geometry: gvdb_storage::EdgeGeometry {
                x1: 100.0,
                y1: 100.0,
                x2: 200.0,
                y2: 200.0,
                directed: false,
            },
            edge_label: "scoped-edit".into(),
            node2_id: 888_002,
            node2_label: "scoped-b".into(),
        };
        let rid = qm.insert_row(0, &row).unwrap();

        // The edit is never masked on the edited layer...
        let l0_after = qm.window_query(0, &w).unwrap();
        assert!(!l0_after.cache_hit, "layer-0 windows must be invalidated");
        assert_eq!(l0_after.rows.len(), l0_before.rows.len() + 1);
        assert!(l0_after
            .rows
            .iter()
            .any(|(_, r)| &*r.edge_label == "scoped-edit"));
        // ...while the other layer's cached window survives untouched.
        assert!(
            qm.window_query(1, &w).unwrap().cache_hit,
            "cross-layer entries must survive a scoped edit"
        );

        // Scoped delete behaves the same way.
        qm.delete_row(0, rid).unwrap();
        let l0_deleted = qm.window_query(0, &w).unwrap();
        assert!(!l0_deleted.cache_hit);
        assert_eq!(l0_deleted.rows.len(), l0_before.rows.len());
        assert!(qm.window_query(1, &w).unwrap().cache_hit);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delta_after_scoped_edit_sees_the_edit() {
        // A delta query anchored on a pre-edit window must never happen:
        // the edit drops every cached window of the layer, so the next
        // query is cold and correct.
        let (qm, path) = manager("deltaedit");
        let w1 = Rect::new(0.0, 0.0, 2000.0, 2000.0);
        qm.window_query(0, &w1).unwrap();
        let row = gvdb_storage::EdgeRow {
            node1_id: 777_101,
            node1_label: "post-edit".into(),
            geometry: gvdb_storage::EdgeGeometry {
                x1: 2100.0,
                y1: 1000.0,
                x2: 2200.0,
                y2: 1000.0,
                directed: false,
            },
            edge_label: "fresh".into(),
            node2_id: 777_102,
            node2_label: "post-edit-b".into(),
        };
        qm.insert_row(0, &row).unwrap();
        // Pan toward the inserted row; w2 overlaps w1 by 80%.
        let w2 = Rect::new(400.0, 0.0, 2400.0, 2000.0);
        let resp = qm.window_query(0, &w2).unwrap();
        assert!(!resp.delta, "no stale anchor may survive the edit");
        assert!(resp.rows.iter().any(|(_, r)| &*r.edge_label == "fresh"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn epochs_advance_per_layer_and_tag_responses() {
        let (qm, path) = manager("epochs");
        let w = Rect::new(0.0, 0.0, 1500.0, 1500.0);
        assert_eq!(qm.layer_epoch(0), 0);
        let r0 = qm.window_query(0, &w).unwrap();
        assert_eq!(r0.epoch, 0, "pre-edit responses are at epoch 0");

        let row = gvdb_storage::EdgeRow {
            node1_id: 555_001,
            node1_label: "epoch-a".into(),
            geometry: gvdb_storage::EdgeGeometry {
                x1: 5.0,
                y1: 5.0,
                x2: 15.0,
                y2: 15.0,
                directed: false,
            },
            edge_label: "epoch-edit".into(),
            node2_id: 555_002,
            node2_label: "epoch-b".into(),
        };
        let rid = qm.insert_row(0, &row).unwrap();
        assert_eq!(qm.layer_epoch(0), 1, "insert bumps the edited layer");
        assert_eq!(qm.layer_epoch(1), 0, "other layers are untouched");

        let r1 = qm.window_query(0, &w).unwrap();
        assert_eq!(r1.epoch, 1, "post-edit responses carry the new epoch");
        assert!(!r1.cache_hit);
        assert_eq!(r1.rows.len(), r0.rows.len() + 1);

        qm.delete_row(0, rid).unwrap();
        assert_eq!(qm.layer_epoch(0), 2, "delete bumps too");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edit_db_bumps_every_layer() {
        let (qm, path) = manager("editdb");
        let w = Rect::new(0.0, 0.0, 1500.0, 1500.0);
        qm.window_query(0, &w).unwrap();
        qm.window_query(1, &w).unwrap();
        let flushed = qm.edit_db(|db| db.flush());
        flushed.unwrap();
        assert_eq!(qm.layer_epoch(0), 1);
        assert_eq!(qm.layer_epoch(1), 1);
        // Whole cache invalidated: both layers re-query cold.
        assert!(!qm.window_query(0, &w).unwrap().cache_hit);
        assert!(!qm.window_query(1, &w).unwrap().cache_hit);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_layer_is_an_error() {
        let (qm, path) = manager("missing");
        assert!(matches!(
            qm.window_query(99, &Rect::new(0.0, 0.0, 1.0, 1.0)),
            Err(StorageError::LayerNotFound(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn keyword_search_focuses_on_hit() {
        let (qm, path) = manager("search");
        // planted_partition labels are c{community}-n{index}
        let hits = qm.keyword_search(0, "c2 n7").unwrap();
        assert!(!hits.is_empty());
        let w = qm.focus_window(&hits[0], 800.0, 600.0);
        assert!((w.width() - 800.0).abs() < 1e-9);
        // The focused window must contain the hit node's edges.
        let resp = qm.window_query(0, &w).unwrap();
        assert!(resp
            .rows
            .iter()
            .any(|(_, r)| r.node1_id == hits[0].node_id || r.node2_id == hits[0].node_id));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn focus_on_node_returns_neighborhood() {
        let (qm, path) = manager("focus");
        let hits = qm.keyword_search(0, "c0 n0").unwrap();
        let rows = qm.focus_on_node(0, hits[0].node_id).unwrap();
        assert!(!rows.is_empty());
        for (_, r) in &rows {
            assert!(r.node1_id == hits[0].node_id || r.node2_id == hits[0].node_id);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn higher_layers_return_fewer_objects() {
        let (qm, path) = manager("layers");
        let everything = Rect::new(-1e9, -1e9, 1e9, 1e9);
        let l0 = qm.window_query(0, &everything).unwrap();
        let top = qm.window_query(qm.layer_count() - 1, &everything).unwrap();
        assert!(top.rows.len() < l0.rows.len());
        std::fs::remove_file(&path).ok();
    }
}
