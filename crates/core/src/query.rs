//! The Query Manager: translates client operations into index lookups and
//! measures each stage the way Fig. 3 reports them.
//!
//! * **DB Query Execution** — R-tree window lookup + heap fetch.
//! * **Build JSON Objects** — serializing the sub-graph for the client.
//! * **Communication + Rendering** — the simulated client pipeline.

use crate::client::{ClientCost, ClientModel};
use crate::json::{build_graph_json, GraphJson};
use gvdb_spatial::{Point, Rect};
use gvdb_storage::{EdgeRow, GraphDb, Result, RowId, StorageError};
use std::time::Instant;

/// One measured window query, stage by stage.
#[derive(Debug)]
pub struct WindowResponse {
    /// The rows in the window.
    pub rows: Vec<(RowId, EdgeRow)>,
    /// The client payload.
    pub json: GraphJson,
    /// DB query execution time (ms).
    pub db_ms: f64,
    /// JSON building time (ms).
    pub build_json_ms: f64,
    /// Simulated communication + rendering cost.
    pub client: ClientCost,
}

impl WindowResponse {
    /// Total response time (ms): the Fig. 3 "Total Time" series.
    pub fn total_ms(&self) -> f64 {
        self.db_ms + self.build_json_ms + self.client.comm_render_ms
    }
}

/// A keyword-search hit: node id, label and plane position.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Node id within the queried layer.
    pub node_id: u64,
    /// Node label.
    pub label: String,
    /// Position on the plane (used to focus the window).
    pub position: Point,
}

/// The server-side query engine over a preprocessed database.
#[derive(Debug)]
pub struct QueryManager {
    db: GraphDb,
    client: ClientModel,
}

impl QueryManager {
    /// Wrap a database with the default client model.
    pub fn new(db: GraphDb) -> Self {
        QueryManager {
            db,
            client: ClientModel::default(),
        }
    }

    /// Wrap with an explicit client model.
    pub fn with_client(db: GraphDb, client: ClientModel) -> Self {
        QueryManager { db, client }
    }

    /// The underlying database.
    pub fn db(&self) -> &GraphDb {
        &self.db
    }

    /// Mutable database access (edit operations).
    pub fn db_mut(&mut self) -> &mut GraphDb {
        &mut self.db
    }

    /// Number of abstraction layers.
    pub fn layer_count(&self) -> usize {
        self.db.layer_count()
    }

    /// Interactive navigation: evaluate a window query on `layer` and
    /// measure every stage.
    pub fn window_query(&self, layer: usize, window: &Rect) -> Result<WindowResponse> {
        let table = self
            .db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let t = Instant::now();
        let rows = table.window(self.db.pool(), window, true)?;
        let db_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let json = build_graph_json(&rows);
        let build_json_ms = t.elapsed().as_secs_f64() * 1e3;

        let client = self.client.deliver(&json);
        Ok(WindowResponse {
            rows,
            json,
            db_ms,
            build_json_ms,
            client,
        })
    }

    /// Keyword search over node labels of `layer` (trie lookup), with
    /// positions resolved for focusing.
    pub fn keyword_search(&self, layer: usize, keyword: &str) -> Result<Vec<SearchHit>> {
        let table = self
            .db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let mut hits = Vec::new();
        for node_id in table.search_nodes(keyword) {
            if let Some((position, label)) = table.node_position(self.db.pool(), node_id)? {
                hits.push(SearchHit {
                    node_id,
                    label,
                    position,
                });
            }
        }
        Ok(hits)
    }

    /// The focus window for a search hit: a rectangle of the client's
    /// window size centered on the node (paper §II-B).
    pub fn focus_window(&self, hit: &SearchHit, width: f64, height: f64) -> Rect {
        Rect::centered(hit.position, width, height)
    }

    /// "Focus on node" mode: the node's row set (the node and its direct
    /// neighbours), bypassing the spatial index.
    pub fn focus_on_node(&self, layer: usize, node_id: u64) -> Result<Vec<(RowId, EdgeRow)>> {
        let table = self
            .db
            .layer(layer)
            .ok_or_else(|| StorageError::LayerNotFound(format!("index {layer}")))?;
        let rids = table.rows_of_node(self.db.pool(), node_id)?;
        let mut rows = Vec::with_capacity(rids.len());
        for rid in rids {
            rows.push((rid, table.get(self.db.pool(), rid)?));
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use gvdb_graph::generators::planted_partition;

    fn manager(name: &str) -> (QueryManager, std::path::PathBuf) {
        let g = planted_partition(4, 50, 6.0, 0.5, 1);
        let mut path = std::env::temp_dir();
        path.push(format!("gvdb-qm-{name}-{}", std::process::id()));
        let (db, _) = preprocess(
            &g,
            &path,
            &PreprocessConfig {
                k: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        (QueryManager::new(db), path)
    }

    #[test]
    fn window_query_measures_all_stages() {
        let (qm, path) = manager("stages");
        let resp = qm
            .window_query(0, &Rect::new(0.0, 0.0, 1500.0, 1500.0))
            .unwrap();
        assert!(!resp.rows.is_empty());
        assert!(resp.db_ms >= 0.0);
        assert!(resp.build_json_ms >= 0.0);
        assert!(resp.client.comm_render_ms > 0.0);
        assert!(resp.total_ms() >= resp.client.comm_render_ms);
        assert_eq!(resp.json.edge_count, resp.rows.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_layer_is_an_error() {
        let (qm, path) = manager("missing");
        assert!(matches!(
            qm.window_query(99, &Rect::new(0.0, 0.0, 1.0, 1.0)),
            Err(StorageError::LayerNotFound(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn keyword_search_focuses_on_hit() {
        let (qm, path) = manager("search");
        // planted_partition labels are c{community}-n{index}
        let hits = qm.keyword_search(0, "c2 n7").unwrap();
        assert!(!hits.is_empty());
        let w = qm.focus_window(&hits[0], 800.0, 600.0);
        assert!((w.width() - 800.0).abs() < 1e-9);
        // The focused window must contain the hit node's edges.
        let resp = qm.window_query(0, &w).unwrap();
        assert!(resp
            .rows
            .iter()
            .any(|(_, r)| r.node1_id == hits[0].node_id || r.node2_id == hits[0].node_id));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn focus_on_node_returns_neighborhood() {
        let (qm, path) = manager("focus");
        let hits = qm.keyword_search(0, "c0 n0").unwrap();
        let rows = qm.focus_on_node(0, hits[0].node_id).unwrap();
        assert!(!rows.is_empty());
        for (_, r) in &rows {
            assert!(r.node1_id == hits[0].node_id || r.node2_id == hits[0].node_id);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn higher_layers_return_fewer_objects() {
        let (qm, path) = manager("layers");
        let everything = Rect::new(-1e9, -1e9, 1e9, 1e9);
        let l0 = qm.window_query(0, &everything).unwrap();
        let top = qm.window_query(qm.layer_count() - 1, &everything).unwrap();
        assert!(top.rows.len() < l0.rows.len());
        std::fs::remove_file(&path).ok();
    }
}
