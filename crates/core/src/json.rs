//! Building the JSON objects sent to the client — the "Build JSON Objects"
//! stage measured in Fig. 3.
//!
//! Hand-rolled writer (no serde): this stage's cost is itself part of the
//! reproduced experiment, so it must do the real work — string escaping,
//! node deduplication across rows, number formatting — the way the Java
//! prototype's JSON layer does.
//!
//! Alongside the serialized text, every [`GraphJson`] carries a **span
//! index**: the byte range of each node and edge object inside `text`,
//! keyed by its id. The index is what makes the delta-pan path's
//! [`GraphJson::retain`] / [`GraphJson::merge`] pure splices — surviving
//! fragments are `memcpy`d by range, with no re-escaping, no number
//! re-formatting, and no scanning of the payload.

use gvdb_storage::{EdgeRow, RowId};
use std::collections::HashSet;

/// The emitted payload skeleton: `{"nodes":[…],"edges":[…]}`.
const NODES_PREFIX: &str = "{\"nodes\":[";
const EDGES_SEP: &str = "],\"edges\":[";
const SUFFIX: &str = "]}";

/// The empty payload — [`GraphJson::retain`] splices against it.
static EMPTY_JSON: std::sync::LazyLock<GraphJson> =
    std::sync::LazyLock::new(|| build_graph_json(&[]));

/// Byte range of one serialized object (a node or an edge) in
/// [`GraphJson::text`], keyed by the object's id (node id / packed row
/// id). Offsets are `u32`: a payload is bounded far below 4 GiB by the
/// window-cache byte budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Span {
    pub(crate) id: u64,
    pub(crate) start: u32,
    pub(crate) end: u32,
}

impl Span {
    fn slice<'a>(&self, text: &'a str) -> &'a str {
        &text[self.start as usize..self.end as usize]
    }
}

/// The JSON payload for one window query response.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphJson {
    /// Serialized JSON text.
    pub text: String,
    /// Distinct nodes in the payload.
    pub node_count: usize,
    /// Edges in the payload.
    pub edge_count: usize,
    /// Span of each node object in `text`, in emission order.
    pub(crate) node_spans: Vec<Span>,
    /// Span of each edge object in `text`, ascending by edge (row) id —
    /// every query path emits rows in ascending [`RowId`] order, which is
    /// what lets [`GraphJson::merge`] two-way merge without sorting.
    pub(crate) edge_spans: Vec<Span>,
    /// Whether node emission order is the canonical first-seen-in-row
    /// order of a fresh build ([`build_graph_json`] /
    /// [`GraphJsonBuilder`]). Spliced payloads ([`GraphJson::retain`],
    /// [`GraphJson::merge`]) keep surviving nodes in their *original*
    /// positions, so their order is not reproducible from the rows alone
    /// — the packed frame encoder (which rebuilds node order from rows
    /// on the client) only engages when this is `true`.
    pub canonical: bool,
}

/// Single-pass payload writer: prefix, node objects, separator, edge
/// objects, suffix, all into one buffer, recording spans as it goes. The
/// splice paths feed it contiguous *runs* of surviving fragments (one
/// `memcpy` per run, span offsets adjusted arithmetically), so a delta
/// update never re-serializes or re-scans surviving objects.
struct PayloadBuilder {
    text: String,
    node_spans: Vec<Span>,
    edge_spans: Vec<Span>,
    /// Whether the currently open array already has an element.
    has_element: bool,
    in_edges: bool,
}

impl PayloadBuilder {
    fn with_capacity(bytes: usize) -> Self {
        let mut text = String::with_capacity(bytes + 32);
        text.push_str(NODES_PREFIX);
        PayloadBuilder {
            text,
            node_spans: Vec::new(),
            edge_spans: Vec::new(),
            has_element: false,
            in_edges: false,
        }
    }

    fn sep(&mut self) {
        if self.has_element {
            self.text.push(',');
        }
        self.has_element = true;
    }

    /// Close the node array and open the edge array.
    fn begin_edges(&mut self) {
        debug_assert!(!self.in_edges);
        self.text.push_str(EDGES_SEP);
        self.has_element = false;
        self.in_edges = true;
    }

    fn spans_mut(&mut self) -> &mut Vec<Span> {
        if self.in_edges {
            &mut self.edge_spans
        } else {
            &mut self.node_spans
        }
    }

    /// Append one already-serialized object fragment.
    fn push_fragment(&mut self, id: u64, fragment: &str) {
        self.sep();
        let start = self.text.len() as u32;
        self.text.push_str(fragment);
        let end = self.text.len() as u32;
        self.spans_mut().push(Span { id, start, end });
    }

    /// Append a contiguous run of fragments from `src` in one `memcpy` —
    /// `spans` must be consecutive spans of `src` (each separated from
    /// the next by exactly the one comma the run copy carries along).
    fn push_run(&mut self, src: &str, spans: &[Span]) {
        let (Some(first), Some(last)) = (spans.first(), spans.last()) else {
            return;
        };
        debug_assert!(spans.windows(2).all(|w| w[0].end + 1 == w[1].start,));
        self.sep();
        let shift = self.text.len() as i64 - first.start as i64;
        self.text
            .push_str(&src[first.start as usize..last.end as usize]);
        let out = if self.in_edges {
            &mut self.edge_spans
        } else {
            &mut self.node_spans
        };
        out.extend(spans.iter().map(|s| Span {
            id: s.id,
            start: (s.start as i64 + shift) as u32,
            end: (s.end as i64 + shift) as u32,
        }));
    }

    fn finish(mut self) -> GraphJson {
        debug_assert!(self.in_edges);
        self.text.push_str(SUFFIX);
        GraphJson {
            text: self.text,
            node_count: self.node_spans.len(),
            edge_count: self.edge_spans.len(),
            node_spans: self.node_spans,
            edge_spans: self.edge_spans,
            canonical: false,
        }
    }
}

/// One streamed frame payload sliced out of a [`GraphJson`]: a
/// self-contained `{"nodes":[…],"edges":[…]}` fragment whose node and
/// edge bodies are **contiguous byte ranges** of the source payload.
/// Concatenating the node bodies (and the edge bodies) of every frame of
/// a stream, in order, reassembles the buffered payload byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphFrame {
    /// The fragment text, ready to splice into an `ApiFrame::Rows`.
    pub graph: String,
    /// Node objects in the fragment.
    pub nodes: usize,
    /// Edge objects in the fragment.
    pub edges: usize,
    /// Half-open range of payload edge indexes this frame covers —
    /// aligned with the row slice the payload was built from, so callers
    /// can attribute frames back to rows (e.g. the reused flag).
    pub edge_range: (usize, usize),
}

/// Iterator slicing a built payload into streamed frames — see
/// [`GraphJson::frame_slices`].
pub struct FrameSlices<'a> {
    json: &'a GraphJson,
    /// Per node span (payload order): the index of the first edge that
    /// references the node, or `usize::MAX` if no streamed edge does.
    first_ref: Vec<usize>,
    chunk: usize,
    n: usize,
    e: usize,
}

impl Iterator for FrameSlices<'_> {
    type Item = GraphFrame;

    fn next(&mut self) -> Option<GraphFrame> {
        let (nodes, edges) = (&self.json.node_spans, &self.json.edge_spans);
        if self.e >= edges.len() {
            return None;
        }
        let e_end = (self.e + self.chunk).min(edges.len());
        // A frame carries the node spans first referenced by its edges.
        // The final frame sweeps up every remaining node, so spliced
        // payloads (whose node order is not first-seen order) still
        // deliver all nodes even when `first_ref` is non-monotonic.
        let mut n_end = self.n;
        if e_end == edges.len() {
            n_end = nodes.len();
        } else {
            while n_end < nodes.len() && self.first_ref[n_end] < e_end {
                n_end += 1;
            }
        }
        let mut graph = String::with_capacity(128);
        graph.push_str(NODES_PREFIX);
        if self.n < n_end {
            let (first, last) = (&nodes[self.n], &nodes[n_end - 1]);
            graph.push_str(&self.json.text[first.start as usize..last.end as usize]);
        }
        graph.push_str(EDGES_SEP);
        let (first, last) = (&edges[self.e], &edges[e_end - 1]);
        graph.push_str(&self.json.text[first.start as usize..last.end as usize]);
        graph.push_str(SUFFIX);
        let frame = GraphFrame {
            graph,
            nodes: n_end - self.n,
            edges: e_end - self.e,
            edge_range: (self.e, e_end),
        };
        self.n = n_end;
        self.e = e_end;
        Some(frame)
    }
}

impl GraphJson {
    /// Payload size in bytes (what travels over the wire).
    pub fn byte_len(&self) -> usize {
        self.text.len()
    }

    /// Slice this payload into streamed frames of at most `chunk` edges
    /// each, **without re-serializing anything**: every frame body is two
    /// contiguous `memcpy`s out of `text` (one node run, one edge run)
    /// wrapped in the payload skeleton. `rows` must be the row slice the
    /// payload was built from (one row per edge span, same order) — it
    /// supplies the edge→node endpoints the span index doesn't record,
    /// so each frame can carry the nodes its edges introduce. For
    /// cold-built payloads every edge's endpoints are delivered in its
    /// own or an earlier frame; spliced payloads keep byte-identical
    /// reassembly but may deliver some arrival nodes in a later frame
    /// (clients merge by id, so this only defers paint of those nodes).
    ///
    /// An empty payload yields no frames.
    pub fn frame_slices(&self, rows: &[(RowId, EdgeRow)], chunk: usize) -> FrameSlices<'_> {
        debug_assert_eq!(rows.len(), self.edge_spans.len());
        let mut span_of: Vec<(u64, usize)> = self
            .node_spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i))
            .collect();
        span_of.sort_unstable();
        let mut first_ref = vec![usize::MAX; self.node_spans.len()];
        for (i, (_, row)) in rows.iter().enumerate().take(self.edge_spans.len()) {
            for id in [row.node1_id, row.node2_id] {
                if let Ok(k) = span_of.binary_search_by_key(&id, |&(id, _)| id) {
                    let slot = &mut first_ref[span_of[k].1];
                    if *slot == usize::MAX {
                        *slot = i;
                    }
                }
            }
        }
        FrameSlices {
            json: self,
            first_ref,
            chunk: chunk.max(1),
            n: 0,
            e: 0,
        }
    }

    /// Approximate heap footprint: the text plus the span index (what the
    /// window cache charges against its byte budget).
    pub fn approx_heap_bytes(&self) -> usize {
        self.text.len()
            + (self.node_spans.len() + self.edge_spans.len()) * std::mem::size_of::<Span>()
    }

    /// Incremental update, removal half: a copy of this payload with the
    /// edges in `drop_edges` (packed row ids) and the nodes in
    /// `drop_nodes` (node ids) removed; everything else is retained in
    /// its original order. Both lists must be sorted ascending — the
    /// delta path produces them that way, and sortedness is what keeps
    /// this O(payload) with a memcpy-sized constant: edges stream
    /// through a two-pointer walk (the edge index is ascending too), and
    /// each node span does a binary search of the (small) drop list. No
    /// label re-escaping, number re-formatting, hashing, or payload
    /// scanning happens for surviving objects.
    ///
    /// # Panics
    /// Debug builds assert the drop lists are sorted.
    pub fn retain(&self, drop_edges: &[u64], drop_nodes: &[u64]) -> GraphJson {
        self.splice(drop_edges, drop_nodes, &EMPTY_JSON, &[])
    }

    /// Incremental update, addition half: splice `add` into this payload.
    ///
    /// Edge fragments of both payloads two-way merge in ascending edge
    /// (row) id — both span indexes already are ascending — so the result
    /// lists edges exactly as a cold build over the merged row set would.
    /// Nodes of `add` whose id already appears here are dropped (`self`
    /// wins); the survivors append after `self`'s nodes. All fragments
    /// are copied verbatim by indexed range.
    pub fn merge(&self, add: &GraphJson) -> GraphJson {
        let mut have: Vec<u64> = self.node_spans.iter().map(|s| s.id).collect();
        have.sort_unstable();
        let mut new_nodes: Vec<u64> = add
            .node_spans
            .iter()
            .map(|s| s.id)
            .filter(|id| have.binary_search(id).is_err())
            .collect();
        new_nodes.sort_unstable();
        self.splice(&[], &[], add, &new_nodes)
    }

    /// The fused incremental payload update — what the delta query path
    /// runs once per pan. Semantically `self.retain(drop_edges,
    /// drop_nodes).merge(add)` restricted to `add` nodes in `new_nodes`,
    /// but in a single pass with a single output allocation: every
    /// surviving fragment's bytes move exactly once.
    ///
    /// All four id lists must be sorted ascending; `add`'s edge ids must
    /// be disjoint from the retained ones (the delta path guarantees
    /// both — they come off sorted row ids and the node-reference
    /// update). [`GraphJson::retain`] and [`GraphJson::merge`] are thin
    /// wrappers over this.
    pub fn splice(
        &self,
        drop_edges: &[u64],
        drop_nodes: &[u64],
        add: &GraphJson,
        new_nodes: &[u64],
    ) -> GraphJson {
        debug_assert!(drop_edges.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(drop_nodes.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(new_nodes.windows(2).all(|w| w[0] <= w[1]));
        let mut b = PayloadBuilder::with_capacity(self.text.len() + add.text.len());

        // Nodes: copy maximal runs between dropped fragments, then append
        // the genuinely new nodes of `add`.
        let mut run = 0usize;
        for (i, span) in self.node_spans.iter().enumerate() {
            if drop_nodes.binary_search(&span.id).is_ok() {
                b.push_run(&self.text, &self.node_spans[run..i]);
                run = i + 1;
            }
        }
        b.push_run(&self.text, &self.node_spans[run..]);
        for span in &add.node_spans {
            if new_nodes.binary_search(&span.id).is_ok() {
                b.push_fragment(span.id, span.slice(&add.text));
            }
        }

        // Edges: all id sequences ascending — walk self's spans once,
        // splitting runs at drops and splicing arrivals in id position.
        b.begin_edges();
        let mut drop = drop_edges.iter().peekable();
        let mut arrive = add.edge_spans.iter().peekable();
        let mut run = 0usize;
        for (i, span) in self.edge_spans.iter().enumerate() {
            while let Some(a) = arrive.next_if(|a| a.id < span.id) {
                b.push_run(&self.text, &self.edge_spans[run..i]);
                run = i;
                b.push_fragment(a.id, a.slice(&add.text));
            }
            while drop.next_if(|d| **d < span.id).is_some() {}
            if drop.peek() == Some(&&span.id) {
                b.push_run(&self.text, &self.edge_spans[run..i]);
                run = i + 1;
            }
        }
        b.push_run(&self.text, &self.edge_spans[run..]);
        for a in arrive {
            b.push_fragment(a.id, a.slice(&add.text));
        }
        b.finish()
    }
}

/// Write one node object (`{"id","label","x","y"}`) into `buf` — the
/// canonical writer lives in `gvdb_api::pack`, shared with the packed
/// frame decoder so a client-side decode reprints byte-identically.
fn write_node(buf: &mut String, id: u64, label: &str, x: f64, y: f64) {
    gvdb_api::pack::write_node_json(buf, id, label, x, y);
}

/// Write one edge object (`{"id","source","target","label","directed"}`)
/// into `buf` — canonical writer shared via `gvdb_api::pack`.
fn write_edge(buf: &mut String, rid64: u64, row: &EdgeRow) {
    gvdb_api::pack::write_edge_json(
        buf,
        rid64,
        row.node1_id,
        row.node2_id,
        &row.edge_label,
        row.geometry.directed,
    );
}

/// Incremental payload writer for the streamed cold path: rows arrive
/// chunk-at-a-time ([`GraphJsonBuilder::push_rows`]), each chunk's newly
/// written bytes can be handed out immediately as a self-contained
/// streamed frame ([`GraphJsonBuilder::take_frame`] — two `memcpy`s, no
/// re-serialization), and [`GraphJsonBuilder::finish`] assembles the
/// exact payload a one-shot [`build_graph_json`] over the same rows
/// would produce. One serialization pass thus feeds the streamed
/// frames, the window-cache entry, and the buffered envelope alike.
///
/// Nodes and edges write into separate buffers (the payload lists all
/// nodes before all edges, but streamed chunks interleave them), glued
/// together by `finish`. The node buffer opens with the payload prefix,
/// so node span offsets are final payload offsets from the start; edge
/// span offsets are buffer-relative until `finish` shifts them.
pub struct GraphJsonBuilder {
    nodes: String,
    edges: String,
    node_spans: Vec<Span>,
    edge_spans: Vec<Span>,
    seen: HashSet<u64>,
    /// Span-index watermarks of the previous [`GraphJsonBuilder::take_frame`].
    node_mark: usize,
    edge_mark: usize,
}

impl GraphJsonBuilder {
    /// An empty builder sized for `bytes` of eventual payload.
    pub fn with_capacity(bytes: usize) -> Self {
        let mut nodes = String::with_capacity(bytes / 2 + 32);
        nodes.push_str(NODES_PREFIX);
        GraphJsonBuilder {
            nodes,
            edges: String::with_capacity(bytes / 2 + 32),
            node_spans: Vec::new(),
            edge_spans: Vec::new(),
            seen: HashSet::new(),
            node_mark: 0,
            edge_mark: 0,
        }
    }

    /// Serialize one chunk of rows: nodes deduplicated against every row
    /// pushed so far (first occurrence wins, like the one-shot build),
    /// row ids become edge ids. Chunks must arrive in ascending
    /// [`RowId`] order across calls — the span-index contract.
    pub fn push_rows(&mut self, rows: &[(RowId, EdgeRow)]) {
        for (rid, row) in rows {
            for (id, label, x, y) in [
                (
                    row.node1_id,
                    &row.node1_label,
                    row.geometry.x1,
                    row.geometry.y1,
                ),
                (
                    row.node2_id,
                    &row.node2_label,
                    row.geometry.x2,
                    row.geometry.y2,
                ),
            ] {
                if self.seen.insert(id) {
                    if !self.node_spans.is_empty() {
                        self.nodes.push(',');
                    }
                    let start = self.nodes.len() as u32;
                    write_node(&mut self.nodes, id, label, x, y);
                    let end = self.nodes.len() as u32;
                    self.node_spans.push(Span { id, start, end });
                }
            }
            let rid64 = rid.to_u64();
            if !self.edge_spans.is_empty() {
                self.edges.push(',');
            }
            let start = self.edges.len() as u32;
            write_edge(&mut self.edges, rid64, row);
            let end = self.edges.len() as u32;
            self.edge_spans.push(Span {
                id: rid64,
                start,
                end,
            });
        }
    }

    /// Slice everything pushed since the previous `take_frame` into one
    /// streamed frame (contiguous node run + contiguous edge run out of
    /// the two buffers) and advance the watermarks. `None` when nothing
    /// new was pushed. Concatenating every taken frame's node and edge
    /// bodies reassembles [`GraphJsonBuilder::finish`]'s payload
    /// byte-for-byte.
    pub fn take_frame(&mut self) -> Option<GraphFrame> {
        let (n, e) = (self.node_spans.len(), self.edge_spans.len());
        if n == self.node_mark && e == self.edge_mark {
            return None;
        }
        let mut graph = String::with_capacity(128);
        graph.push_str(NODES_PREFIX);
        if self.node_mark < n {
            let (first, last) = (&self.node_spans[self.node_mark], &self.node_spans[n - 1]);
            graph.push_str(&self.nodes[first.start as usize..last.end as usize]);
        }
        graph.push_str(EDGES_SEP);
        if self.edge_mark < e {
            let (first, last) = (&self.edge_spans[self.edge_mark], &self.edge_spans[e - 1]);
            graph.push_str(&self.edges[first.start as usize..last.end as usize]);
        }
        graph.push_str(SUFFIX);
        let frame = GraphFrame {
            graph,
            nodes: n - self.node_mark,
            edges: e - self.edge_mark,
            edge_range: (self.edge_mark, e),
        };
        self.node_mark = n;
        self.edge_mark = e;
        Some(frame)
    }

    /// Rows pushed so far.
    pub fn rows(&self) -> usize {
        self.edge_spans.len()
    }

    /// Glue the two buffers into the final payload. Byte-identical to
    /// [`build_graph_json`] over the concatenation of every pushed chunk.
    pub fn finish(mut self) -> GraphJson {
        let shift = (self.nodes.len() + EDGES_SEP.len()) as u32;
        let mut text = self.nodes;
        text.reserve(self.edges.len() + EDGES_SEP.len() + SUFFIX.len());
        text.push_str(EDGES_SEP);
        text.push_str(&self.edges);
        text.push_str(SUFFIX);
        for s in &mut self.edge_spans {
            s.start += shift;
            s.end += shift;
        }
        GraphJson {
            text,
            node_count: self.node_spans.len(),
            edge_count: self.edge_spans.len(),
            node_spans: self.node_spans,
            edge_spans: self.edge_spans,
            canonical: true,
        }
    }
}

/// Serialize window-query rows into the client payload:
/// `{"nodes":[{"id","label","x","y"}...],"edges":[{"id","source","target","label","directed"}...]}`.
///
/// Nodes are deduplicated across rows (a node appears in one row per
/// incident edge). Row ids become edge ids so the client can address edges
/// in edit operations. The span index is recorded while writing, at no
/// extra scan. One-shot wrapper over [`GraphJsonBuilder`] — the streamed
/// cold path uses the builder directly, one chunk per frame.
pub fn build_graph_json(rows: &[(RowId, EdgeRow)]) -> GraphJson {
    let mut b = GraphJsonBuilder::with_capacity(rows.len() * 96);
    b.push_rows(rows);
    b.finish()
}

/// JSON string escaping per RFC 8259 (delegates to the shared
/// `gvdb_api` implementation; kept as a `pub` re-entry point for
/// embedders that imported it from here).
pub fn escape_into(s: &str, out: &mut String) {
    gvdb_api::escape_into(s, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_storage::{EdgeGeometry, PageId};

    /// Independent string-aware fragment scanner, used only to
    /// cross-check the span index against what the text actually
    /// contains (the scanner is the slow-but-obvious implementation the
    /// spans replaced).
    mod scan {
        #[derive(Default)]
        struct StrScan {
            in_string: bool,
            escaped: bool,
        }

        impl StrScan {
            fn step(&mut self, b: u8) {
                if self.in_string {
                    if self.escaped {
                        self.escaped = false;
                    } else if b == b'\\' {
                        self.escaped = true;
                    } else if b == b'"' {
                        self.in_string = false;
                    }
                } else if b == b'"' {
                    self.in_string = true;
                }
            }
        }

        /// Split a payload into its node and edge array bodies.
        pub fn split_arrays(text: &str) -> (&str, &str) {
            let body = &text[super::NODES_PREFIX.len()..];
            let mut s = StrScan::default();
            let bytes = body.as_bytes();
            for i in 0..bytes.len() {
                if !s.in_string && bytes[i..].starts_with(super::EDGES_SEP.as_bytes()) {
                    let rest = &body[i + super::EDGES_SEP.len()..];
                    return (&body[..i], rest.strip_suffix(super::SUFFIX).unwrap_or(rest));
                }
                s.step(bytes[i]);
            }
            unreachable!("payload without an edges array");
        }

        /// Top-level `{…}` object slices of an array body.
        pub fn objects(body: &str) -> Vec<&str> {
            let bytes = body.as_bytes();
            let mut out = Vec::new();
            let mut pos = 0;
            while pos < bytes.len() {
                while pos < bytes.len() && bytes[pos] != b'{' {
                    pos += 1;
                }
                if pos >= bytes.len() {
                    break;
                }
                let start = pos;
                let mut depth = 0usize;
                let mut s = StrScan::default();
                while pos < bytes.len() {
                    let b = bytes[pos];
                    if !s.in_string {
                        if b == b'{' {
                            depth += 1;
                        } else if b == b'}' {
                            depth -= 1;
                            if depth == 0 {
                                pos += 1;
                                out.push(&body[start..pos]);
                                break;
                            }
                        }
                    }
                    s.step(b);
                    pos += 1;
                }
            }
            out
        }
    }

    fn row(n1: u64, n2: u64, label: &str) -> (RowId, EdgeRow) {
        (
            RowId {
                page: PageId(1),
                slot: n1 as u16,
            },
            EdgeRow {
                node1_id: n1,
                node1_label: format!("node{n1}").into(),
                geometry: EdgeGeometry {
                    x1: n1 as f64,
                    y1: 0.0,
                    x2: n2 as f64,
                    y2: 1.0,
                    directed: true,
                },
                edge_label: label.into(),
                node2_id: n2,
                node2_label: format!("node{n2}").into(),
            },
        )
    }

    /// Like `row` but with node `n` always at `(n, n)`, the way real
    /// layouts position a node identically in every incident row.
    fn crow(n1: u64, n2: u64, label: &str) -> (RowId, EdgeRow) {
        let (rid, mut r) = row(n1, n2, label);
        r.geometry.y1 = n1 as f64;
        r.geometry.y2 = n2 as f64;
        (rid, r)
    }

    /// Every span must slice exactly the object the scanner sees.
    fn check_spans(json: &GraphJson) {
        let (nodes, edges) = scan::split_arrays(&json.text);
        let node_objs = scan::objects(nodes);
        let edge_objs = scan::objects(edges);
        assert_eq!(node_objs.len(), json.node_spans.len());
        assert_eq!(edge_objs.len(), json.edge_spans.len());
        assert_eq!(json.node_count, json.node_spans.len());
        assert_eq!(json.edge_count, json.edge_spans.len());
        for (span, obj) in json.node_spans.iter().zip(&node_objs) {
            assert_eq!(span.slice(&json.text), *obj);
        }
        for (span, obj) in json.edge_spans.iter().zip(&edge_objs) {
            assert_eq!(span.slice(&json.text), *obj);
        }
    }

    #[test]
    fn nodes_deduplicated_across_rows() {
        let rows = vec![row(1, 2, "a"), row(2, 3, "b")];
        let json = build_graph_json(&rows);
        assert_eq!(json.node_count, 3);
        assert_eq!(json.edge_count, 2);
        assert_eq!(json.text.matches("\"label\":\"node2\"").count(), 1);
        check_spans(&json);
    }

    #[test]
    fn escaping_special_characters() {
        let rows = vec![row(1, 2, "quote\" backslash\\ newline\n")];
        let json = build_graph_json(&rows);
        assert!(json.text.contains("quote\\\" backslash\\\\ newline\\n"));
        check_spans(&json);
    }

    #[test]
    fn escape_control_chars() {
        let mut out = String::new();
        escape_into("\u{0001}", &mut out);
        assert_eq!(out, "\\u0001");
    }

    #[test]
    fn empty_result_is_valid_json_skeleton() {
        let json = build_graph_json(&[]);
        assert_eq!(json.text, "{\"nodes\":[],\"edges\":[]}");
        assert_eq!(json.node_count, 0);
        check_spans(&json);
    }

    #[test]
    fn directed_flag_serialized() {
        let json = build_graph_json(&[row(5, 6, "x")]);
        assert!(json.text.contains("\"directed\":true"));
        assert!(json.text.contains("\"source\":5"));
    }

    #[test]
    fn byte_len_matches_text() {
        let json = build_graph_json(&[row(1, 2, "ü")]);
        assert_eq!(json.byte_len(), json.text.len());
        assert!(json.approx_heap_bytes() > json.byte_len());
    }

    #[test]
    fn retain_drops_edges_and_orphaned_nodes() {
        let rows = vec![crow(1, 2, "a"), crow(2, 3, "b"), crow(3, 4, "c")];
        let json = build_graph_json(&rows);
        // Drop the outer edges: nodes 2 and 3 survive, 1 and 4 drop.
        let mut drop_edges: Vec<u64> = [rows[0].0.to_u64(), rows[2].0.to_u64()].into();
        drop_edges.sort_unstable();
        let kept = json.retain(&drop_edges, &[1, 4]);
        assert_eq!((kept.node_count, kept.edge_count), (2, 1));
        let direct = build_graph_json(&rows[1..2]);
        assert_eq!(kept.text, direct.text, "splice must equal a cold build");
        check_spans(&kept);
    }

    #[test]
    fn retain_nothing_dropped_is_identity() {
        let rows = vec![row(1, 2, "x"), row(2, 3, "y")];
        let json = build_graph_json(&rows);
        let kept = json.retain(&[], &[]);
        assert_eq!(kept.text, json.text);
        check_spans(&kept);
        let mut all_edges: Vec<u64> = rows.iter().map(|(rid, _)| rid.to_u64()).collect();
        all_edges.sort_unstable();
        let empty = json.retain(&all_edges, &[1, 2, 3]);
        assert_eq!(empty.text, "{\"nodes\":[],\"edges\":[]}");
        check_spans(&empty);
    }

    #[test]
    fn merge_dedups_nodes_and_sorts_edges_by_id() {
        // Rows 1-2 and 2-3 share node 2; edge ids interleave (slots 1, 3
        // vs 2) so the merge must produce ascending edge ids.
        let a = build_graph_json(&[row(1, 2, "a"), row(3, 4, "c")]);
        let b = build_graph_json(&[row(2, 3, "b")]);
        let merged = a.merge(&b);
        assert_eq!(merged.edge_count, 3);
        assert_eq!(merged.node_count, 4, "node 2/3 deduplicated");
        check_spans(&merged);
        // Edge fragments appear in ascending id order, like a cold build.
        let ids: Vec<u64> = merged.edge_spans.iter().map(|s| s.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = build_graph_json(&[row(1, 2, "a")]);
        let empty = build_graph_json(&[]);
        assert_eq!(a.merge(&empty).text, a.text);
        assert_eq!(empty.merge(&a).text, a.text);
        check_spans(&a.merge(&empty));
    }

    #[test]
    fn frame_slices_cover_a_cold_payload_exactly() {
        // Chunk = 2 over 6 edges: every fragment boundary lands exactly
        // on a span-run boundary (between consecutive edge spans).
        let rows: Vec<_> = (0..6).map(|i| crow(i, i + 1, "e")).collect();
        let json = build_graph_json(&rows);
        let frames: Vec<_> = json.frame_slices(&rows, 2).collect();
        assert_eq!(frames.len(), 3);
        assert!(frames.iter().all(|f| f.edges == 2));
        assert_eq!(
            frames.iter().map(|f| f.nodes).sum::<usize>(),
            json.node_count
        );
        let glued = gvdb_api::reassemble_graph(frames.iter().map(|f| f.graph.as_str())).unwrap();
        assert_eq!(glued, json.text);
    }

    #[test]
    fn frame_boundary_on_a_splice_glue_point() {
        // Drop the two middle edges of six: the retained payload glues
        // two runs of two edges each. Chunk = 2 puts the fragment
        // boundary exactly on the glue point — the slicer must not care.
        let rows: Vec<_> = (0..6).map(|i| crow(i, i + 1, "e")).collect();
        let json = build_graph_json(&rows);
        let mut drop_edges = vec![rows[2].0.to_u64(), rows[3].0.to_u64()];
        drop_edges.sort_unstable();
        let kept = json.retain(&drop_edges, &[3]);
        let kept_rows = vec![
            rows[0].clone(),
            rows[1].clone(),
            rows[4].clone(),
            rows[5].clone(),
        ];
        // A splice that removes interior runs equals a cold build over
        // the surviving rows, so the slices match that build too.
        assert_eq!(kept.text, build_graph_json(&kept_rows).text);
        let frames: Vec<_> = kept.frame_slices(&kept_rows, 2).collect();
        assert_eq!(frames.len(), 2);
        let glued = gvdb_api::reassemble_graph(frames.iter().map(|f| f.graph.as_str())).unwrap();
        assert_eq!(glued, kept.text);
    }

    #[test]
    fn single_frame_when_chunk_exceeds_rows() {
        let rows = vec![row(1, 2, "a"), row(2, 3, "b")];
        let json = build_graph_json(&rows);
        let frames: Vec<_> = json.frame_slices(&rows, 100).collect();
        assert_eq!(frames.len(), 1);
        // One frame of everything is the payload itself, byte-for-byte.
        assert_eq!(frames[0].graph, json.text);
        assert_eq!(frames[0].nodes, json.node_count);
        assert_eq!(frames[0].edges, json.edge_count);
        // An empty payload yields no frames at all.
        assert!(build_graph_json(&[]).frame_slices(&[], 4).next().is_none());
    }

    #[test]
    fn incremental_builder_equals_the_one_shot_build() {
        let rows: Vec<_> = (0..10)
            .map(|i| {
                let (mut rid, r) = row(i % 4 + 1, (i * 3) % 7 + 1, "x");
                rid.slot = i as u16;
                (rid, r)
            })
            .collect();
        let mut b = GraphJsonBuilder::with_capacity(64);
        assert!(b.take_frame().is_none(), "nothing pushed yet");
        let mut frames = Vec::new();
        for chunk in rows.chunks(3) {
            b.push_rows(chunk);
            frames.push(b.take_frame().expect("non-empty chunk"));
            assert!(b.take_frame().is_none(), "watermarks advanced");
        }
        assert_eq!(b.rows(), rows.len());
        let json = b.finish();
        assert_eq!(json.text, build_graph_json(&rows).text);
        check_spans(&json);
        let glued = gvdb_api::reassemble_graph(frames.iter().map(|f| f.graph.as_str())).unwrap();
        assert_eq!(glued, json.text);
    }

    #[test]
    fn splice_survives_hostile_labels() {
        // Labels full of braces, quotes, backslashes and commas must not
        // corrupt the splice — including one embedding the `],"edges":[`
        // separator itself.
        let rows = vec![
            row(1, 2, "{\"}],\"edges\":[weird\\"),
            row(2, 3, "}}{{,,\"\\\""),
        ];
        let json = build_graph_json(&rows);
        check_spans(&json);
        assert_eq!(json.retain(&[], &[]).text, json.text);
        let merged = build_graph_json(&rows[..1]).merge(&build_graph_json(&rows[1..]));
        assert_eq!(merged.text, json.text);
        check_spans(&merged);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Rows with ascending, distinct row ids; labels range over JSON
        /// metacharacters so escaping is exercised.
        fn arb_rows() -> impl Strategy<Value = Vec<(RowId, EdgeRow)>> {
            prop::collection::vec((0u64..40, 0u64..40, "[a-z\"\\\\{},:\\[\\]]{0,8}"), 1..60)
                .prop_map(|specs| {
                    specs
                        .into_iter()
                        .enumerate()
                        .map(|(i, (a, b, label))| {
                            let (mut rid, r) = row(a, b, &label);
                            rid.slot = i as u16;
                            (rid, r)
                        })
                        .collect()
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The tentpole invariant: slicing a built payload into
            /// frames and gluing the fragments back together is the
            /// identity — and cold-built payloads deliver every edge's
            /// endpoints no later than the edge itself.
            #[test]
            fn frames_reassemble_byte_for_byte(
                rows in arb_rows(),
                chunk in 1usize..70,
            ) {
                let json = build_graph_json(&rows);
                let frames: Vec<_> = json.frame_slices(&rows, chunk).collect();
                prop_assert_eq!(
                    frames.iter().map(|f| f.nodes).sum::<usize>(),
                    json.node_count
                );
                prop_assert_eq!(
                    frames.iter().map(|f| f.edges).sum::<usize>(),
                    json.edge_count
                );
                let glued = gvdb_api::reassemble_graph(
                    frames.iter().map(|f| f.graph.as_str()),
                )
                .unwrap();
                prop_assert_eq!(glued, json.text.clone());
                // Prefix closure: nodes arrive with (or before) their edges.
                let mut delivered = HashSet::new();
                let mut n = 0;
                for f in &frames {
                    for span in &json.node_spans[n..n + f.nodes] {
                        delivered.insert(span.id);
                    }
                    n += f.nodes;
                    for (_, r) in &rows[f.edge_range.0..f.edge_range.1] {
                        prop_assert!(delivered.contains(&r.node1_id));
                        prop_assert!(delivered.contains(&r.node2_id));
                    }
                }
            }

            /// The incremental (chunk-at-a-time) builder produces the
            /// same bytes as the one-shot build, and its taken frames
            /// reassemble to that payload.
            #[test]
            fn incremental_builder_is_byte_identical(
                rows in arb_rows(),
                cut in 1usize..20,
            ) {
                let mut b = GraphJsonBuilder::with_capacity(rows.len() * 96);
                let mut frames = Vec::new();
                for chunk in rows.chunks(cut) {
                    b.push_rows(chunk);
                    if let Some(f) = b.take_frame() {
                        frames.push(f);
                    }
                }
                prop_assert!(b.take_frame().is_none());
                let json = b.finish();
                prop_assert_eq!(&json.text, &build_graph_json(&rows).text);
                check_spans(&json);
                let glued = gvdb_api::reassemble_graph(
                    frames.iter().map(|f| f.graph.as_str()),
                )
                .unwrap();
                prop_assert_eq!(glued, json.text.clone());
            }

            /// Spliced (delta) payloads slice byte-identically too, even
            /// though node order is no longer first-seen order.
            #[test]
            fn spliced_payloads_slice_byte_for_byte(
                rows in arb_rows(),
                mask in prop::collection::vec(any::<bool>(), 60..61),
                chunk in 1usize..70,
            ) {
                let json = build_graph_json(&rows);
                let dropped = |i: usize| mask[i % mask.len()];
                let drop_edges: Vec<u64> = rows
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| dropped(*i))
                    .map(|(_, (rid, _))| rid.to_u64())
                    .collect();
                let kept_rows: Vec<_> = rows
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !dropped(*i))
                    .map(|(_, r)| r.clone())
                    .collect();
                let kept_ids: HashSet<u64> = kept_rows
                    .iter()
                    .flat_map(|(_, r)| [r.node1_id, r.node2_id])
                    .collect();
                let mut drop_nodes: Vec<u64> = json
                    .node_spans
                    .iter()
                    .map(|s| s.id)
                    .filter(|id| !kept_ids.contains(id))
                    .collect();
                drop_nodes.sort_unstable();
                let kept = json.retain(&drop_edges, &drop_nodes);
                let frames: Vec<_> = kept.frame_slices(&kept_rows, chunk).collect();
                let glued = gvdb_api::reassemble_graph(
                    frames.iter().map(|f| f.graph.as_str()),
                )
                .unwrap();
                prop_assert_eq!(glued, kept.text.clone());
            }
        }
    }
}
