//! Building the JSON objects sent to the client — the "Build JSON Objects"
//! stage measured in Fig. 3.
//!
//! Hand-rolled writer (no serde): this stage's cost is itself part of the
//! reproduced experiment, so it must do the real work — string escaping,
//! node deduplication across rows, number formatting — the way the Java
//! prototype's JSON layer does.

use gvdb_storage::{EdgeRow, RowId};
use std::collections::HashSet;

/// The JSON payload for one window query response.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphJson {
    /// Serialized JSON text.
    pub text: String,
    /// Distinct nodes in the payload.
    pub node_count: usize,
    /// Edges in the payload.
    pub edge_count: usize,
}

impl GraphJson {
    /// Payload size in bytes (what travels over the wire).
    pub fn byte_len(&self) -> usize {
        self.text.len()
    }
}

/// Serialize window-query rows into the client payload:
/// `{"nodes":[{"id","label","x","y"}...],"edges":[{"id","source","target","label","directed"}...]}`.
///
/// Nodes are deduplicated across rows (a node appears in one row per
/// incident edge). Row ids become edge ids so the client can address edges
/// in edit operations.
pub fn build_graph_json(rows: &[(RowId, EdgeRow)]) -> GraphJson {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut nodes = String::new();
    let mut edges = String::new();
    let mut node_count = 0usize;
    for (rid, row) in rows {
        for (id, label, x, y) in [
            (
                row.node1_id,
                &row.node1_label,
                row.geometry.x1,
                row.geometry.y1,
            ),
            (
                row.node2_id,
                &row.node2_label,
                row.geometry.x2,
                row.geometry.y2,
            ),
        ] {
            if seen.insert(id) {
                if node_count > 0 {
                    nodes.push(',');
                }
                nodes.push_str("{\"id\":");
                nodes.push_str(&id.to_string());
                nodes.push_str(",\"label\":\"");
                escape_into(label, &mut nodes);
                nodes.push_str("\",\"x\":");
                push_f64(&mut nodes, x);
                nodes.push_str(",\"y\":");
                push_f64(&mut nodes, y);
                nodes.push('}');
                node_count += 1;
            }
        }
        if !edges.is_empty() {
            edges.push(',');
        }
        edges.push_str("{\"id\":");
        edges.push_str(&rid.to_u64().to_string());
        edges.push_str(",\"source\":");
        edges.push_str(&row.node1_id.to_string());
        edges.push_str(",\"target\":");
        edges.push_str(&row.node2_id.to_string());
        edges.push_str(",\"label\":\"");
        escape_into(&row.edge_label, &mut edges);
        edges.push_str("\",\"directed\":");
        edges.push_str(if row.geometry.directed {
            "true"
        } else {
            "false"
        });
        edges.push('}');
    }
    let text = format!("{{\"nodes\":[{nodes}],\"edges\":[{edges}]}}");
    GraphJson {
        text,
        node_count,
        edge_count: rows.len(),
    }
}

/// JSON string escaping per RFC 8259.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_f64(out: &mut String, v: f64) {
    // Fixed short form: pixel coordinates don't need full precision.
    out.push_str(&format!("{v:.2}"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_storage::{EdgeGeometry, PageId};

    fn row(n1: u64, n2: u64, label: &str) -> (RowId, EdgeRow) {
        (
            RowId {
                page: PageId(1),
                slot: n1 as u16,
            },
            EdgeRow {
                node1_id: n1,
                node1_label: format!("node{n1}"),
                geometry: EdgeGeometry {
                    x1: n1 as f64,
                    y1: 0.0,
                    x2: n2 as f64,
                    y2: 1.0,
                    directed: true,
                },
                edge_label: label.into(),
                node2_id: n2,
                node2_label: format!("node{n2}"),
            },
        )
    }

    #[test]
    fn nodes_deduplicated_across_rows() {
        let rows = vec![row(1, 2, "a"), row(2, 3, "b")];
        let json = build_graph_json(&rows);
        assert_eq!(json.node_count, 3);
        assert_eq!(json.edge_count, 2);
        assert_eq!(json.text.matches("\"label\":\"node2\"").count(), 1);
    }

    #[test]
    fn escaping_special_characters() {
        let rows = vec![row(1, 2, "quote\" backslash\\ newline\n")];
        let json = build_graph_json(&rows);
        assert!(json.text.contains("quote\\\" backslash\\\\ newline\\n"));
    }

    #[test]
    fn escape_control_chars() {
        let mut out = String::new();
        escape_into("\u{0001}", &mut out);
        assert_eq!(out, "\\u0001");
    }

    #[test]
    fn empty_result_is_valid_json_skeleton() {
        let json = build_graph_json(&[]);
        assert_eq!(json.text, "{\"nodes\":[],\"edges\":[]}");
        assert_eq!(json.node_count, 0);
    }

    #[test]
    fn directed_flag_serialized() {
        let json = build_graph_json(&[row(5, 6, "x")]);
        assert!(json.text.contains("\"directed\":true"));
        assert!(json.text.contains("\"source\":5"));
    }

    #[test]
    fn byte_len_matches_text() {
        let json = build_graph_json(&[row(1, 2, "ü")]);
        assert_eq!(json.byte_len(), json.text.len());
    }
}
