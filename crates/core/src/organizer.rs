//! The Partition Organizer (Fig. 1, Step 3): arrange laid-out partitions on
//! the global plane without overlap while keeping crossing edges short.
//!
//! Faithful to the paper's greedy algorithm:
//! 1. count crossing edges per partition;
//! 2. place the partition with the most crossing edges at the center;
//! 3. keep the rest in a priority queue ordered by the number of crossing
//!    edges shared with already-placed partitions (descending), updating
//!    as partitions are placed;
//! 4. assign each popped partition to the empty area minimizing the total
//!    length of its crossing edges to the placed partitions — candidate
//!    areas "lie around the non-empty areas from the previous steps".
//!
//! Partitions are normalized into uniform square tiles beforehand, so
//! "empty areas" form a grid of free slots adjacent to the occupied region.

use gvdb_graph::Graph;
use gvdb_layout::{normalize_to, Layout, Position};
use gvdb_partition::Partitioning;
use std::collections::{HashMap, HashSet};

/// Organizer configuration.
#[derive(Debug, Clone, Copy)]
pub struct OrganizerConfig {
    /// Side length of each partition tile on the global plane.
    pub tile: f64,
    /// Gap between adjacent tiles, as a fraction of `tile`.
    pub padding: f64,
}

impl Default for OrganizerConfig {
    fn default() -> Self {
        OrganizerConfig {
            tile: 1000.0,
            padding: 0.1,
        }
    }
}

/// The organizer's output: global node positions plus tile assignments.
#[derive(Debug, Clone)]
pub struct OrganizedLayout {
    /// Global position per node of the input graph.
    pub layout: Layout,
    /// Grid slot assigned to each partition.
    pub slots: Vec<(i32, i32)>,
    /// Tile pitch (tile side + gap): slot `(i, j)` starts at
    /// `(i * pitch, j * pitch)`.
    pub pitch: f64,
}

/// Arrange per-partition layouts on the global plane.
///
/// `part_layouts[p]` holds positions for the nodes of partition `p` in the
/// order given by `parts.parts()[p]` (i.e., indexed by position within the
/// partition, not by global node id).
pub fn organize_partitions(
    g: &Graph,
    parts: &Partitioning,
    part_layouts: &[Layout],
    cfg: &OrganizerConfig,
) -> OrganizedLayout {
    let k = parts.k() as usize;
    assert_eq!(part_layouts.len(), k, "one layout per partition");
    let pitch = cfg.tile * (1.0 + cfg.padding);
    let members = parts.parts();

    // Normalize every partition layout into its tile.
    let mut tiles: Vec<Layout> = part_layouts.to_vec();
    for t in &mut tiles {
        normalize_to(t, cfg.tile, cfg.tile);
    }

    // Pairwise crossing-edge counts and per-partition crossing lists.
    let mut pair_count: HashMap<(u32, u32), u32> = HashMap::new();
    // crossing[p] = (local node index in p, global node id of the far end)
    let mut crossing: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k];
    // local index of each node within its partition
    let mut local_idx = vec![0u32; g.node_count()];
    for (p, nodes) in members.iter().enumerate() {
        for (i, n) in nodes.iter().enumerate() {
            local_idx[n.index()] = i as u32;
        }
        let _ = p;
    }
    for e in g.edges() {
        let (ps, pt) = (parts.part_of(e.source), parts.part_of(e.target));
        if ps == pt {
            continue;
        }
        *pair_count.entry((ps.min(pt), ps.max(pt))).or_insert(0) += 1;
        crossing[ps as usize].push((local_idx[e.source.index()], e.target.0));
        crossing[pt as usize].push((local_idx[e.target.index()], e.source.0));
    }

    // Step 2 of the algorithm: most crossing edges goes to the center.
    let total_crossing: Vec<u32> = (0..k as u32)
        .map(|p| crossing[p as usize].len() as u32)
        .collect();
    let first = (0..k).max_by_key(|&p| (total_crossing[p], u32::MAX - p as u32));

    let mut slots = vec![(0i32, 0i32); k];
    let mut placed = vec![false; k];
    let mut occupied: HashSet<(i32, i32)> = HashSet::new();
    let mut global = vec![Position::default(); g.node_count()];
    // Priority key per unplaced partition: crossing edges to placed set.
    let mut key = vec![0u32; k];

    let place = |p: usize,
                 slot: (i32, i32),
                 slots: &mut Vec<(i32, i32)>,
                 placed: &mut Vec<bool>,
                 occupied: &mut HashSet<(i32, i32)>,
                 global: &mut Vec<Position>,
                 key: &mut Vec<u32>| {
        slots[p] = slot;
        placed[p] = true;
        occupied.insert(slot);
        let (ox, oy) = (slot.0 as f64 * pitch, slot.1 as f64 * pitch);
        for (i, n) in members[p].iter().enumerate() {
            let lp = tiles[p].position(gvdb_graph::NodeId(i as u32));
            global[n.index()] = Position::new(ox + lp.x, oy + lp.y);
        }
        // Update queue keys with the shared crossing counts.
        for q in 0..k {
            if !placed[q] {
                let pair = (p.min(q) as u32, p.max(q) as u32);
                if let Some(&c) = pair_count.get(&pair) {
                    key[q] += c;
                }
            }
        }
    };

    let Some(first) = first else {
        return OrganizedLayout {
            layout: Layout::from_positions(global),
            slots,
            pitch,
        };
    };
    place(
        first,
        (0, 0),
        &mut slots,
        &mut placed,
        &mut occupied,
        &mut global,
        &mut key,
    );

    for _ in 1..k {
        // Pop the unplaced partition with the largest key (ties: more total
        // crossing edges, then lower id, for determinism).
        let p = (0..k)
            .filter(|&q| !placed[q])
            .max_by_key(|&q| (key[q], total_crossing[q], u32::MAX - q as u32))
            .expect("an unplaced partition remains");

        // Candidate slots: free neighbors (8-connected) of the occupied
        // region — "this area lies around the non-empty areas".
        let mut candidates: Vec<(i32, i32)> = Vec::new();
        for &(x, y) in &occupied {
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let s = (x + dx, y + dy);
                    if !occupied.contains(&s) && !candidates.contains(&s) {
                        candidates.push(s);
                    }
                }
            }
        }
        candidates.sort(); // determinism

        // Cost of a candidate: total length of crossing edges from p's
        // nodes (at their tile-local positions offset by the candidate) to
        // already-placed far ends.
        let best = candidates
            .iter()
            .map(|&slot| {
                let (ox, oy) = (slot.0 as f64 * pitch, slot.1 as f64 * pitch);
                let mut cost = 0.0f64;
                let mut links = 0usize;
                for &(local, far) in &crossing[p] {
                    let far_part = parts.part_of(gvdb_graph::NodeId(far)) as usize;
                    if !placed[far_part] {
                        continue;
                    }
                    let lp = tiles[p].position(gvdb_graph::NodeId(local));
                    let a = Position::new(ox + lp.x, oy + lp.y);
                    cost += a.distance(&global[far as usize]);
                    links += 1;
                }
                if links == 0 {
                    // No placed neighbors: stay compact, prefer slots near
                    // the center.
                    let c = Position::new(
                        slot.0 as f64 * pitch + cfg.tile / 2.0,
                        slot.1 as f64 * pitch + cfg.tile / 2.0,
                    );
                    cost = c.distance(&Position::new(cfg.tile / 2.0, cfg.tile / 2.0));
                }
                (cost, slot)
            })
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(_, slot)| slot)
            .expect("candidates never empty while slots remain");

        place(
            p,
            best,
            &mut slots,
            &mut placed,
            &mut occupied,
            &mut global,
            &mut key,
        );
    }

    OrganizedLayout {
        layout: Layout::from_positions(global),
        slots,
        pitch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_graph::generators::{grid_graph, planted_partition};
    use gvdb_layout::{ForceDirected, LayoutAlgorithm};
    use gvdb_partition::{partition, PartitionConfig};

    fn organize(g: &Graph, k: u32) -> (OrganizedLayout, Partitioning) {
        let parts = partition(g, &PartitionConfig::with_k(k));
        let layouts: Vec<Layout> = parts
            .parts()
            .iter()
            .map(|nodes| {
                let (sub, _) = g.induced_subgraph(nodes);
                ForceDirected {
                    iterations: 20,
                    ..Default::default()
                }
                .layout(&sub)
            })
            .collect();
        (
            organize_partitions(g, &parts, &layouts, &OrganizerConfig::default()),
            parts,
        )
    }

    #[test]
    fn no_two_partitions_share_a_slot() {
        let g = planted_partition(6, 40, 6.0, 1.0, 3);
        let (org, _) = organize(&g, 6);
        let unique: HashSet<_> = org.slots.iter().collect();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn tiles_do_not_overlap_in_node_space() {
        let g = planted_partition(4, 30, 6.0, 1.0, 5);
        let (org, parts) = organize(&g, 4);
        // Every node must lie inside its partition's tile.
        for n in g.node_ids() {
            let p = parts.part_of(n) as usize;
            let (sx, sy) = org.slots[p];
            let pos = org.layout.position(n);
            let (ox, oy) = (sx as f64 * org.pitch, sy as f64 * org.pitch);
            assert!(
                pos.x >= ox - 1e-9 && pos.x <= ox + 1000.0 + 1e-9,
                "node {n} x {} outside tile at {ox}",
                pos.x
            );
            assert!(pos.y >= oy - 1e-9 && pos.y <= oy + 1000.0 + 1e-9);
        }
    }

    #[test]
    fn placement_is_contiguous() {
        let g = planted_partition(8, 20, 5.0, 1.0, 7);
        let (org, _) = organize(&g, 8);
        // Every slot (after the first) touches another occupied slot.
        let occupied: HashSet<(i32, i32)> = org.slots.iter().copied().collect();
        for &(x, y) in &occupied {
            if (x, y) == (0, 0) {
                continue;
            }
            let touches = (-1..=1).any(|dx| {
                (-1..=1).any(|dy| (dx != 0 || dy != 0) && occupied.contains(&(x + dx, y + dy)))
            });
            assert!(touches, "slot ({x},{y}) floats free");
        }
    }

    #[test]
    fn connected_partitions_end_up_adjacent() {
        // Two dense communities joined by a bridge, plus two isolated
        // communities: the joined pair should land on adjacent slots.
        let g = planted_partition(2, 40, 8.0, 2.0, 1);
        let (org, _) = organize(&g, 2);
        let (a, b) = (org.slots[0], org.slots[1]);
        assert!((a.0 - b.0).abs() <= 1 && (a.1 - b.1).abs() <= 1);
    }

    #[test]
    fn organizer_beats_random_slot_assignment_on_crossing_length() {
        let g = planted_partition(6, 30, 6.0, 1.5, 9);
        let parts = partition(&g, &PartitionConfig::with_k(6));
        let layouts: Vec<Layout> = parts
            .parts()
            .iter()
            .map(|nodes| {
                let (sub, _) = g.induced_subgraph(nodes);
                ForceDirected {
                    iterations: 20,
                    ..Default::default()
                }
                .layout(&sub)
            })
            .collect();
        let cfg = OrganizerConfig::default();
        let org = organize_partitions(&g, &parts, &layouts, &cfg);

        let crossing_len = |layout: &Layout| -> f64 {
            g.edges()
                .iter()
                .filter(|e| parts.part_of(e.source) != parts.part_of(e.target))
                .map(|e| {
                    layout
                        .position(e.source)
                        .distance(&layout.position(e.target))
                })
                .sum()
        };
        let organized = crossing_len(&org.layout);

        // Diagonal-line assignment (worst-ish case, still non-overlapping).
        let mut tiles = layouts.clone();
        for t in &mut tiles {
            normalize_to(t, cfg.tile, cfg.tile);
        }
        let mut positions = vec![Position::default(); g.node_count()];
        for (p, nodes) in parts.parts().iter().enumerate() {
            let (ox, oy) = (p as f64 * org.pitch * 2.0, p as f64 * org.pitch * 2.0);
            for (i, n) in nodes.iter().enumerate() {
                let lp = tiles[p].position(gvdb_graph::NodeId(i as u32));
                positions[n.index()] = Position::new(ox + lp.x, oy + lp.y);
            }
        }
        let diagonal = crossing_len(&Layout::from_positions(positions));
        assert!(
            organized < diagonal,
            "organized {organized:.0} vs diagonal {diagonal:.0}"
        );
    }

    #[test]
    fn grid_graph_single_partition() {
        let g = grid_graph(5, 5);
        let (org, _) = organize(&g, 1);
        assert_eq!(org.slots, vec![(0, 0)]);
        assert_eq!(org.layout.len(), 25);
    }

    #[test]
    fn empty_graph() {
        let g = gvdb_graph::GraphBuilder::new_undirected().build();
        let parts = partition(&g, &PartitionConfig::with_k(1));
        let org = organize_partitions(
            &g,
            &parts,
            &[Layout::default()],
            &OrganizerConfig::default(),
        );
        assert_eq!(org.layout.len(), 0);
    }
}
