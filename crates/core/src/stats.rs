//! The Statistics panel: per-layer graph statistics (§III, Web UI panel
//! 6), plus the preprocessing report table (per-stage wall-clock and
//! worker-thread counts — the Table I instrumentation).

use crate::preprocess::PreprocessReport;
use gvdb_abstract::Hierarchy;
use gvdb_graph::GraphMetrics;

/// Statistics for one abstraction layer.
#[derive(Debug, Clone)]
pub struct LayerStats {
    /// Layer index (0 = full graph).
    pub layer: usize,
    /// Graph metrics of the layer.
    pub metrics: GraphMetrics,
}

/// Compute statistics for every layer of a hierarchy.
pub fn hierarchy_stats(h: &Hierarchy) -> Vec<LayerStats> {
    h.layers
        .iter()
        .enumerate()
        .map(|(layer, data)| LayerStats {
            layer,
            metrics: GraphMetrics::compute(&data.graph),
        })
        .collect()
}

/// Render a statistics table as text (the panel's content).
pub fn format_stats(stats: &[LayerStats]) -> String {
    let mut out =
        String::from("layer |    nodes |    edges | avg deg | max deg |  density | components\n");
    for s in stats {
        out.push_str(&format!(
            "{:>5} | {:>8} | {:>8} | {:>7.2} | {:>7} | {:>8.6} | {:>10}\n",
            s.layer,
            s.metrics.nodes,
            s.metrics.edges,
            s.metrics.avg_degree,
            s.metrics.max_degree,
            s.metrics.density,
            s.metrics.components,
        ));
    }
    out
}

/// Render the preprocessing report as a per-stage table: wall-clock,
/// share of total, and worker-thread count for the parallel stages.
/// Comparing a `parallelism: 1` run against a parallel one on the same
/// graph makes the Step 2 / Step 5 speedup directly visible.
pub fn format_preprocess_report(report: &PreprocessReport) -> String {
    let t = &report.times;
    let total = t.total().as_secs_f64().max(f64::MIN_POSITIVE);
    let mut out = String::from("stage              |     wall (ms) | share | threads\n");
    let row = |out: &mut String, name: &str, d: std::time::Duration, threads: Option<usize>| {
        let ms = d.as_secs_f64() * 1e3;
        let share = d.as_secs_f64() / total * 100.0;
        let threads = threads.map_or_else(|| "1".to_string(), |n| n.to_string());
        out.push_str(&format!(
            "{name:<18} | {ms:>13.2} | {share:>4.0}% | {threads:>7}\n"
        ));
    };
    row(&mut out, "1 partitioning", t.partitioning, None);
    row(&mut out, "2 layout", t.layout, Some(report.threads.layout));
    row(&mut out, "3 organize", t.organize, None);
    row(&mut out, "4 abstraction", t.abstraction, None);
    row(
        &mut out,
        "5 store & index",
        t.indexing,
        Some(report.threads.row_building),
    );
    out.push_str(&format!(
        "total              | {:>13.2} |  100% |  k={} cut={}\n",
        t.total().as_secs_f64() * 1e3,
        report.k,
        report.edge_cut
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_abstract::{build_hierarchy, HierarchyConfig};
    use gvdb_graph::generators::barabasi_albert;

    #[test]
    fn stats_for_every_layer() {
        let g = barabasi_albert(200, 2, 1);
        let pos: Vec<(f64, f64)> = (0..200).map(|i| (i as f64, 0.0)).collect();
        let h = build_hierarchy(&g, &pos, &HierarchyConfig::default());
        let stats = hierarchy_stats(&h);
        assert_eq!(stats.len(), h.len());
        assert_eq!(stats[0].metrics.nodes, 200);
        // Layers shrink.
        assert!(stats.last().unwrap().metrics.nodes < 200);
    }

    #[test]
    fn format_is_tabular() {
        let g = barabasi_albert(50, 2, 2);
        let pos: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 0.0)).collect();
        let h = build_hierarchy(&g, &pos, &HierarchyConfig::default());
        let text = format_stats(&hierarchy_stats(&h));
        assert!(text.lines().count() >= 2);
        assert!(text.contains("avg deg"));
    }

    #[test]
    fn preprocess_report_table_lists_all_stages() {
        use crate::preprocess::{preprocess, PreprocessConfig};
        use gvdb_graph::generators::planted_partition;

        let g = planted_partition(2, 30, 5.0, 0.5, 4);
        let mut path = std::env::temp_dir();
        path.push(format!("gvdb-statsrep-{}", std::process::id()));
        let cfg = PreprocessConfig {
            k: Some(2),
            parallelism: 2,
            ..Default::default()
        };
        let (_db, report) = preprocess(&g, &path, &cfg).unwrap();
        let table = format_preprocess_report(&report);
        for stage in [
            "1 partitioning",
            "2 layout",
            "3 organize",
            "4 abstraction",
            "5 store & index",
            "threads",
            "total",
        ] {
            assert!(table.contains(stage), "missing {stage:?} in:\n{table}");
        }
        std::fs::remove_file(&path).ok();
    }
}
