//! The Statistics panel: per-layer graph statistics (§III, Web UI panel 6).

use gvdb_abstract::Hierarchy;
use gvdb_graph::GraphMetrics;

/// Statistics for one abstraction layer.
#[derive(Debug, Clone)]
pub struct LayerStats {
    /// Layer index (0 = full graph).
    pub layer: usize,
    /// Graph metrics of the layer.
    pub metrics: GraphMetrics,
}

/// Compute statistics for every layer of a hierarchy.
pub fn hierarchy_stats(h: &Hierarchy) -> Vec<LayerStats> {
    h.layers
        .iter()
        .enumerate()
        .map(|(layer, data)| LayerStats {
            layer,
            metrics: GraphMetrics::compute(&data.graph),
        })
        .collect()
}

/// Render a statistics table as text (the panel's content).
pub fn format_stats(stats: &[LayerStats]) -> String {
    let mut out = String::from(
        "layer |    nodes |    edges | avg deg | max deg |  density | components\n",
    );
    for s in stats {
        out.push_str(&format!(
            "{:>5} | {:>8} | {:>8} | {:>7.2} | {:>7} | {:>8.6} | {:>10}\n",
            s.layer,
            s.metrics.nodes,
            s.metrics.edges,
            s.metrics.avg_degree,
            s.metrics.max_degree,
            s.metrics.density,
            s.metrics.components,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_abstract::{build_hierarchy, HierarchyConfig};
    use gvdb_graph::generators::barabasi_albert;

    #[test]
    fn stats_for_every_layer() {
        let g = barabasi_albert(200, 2, 1);
        let pos: Vec<(f64, f64)> = (0..200).map(|i| (i as f64, 0.0)).collect();
        let h = build_hierarchy(&g, &pos, &HierarchyConfig::default());
        let stats = hierarchy_stats(&h);
        assert_eq!(stats.len(), h.len());
        assert_eq!(stats[0].metrics.nodes, 200);
        // Layers shrink.
        assert!(stats.last().unwrap().metrics.nodes < 200);
    }

    #[test]
    fn format_is_tabular() {
        let g = barabasi_albert(50, 2, 2);
        let pos: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 0.0)).collect();
        let h = build_hierarchy(&g, &pos, &HierarchyConfig::default());
        let text = format_stats(&hierarchy_stats(&h));
        assert!(text.lines().count() >= 2);
        assert!(text.contains("avg deg"));
    }
}
