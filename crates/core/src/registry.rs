//! The session registry: server-side per-client exploration state.
//!
//! Each client that wants incremental pans registers a [`SessionId`]
//! (`SessionNew`) and tags its window queries with it. The registry maps
//! the id to an anchored [`Session`], so a client's consecutive viewports
//! ride the delta path exactly like an embedded caller's — over a
//! stateless protocol. Every [`crate::QueryManager`] owns one registry,
//! which is what gives a multi-dataset workspace **per-dataset** session
//! registries for free.
//!
//! Capacity: the registry is **bounded**
//! ([`SessionRegistry::with_capacity`], default
//! [`DEFAULT_SESSION_CAPACITY`]). Creating a session at capacity evicts
//! the least-recently-used one — a server that runs for weeks cannot be
//! grown without bound by clients that never say goodbye. Eviction is
//! **O(log n)** via a lazy min-heap over last-used ticks: every touch
//! pushes a `(tick, id)` entry, eviction pops until it finds an entry
//! whose tick still matches the slot (stale entries from older touches
//! are discarded), and the heap is rebuilt whenever stale entries
//! outnumber live ones. On top of the capacity bound, an **idle-TTL
//! sweep** ([`SessionRegistry::set_idle_ttl`], default
//! [`DEFAULT_IDLE_TTL`]) reclaims sessions nobody has touched, before the
//! cap ever bites. Both reclamation paths are counted
//! ([`SessionStats::evictions`] / [`SessionStats::expired`]) and surfaced
//! in `/v1/stats`.
//!
//! Locking: the registry lock is held only to resolve an id to its
//! session handle; each session then has its own mutex, so requests from
//! *different* clients run concurrently and only a client racing itself
//! serializes (which is also what keeps its anchor chain coherent).

use crate::session::Session;
use gvdb_spatial::Rect;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Opaque id of a registered [`Session`].
pub type SessionId = u64;

/// A shared handle on one client's session.
pub type SessionHandle = Arc<Mutex<Session>>;

/// Default maximum number of live sessions (LRU-evicted beyond it).
pub const DEFAULT_SESSION_CAPACITY: usize = 10_000;

/// Default idle TTL: a session untouched this long is reclaimed by the
/// next sweep.
pub const DEFAULT_IDLE_TTL: Duration = Duration::from_secs(30 * 60);

/// Registry lifetime counters (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Sessions currently live.
    pub live: usize,
    /// Sessions ever created.
    pub created: u64,
    /// Sessions evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Sessions reclaimed by the idle-TTL sweep.
    pub expired: u64,
}

#[derive(Debug)]
struct Slot {
    handle: SessionHandle,
    /// Last-touch tick (registry-local LRU clock). The heap entry whose
    /// tick equals this one is the slot's live entry; older heap entries
    /// are stale and discarded lazily.
    tick: u64,
    /// Last-touch wall time, for the idle-TTL sweep.
    last_used: Instant,
}

#[derive(Debug, Default)]
struct Inner {
    sessions: HashMap<SessionId, Slot>,
    /// Lazy min-heap of `(tick, id)` touches; `Reverse` turns the std
    /// max-heap into a min-heap.
    lru: BinaryHeap<Reverse<(u64, SessionId)>>,
}

/// Registry of live sessions (see module docs).
#[derive(Debug)]
pub struct SessionRegistry {
    inner: Mutex<Inner>,
    next: AtomicU64,
    clock: AtomicU64,
    capacity: usize,
    /// Idle TTL in milliseconds; 0 disables the sweep.
    idle_ttl_ms: AtomicU64,
    created: AtomicU64,
    evictions: AtomicU64,
    expired: AtomicU64,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SESSION_CAPACITY)
    }
}

impl SessionRegistry {
    /// An empty registry with the default capacity and TTL.
    pub fn new() -> Self {
        SessionRegistry::default()
    }

    /// An empty registry holding at most `capacity` sessions (min 1),
    /// with the default idle TTL.
    pub fn with_capacity(capacity: usize) -> Self {
        SessionRegistry {
            inner: Mutex::new(Inner::default()),
            next: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            capacity: capacity.max(1),
            idle_ttl_ms: AtomicU64::new(DEFAULT_IDLE_TTL.as_millis() as u64),
            created: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// Change the idle TTL; `None` disables the sweep entirely.
    pub fn set_idle_ttl(&self, ttl: Option<Duration>) {
        let ms = ttl.map_or(0, |t| (t.as_millis() as u64).max(1));
        self.idle_ttl_ms.store(ms, Ordering::Relaxed);
    }

    /// Register a new session starting at `window`; returns its id. At
    /// capacity, the least-recently-used session is evicted to make room
    /// (its id stops resolving; an in-flight request holding the handle
    /// finishes normally). Idle sessions past the TTL are swept first.
    pub fn create(&self, window: Rect) -> SessionId {
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.created.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        self.sweep_expired(&mut inner, Instant::now());
        while inner.sessions.len() >= self.capacity {
            if !self.evict_lru(&mut inner) {
                break;
            }
        }
        inner.sessions.insert(
            id,
            Slot {
                handle: Arc::new(Mutex::new(Session::new(window))),
                tick,
                last_used: Instant::now(),
            },
        );
        inner.lru.push(Reverse((tick, id)));
        id
    }

    /// The session handle for `id`, if it is still registered and not
    /// expired. Refreshes its LRU position and idle timer.
    pub fn get(&self, id: SessionId) -> Option<SessionHandle> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let ttl = self.ttl();
        let mut inner = self.inner.lock();
        let slot = inner.sessions.get_mut(&id)?;
        let now = Instant::now();
        if let Some(ttl) = ttl {
            if now.duration_since(slot.last_used) > ttl {
                inner.sessions.remove(&id);
                self.expired.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        slot.tick = tick;
        slot.last_used = now;
        let handle = slot.handle.clone();
        inner.lru.push(Reverse((tick, id)));
        // Compact once stale heap entries (from older touches) dominate.
        if inner.lru.len() > 2 * inner.sessions.len() + 64 {
            inner.lru = inner
                .sessions
                .iter()
                .map(|(&id, slot)| Reverse((slot.tick, id)))
                .collect();
        }
        Some(handle)
    }

    /// Drop a session (its id stops resolving; in-flight requests holding
    /// the handle finish normally).
    pub fn remove(&self, id: SessionId) -> bool {
        self.inner.lock().sessions.remove(&id).is_some()
    }

    /// Number of live sessions (expired-but-unswept sessions count until
    /// the next create/stats sweep touches them).
    pub fn len(&self) -> usize {
        self.inner.lock().sessions.len()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().sessions.is_empty()
    }

    /// Lifetime counters. Runs an idle sweep first, so `expired` reflects
    /// sessions that timed out since the last touch.
    pub fn stats(&self) -> SessionStats {
        let mut inner = self.inner.lock();
        self.sweep_expired(&mut inner, Instant::now());
        SessionStats {
            live: inner.sessions.len(),
            created: self.created.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
        }
    }

    fn ttl(&self) -> Option<Duration> {
        match self.idle_ttl_ms.load(Ordering::Relaxed) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        }
    }

    /// Pop heap entries until one matches a live slot's current tick,
    /// then evict that slot. Returns false when the heap runs dry.
    fn evict_lru(&self, inner: &mut Inner) -> bool {
        while let Some(Reverse((tick, id))) = inner.lru.pop() {
            let live = inner
                .sessions
                .get(&id)
                .is_some_and(|slot| slot.tick == tick);
            if live {
                inner.sessions.remove(&id);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            // Stale entry (the session was touched again, removed, or
            // expired since this push): discard and keep popping.
        }
        false
    }

    /// Remove every session idle past the TTL.
    fn sweep_expired(&self, inner: &mut Inner, now: Instant) {
        let Some(ttl) = self.ttl() else { return };
        let before = inner.sessions.len();
        inner
            .sessions
            .retain(|_, slot| now.duration_since(slot.last_used) <= ttl);
        let swept = before - inner.sessions.len();
        if swept > 0 {
            self.expired.fetch_add(swept as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_remove_roundtrip() {
        let reg = SessionRegistry::new();
        assert!(reg.is_empty());
        let id = reg.create(Rect::new(0.0, 0.0, 10.0, 10.0));
        let other = reg.create(Rect::new(5.0, 5.0, 15.0, 15.0));
        assert_ne!(id, other);
        assert_eq!(reg.len(), 2);
        assert!(reg.get(id).is_some());
        assert!(reg.get(9_999).is_none());
        assert!(reg.remove(id));
        assert!(!reg.remove(id), "double remove reports absence");
        assert!(reg.get(id).is_none());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.stats().created, 2);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let reg = SessionRegistry::with_capacity(3);
        let a = reg.create(Rect::new(0.0, 0.0, 1.0, 1.0));
        let b = reg.create(Rect::new(0.0, 0.0, 1.0, 1.0));
        let c = reg.create(Rect::new(0.0, 0.0, 1.0, 1.0));
        // Touch `a` so `b` becomes the LRU, then overflow.
        assert!(reg.get(a).is_some());
        let d = reg.create(Rect::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(reg.len(), 3, "registry must stay at capacity");
        assert!(reg.get(b).is_none(), "LRU session evicted");
        assert!(reg.get(a).is_some(), "recently used survives");
        assert!(reg.get(c).is_some());
        assert!(reg.get(d).is_some());
        assert_eq!(reg.stats().evictions, 1);
    }

    #[test]
    fn heap_evicts_correctly_under_many_touches() {
        // Stale heap entries (one per touch) must never cause a
        // recently-used session to be evicted.
        let reg = SessionRegistry::with_capacity(4);
        let ids: Vec<_> = (0..4)
            .map(|_| reg.create(Rect::new(0.0, 0.0, 1.0, 1.0)))
            .collect();
        // Touch everything but ids[2], many times, in rotating order.
        for round in 0..100 {
            for (i, &id) in ids.iter().enumerate() {
                if i != 2 && (round + i) % 2 == 0 {
                    assert!(reg.get(id).is_some());
                }
            }
        }
        let newcomer = reg.create(Rect::new(0.0, 0.0, 1.0, 1.0));
        assert!(reg.get(ids[2]).is_none(), "the untouched session goes");
        for (i, &id) in ids.iter().enumerate() {
            if i != 2 {
                assert!(reg.get(id).is_some(), "session {i} must survive");
            }
        }
        assert!(reg.get(newcomer).is_some());
    }

    #[test]
    fn idle_sessions_expire() {
        let reg = SessionRegistry::with_capacity(10);
        reg.set_idle_ttl(Some(Duration::from_millis(30)));
        let old = reg.create(Rect::new(0.0, 0.0, 1.0, 1.0));
        std::thread::sleep(Duration::from_millis(60));
        // Direct lookup of an expired session fails and counts.
        assert!(reg.get(old).is_none(), "expired session must not resolve");
        let stats = reg.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.live, 0);

        // The sweep reclaims without anyone touching the expired id.
        let a = reg.create(Rect::new(0.0, 0.0, 1.0, 1.0));
        std::thread::sleep(Duration::from_millis(60));
        let b = reg.create(Rect::new(0.0, 0.0, 1.0, 1.0));
        assert!(reg.get(b).is_some());
        let stats = reg.stats();
        assert_eq!(stats.expired, 2, "create sweeps the idle session");
        assert_eq!(stats.live, 1);
        assert!(reg.get(a).is_none());

        // Disabling the TTL stops the sweep.
        reg.set_idle_ttl(None);
        std::thread::sleep(Duration::from_millis(60));
        assert!(reg.get(b).is_some(), "no TTL, no expiry");
    }

    #[test]
    fn ids_are_unique_across_threads() {
        let reg = Arc::new(SessionRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    (0..50)
                        .map(|_| reg.create(Rect::new(0.0, 0.0, 1.0, 1.0)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<SessionId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 50, "no id may be handed out twice");
        assert_eq!(reg.len(), 8 * 50);
    }
}
