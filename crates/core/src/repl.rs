//! The replication seam between the serving layer and the scale-out
//! subsystem.
//!
//! The HTTP server exposes the replication endpoints (`/v1/repl/*`,
//! `/v1/shardmap`) but knows nothing about shipping, following, or
//! routing — it delegates every such request to a [`ReplProvider`]
//! installed at startup. The `gvdb-replication` crate implements the
//! trait for each role (leader, follower, router); a server started
//! without one answers the endpoints with *not found*, exactly like a
//! pre-replication build.
//!
//! Keeping the trait here — and the implementations out of the server's
//! dependency graph — preserves the layering: `server → core` only,
//! `replication → {storage, core, api, client}`, and the binary wires
//! the two together.

use gvdb_api::repl::ReplStatsDto;
use gvdb_api::ApiResult;

/// One node's replication personality, as seen by the HTTP server.
///
/// Every method answers with the **canonical JSON text** of the wire
/// DTO (see `gvdb_api::repl`) — the server writes it through verbatim,
/// so byte-level response stability is owned by one serializer, not
/// two. Methods a role does not serve return their default error:
/// e.g. a follower has no checkpoint archive to serve and a leader
/// accepts no pushed checkpoints.
pub trait ReplProvider: Send + Sync {
    /// `GET /v1/repl/status` — role, applied checkpoint seq, per-layer
    /// epochs, and the archived checkpoint seqs available for catch-up
    /// (`gvdb_api::repl::ReplStatusDto`).
    fn status_json(&self) -> ApiResult<String>;

    /// `GET /v1/repl/checkpoint?seq=N` — the archived checkpoint image
    /// `N` as a `gvdb_api::repl::CheckpointDto` (CRC-stamped, base64).
    /// Leaders only; *not found* when `N` fell out of retention (the
    /// follower must resync via [`ReplProvider::snapshot_json`]).
    fn checkpoint_json(&self, seq: u64) -> ApiResult<String>;

    /// `GET /v1/repl/snapshot` — a full database snapshot
    /// (`gvdb_api::repl::SnapshotDto`) for a follower whose position is
    /// older than the oldest retained checkpoint. Leaders only.
    fn snapshot_json(&self) -> ApiResult<String>;

    /// `POST /v1/repl/checkpoint` — a checkpoint pushed by the leader;
    /// the body is a `gvdb_api::repl::CheckpointDto`. Followers only.
    /// Returns the follower's new status JSON.
    fn apply_checkpoint_json(&self, body: &str) -> ApiResult<String>;

    /// `GET /v1/shardmap` — the shard map this node routes by
    /// (`gvdb_api::repl::ShardMapDto`). Routers only.
    fn shard_map_json(&self) -> ApiResult<String>;

    /// The gauges surfaced under `replication` in `/v1/stats`.
    fn stats(&self) -> ReplStatsDto;
}
