//! The Birdview panel: a downsampled density image of the whole plane
//! ("a large-scale image of the whole graph on the plane", §III).
//!
//! Node positions are binned into a fixed raster; cell values are node
//! counts. The UI would ship this as a PNG; here it renders as ASCII art
//! (examples) and as the raw grid (tests, HTTP endpoint).

use gvdb_spatial::Rect;

/// A density raster over the layout plane.
#[derive(Debug, Clone)]
pub struct Birdview {
    width: usize,
    height: usize,
    counts: Vec<u32>,
    bounds: Rect,
}

impl Birdview {
    /// Rasterize `positions` into a `width x height` grid. Bounds are the
    /// positions' bounding box (or the unit square when empty).
    pub fn from_positions(positions: &[(f64, f64)], width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "raster must be non-empty");
        let bounds = if positions.is_empty() {
            Rect::new(0.0, 0.0, 1.0, 1.0)
        } else {
            let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
            let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            for &(x, y) in positions {
                min_x = min_x.min(x);
                min_y = min_y.min(y);
                max_x = max_x.max(x);
                max_y = max_y.max(y);
            }
            Rect::new(min_x, min_y, max_x.max(min_x + 1.0), max_y.max(min_y + 1.0))
        };
        let mut counts = vec![0u32; width * height];
        for &(x, y) in positions {
            let cx = (((x - bounds.min_x) / bounds.width()) * width as f64)
                .clamp(0.0, width as f64 - 1.0) as usize;
            let cy = (((y - bounds.min_y) / bounds.height()) * height as f64)
                .clamp(0.0, height as f64 - 1.0) as usize;
            counts[cy * width + cx] += 1;
        }
        Birdview {
            width,
            height,
            counts,
            bounds,
        }
    }

    /// Raster width in cells.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raster height in cells.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Plane bounds covered by the raster.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Node count in cell `(x, y)`.
    pub fn count(&self, x: usize, y: usize) -> u32 {
        self.counts[y * self.width + x]
    }

    /// Total nodes rasterized.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// The plane rectangle corresponding to cell `(x, y)` — clicking the
    /// birdview navigates the main window there.
    pub fn cell_window(&self, x: usize, y: usize) -> Rect {
        let cw = self.bounds.width() / self.width as f64;
        let ch = self.bounds.height() / self.height as f64;
        Rect::new(
            self.bounds.min_x + x as f64 * cw,
            self.bounds.min_y + y as f64 * ch,
            self.bounds.min_x + (x + 1) as f64 * cw,
            self.bounds.min_y + (y + 1) as f64 * ch,
        )
    }

    /// ASCII density rendering (space → `.` → `:` → `*` → `#` by load).
    pub fn to_ascii(&self) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let c = self.count(x, y);
                let ch = if c == 0 {
                    ' '
                } else {
                    let t = c as f64 / max as f64;
                    match t {
                        t if t < 0.25 => '.',
                        t if t < 0.5 => ':',
                        t if t < 0.75 => '*',
                        _ => '#',
                    }
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_preserve_total() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, (i * 7 % 100) as f64)).collect();
        let bv = Birdview::from_positions(&pts, 10, 10);
        assert_eq!(bv.total(), 100);
    }

    #[test]
    fn clustered_points_land_in_one_cell() {
        let pts = vec![(5.0, 5.0); 50];
        let bv = Birdview::from_positions(&pts, 4, 4);
        let max = (0..4)
            .flat_map(|y| (0..4).map(move |x| (x, y)))
            .map(|(x, y)| bv.count(x, y))
            .max()
            .unwrap();
        assert_eq!(max, 50);
    }

    #[test]
    fn cell_window_tiles_the_bounds() {
        let pts = vec![(0.0, 0.0), (100.0, 100.0)];
        let bv = Birdview::from_positions(&pts, 5, 5);
        let w00 = bv.cell_window(0, 0);
        let w44 = bv.cell_window(4, 4);
        assert!((w00.min_x - 0.0).abs() < 1e-9);
        assert!((w44.max_x - 100.0).abs() < 1e-9);
        assert!((w00.width() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn ascii_has_expected_shape() {
        let pts = vec![(0.0, 0.0); 10];
        let bv = Birdview::from_positions(&pts, 8, 3);
        let art = bv.to_ascii();
        assert_eq!(art.lines().count(), 3);
        assert!(art.lines().all(|l| l.chars().count() == 8));
        assert!(art.contains('#'));
    }

    #[test]
    fn empty_positions_ok() {
        let bv = Birdview::from_positions(&[], 4, 4);
        assert_eq!(bv.total(), 0);
        assert!(bv.to_ascii().contains(' '));
    }

    #[test]
    #[should_panic(expected = "raster must be non-empty")]
    fn zero_size_panics() {
        Birdview::from_positions(&[], 0, 4);
    }
}
