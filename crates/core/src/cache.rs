//! A sharded LRU cache for window-query results — the online hot path's
//! answer to the paper's multi-user serving claim.
//!
//! Exploration traffic is heavily repetitive: every pan re-enters
//! overlapping windows, popular regions are visited by many users, and a
//! browser "back" replays an identical `(layer, window)` pair. The
//! [`WindowCache`] sits in front of `QueryManager::window_query` and
//! serves repeats without touching the R-tree, heap file, or JSON
//! builder.
//!
//! Design:
//!
//! * **Key** — `(layer, quantized window)`. Coordinates are `f64`s, which
//!   neither hash nor compare for equality reliably, so the key quantizes
//!   each coordinate to a fixed grid ([`CacheConfig::quantum`], default
//!   10⁻³ plane units). The *exact* window is stored alongside the entry
//!   and compared bit-for-bit on lookup, so two distinct windows that
//!   collide on the quantized key can never serve each other's rows —
//!   quantization only buckets, it never changes results.
//! * **Sharding** — the key hash picks one of [`CacheConfig::shards`]
//!   independently locked shards, so concurrent sessions rarely contend
//!   on the same mutex (the query path itself is `&self` and fully
//!   concurrent, like the buffer pool underneath).
//! * **LRU** — each shard evicts its least-recently-used entry when it
//!   exceeds `capacity / shards` entries.
//! * **Partial hits** — a window that misses the exact-match map is
//!   matched against *overlapping* cached windows on the same layer
//!   ([`WindowCache::best_overlap`]); the query manager's delta path then
//!   reuses the overlap and queries only the difference strips. Entries
//!   carry the row set, its rid key column, the payload with its span
//!   index, and a node-reference count index ([`CachedWindow`]) so the
//!   delta is assembled without re-deduplicating or re-serializing
//!   surviving data.
//! * **Invalidation** — layer-aware edits (`QueryManager::insert_row` /
//!   `delete_row`) drop only the edited layer's entries
//!   ([`WindowCache::invalidate_layer`]); raw `QueryManager::db_mut`
//!   access clears everything. Either way a stale row can never be
//!   served after an edit.
//! * **Epoch validation** — every entry records the *edit epoch* of its
//!   layer at the time its rows were read (see
//!   `QueryManager::layer_epoch`). Lookups pass the current epoch and an
//!   entry whose epoch differs is treated as a miss and pruned, so even
//!   an entry inserted by a query that raced an edit (computed before the
//!   edit, inserted after the invalidation swept the shard) can never be
//!   served: its recorded epoch is behind the layer's.
//!
//! Hits, partial hits and misses are counted globally
//! ([`WindowCache::stats`]) and surfaced per-response through
//! `WindowResponse::cache_hit` / `WindowResponse::delta`; per-shard
//! occupancy is reported by [`WindowCache::shard_stats`].

use crate::json::GraphJson;
use gvdb_storage::{EdgeRow, RowId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gvdb_spatial::Rect;

/// Cache sizing and keying parameters.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum cached window results across all shards.
    pub capacity: usize,
    /// Approximate memory budget (bytes) across all shards. Entry sizes
    /// are estimated from row labels and JSON text; entries are evicted
    /// (LRU first) to stay under budget, and a single result bigger than
    /// one shard's budget is simply not cached — a handful of whole-plane
    /// queries cannot pin the dataset in RAM many times over.
    pub max_bytes: usize,
    /// Number of independently locked shards.
    pub shards: usize,
    /// Quantization grid (plane units) for bucketing window coordinates.
    pub quantum: f64,
    /// Minimum fraction of a requested window an overlapping cached
    /// window must cover before the delta path engages (default
    /// [`crate::query::MIN_DELTA_OVERLAP`]). Set above `1.0` to disable
    /// partial hits entirely — benchmarks use this to measure the cold
    /// path against the same traffic.
    pub min_delta_overlap: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 512,
            max_bytes: 64 << 20, // 64 MiB
            // Same shards-vs-cores policy as the buffer pool, so the two
            // stripe counts always move together.
            shards: gvdb_storage::default_shards(),
            quantum: 1e-3,
            min_delta_overlap: crate::query::MIN_DELTA_OVERLAP,
        }
    }
}

/// Hit/miss/occupancy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served whole from the cache (exact window match).
    pub hits: u64,
    /// Lookups that fell through to the database.
    pub misses: u64,
    /// The subset of `misses` that found an *overlapping* cached window
    /// ([`WindowCache::best_overlap`]) and were answered by the delta
    /// path — only the non-overlapping strips touched the database.
    pub partial_hits: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Approximate bytes held by cached entries.
    pub bytes: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-shard occupancy snapshot (see [`WindowCache::shard_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheShardStats {
    /// Entries currently cached in this shard.
    pub entries: usize,
    /// Approximate bytes held by this shard's entries.
    pub bytes: usize,
}

/// A cached window-query result: the DB rows and the client payload built
/// from them. The fields are `Arc`s shared with the
/// [`crate::query::WindowResponse`]s built from this entry, so cloning a
/// `CachedWindow` — which is all a hit does — is two reference-count
/// bumps, no row or JSON copying (sessions that filter use copy-on-write
/// via `Arc::make_mut`).
#[derive(Debug, Clone)]
pub struct CachedWindow {
    /// The rows in the window, ascending by [`RowId`] — the canonical
    /// order of every query path, which lets the delta path binary-search
    /// and two-way merge instead of hashing.
    pub rows: Arc<Vec<(RowId, EdgeRow)>>,
    /// The key column of `rows` (same order): membership tests in the
    /// delta path walk this compact array sequentially instead of
    /// striding through the 100-byte row structs.
    pub rids: Arc<Vec<RowId>>,
    /// The serialized client payload.
    pub json: Arc<GraphJson>,
    /// Sorted `(node id, incident row count)` pairs over `rows`. The
    /// delta path updates this incrementally and reads orphaned nodes
    /// (count reaching zero) straight off the update, instead of
    /// re-deduplicating every node in the window.
    pub node_refs: Arc<Vec<(u64, u32)>>,
}

impl CachedWindow {
    /// Estimated heap footprint: struct sizes plus the variable-length
    /// parts (labels, JSON text, span and node indexes). Good to within a
    /// small constant factor, which is all a budget needs.
    pub fn approx_bytes(&self) -> usize {
        let row_fixed = std::mem::size_of::<(RowId, EdgeRow)>();
        let labels: usize = self
            .rows
            .iter()
            .map(|(_, r)| r.node1_label.len() + r.node2_label.len() + r.edge_label.len())
            .sum();
        self.rows.len() * row_fixed
            + labels
            + self.json.approx_heap_bytes()
            + self.rids.len() * std::mem::size_of::<RowId>()
            + self.node_refs.len() * std::mem::size_of::<(u64, u32)>()
    }

    /// Build the node-reference index for `rows`: each distinct node id
    /// with the number of rows touching it, sorted by id. The cold query
    /// path computes this once per window; delta queries then maintain it
    /// incrementally.
    pub fn count_node_refs(rows: &[(RowId, EdgeRow)]) -> Vec<(u64, u32)> {
        let mut ids: Vec<u64> = Vec::with_capacity(rows.len() * 2);
        for (_, r) in rows {
            ids.push(r.node1_id);
            ids.push(r.node2_id);
        }
        ids.sort_unstable();
        let mut out: Vec<(u64, u32)> = Vec::new();
        for id in ids {
            match out.last_mut() {
                Some((last, c)) if *last == id => *c += 1,
                _ => out.push((id, 1)),
            }
        }
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    layer: usize,
    qx0: i64,
    qy0: i64,
    qx1: i64,
    qy1: i64,
}

#[derive(Debug)]
struct Entry {
    /// The exact window this entry answers. Compared bit-for-bit on
    /// lookup (collision-proof), and intersected with incoming windows by
    /// the overlap scan of the delta path.
    rect: Rect,
    /// The layer's edit epoch when this entry's rows were read. An entry
    /// is only served while its layer is still at this epoch.
    epoch: u64,
    /// Last-touched tick (shard-local LRU clock).
    tick: u64,
    /// Cached [`CachedWindow::approx_bytes`] (stable for an entry's life).
    bytes: usize,
    value: CachedWindow,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
    bytes: usize,
}

impl Shard {
    fn remove_lru(&mut self) -> bool {
        let Some(lru) = self.map.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| *k) else {
            return false;
        };
        if let Some(e) = self.map.remove(&lru) {
            self.bytes -= e.bytes;
        }
        true
    }
}

/// The sharded LRU cache over window-query results.
#[derive(Debug)]
pub struct WindowCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    per_shard_bytes: usize,
    quantum: f64,
    min_delta_overlap: f64,
    hits: AtomicU64,
    misses: AtomicU64,
    partial_hits: AtomicU64,
}

impl WindowCache {
    /// Build a cache from `config` (shards and capacity are clamped to at
    /// least 1).
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let capacity = config.capacity.max(1);
        WindowCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(shards),
            per_shard_bytes: config.max_bytes.max(1).div_ceil(shards),
            quantum: if config.quantum > 0.0 {
                config.quantum
            } else {
                1e-3
            },
            min_delta_overlap: config.min_delta_overlap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            partial_hits: AtomicU64::new(0),
        }
    }

    fn key(&self, layer: usize, window: &Rect) -> CacheKey {
        let q = |v: f64| {
            let scaled = v / self.quantum;
            // Saturate instead of overflowing for absurd windows (±1e12
            // "whole plane" probes are routine in tests).
            if scaled >= i64::MAX as f64 {
                i64::MAX
            } else if scaled <= i64::MIN as f64 {
                i64::MIN
            } else {
                scaled.round() as i64
            }
        };
        CacheKey {
            layer,
            qx0: q(window.min_x),
            qy0: q(window.min_y),
            qx1: q(window.max_x),
            qy1: q(window.max_y),
        }
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    fn exact_bits(window: &Rect) -> [u64; 4] {
        [
            window.min_x.to_bits(),
            window.min_y.to_bits(),
            window.max_x.to_bits(),
            window.max_y.to_bits(),
        ]
    }

    /// Look up `(layer, window)` at the layer's current edit `epoch`;
    /// counts a hit or miss. An entry recorded at a different epoch is a
    /// miss (and is pruned — its rows predate an edit).
    pub fn get(&self, layer: usize, window: &Rect, epoch: u64) -> Option<CachedWindow> {
        match self.peek(layer, window, epoch) {
            Some(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Exact lookup without touching the hit/miss counters (the delta
    /// path probes its anchor window this way before deciding how to
    /// account the query). Refreshes the entry's LRU position. Entries
    /// whose recorded epoch differs from `epoch` are pruned, never
    /// returned.
    pub fn peek(&self, layer: usize, window: &Rect, epoch: u64) -> Option<CachedWindow> {
        let key = self.key(layer, window);
        let exact = Self::exact_bits(window);
        let mut shard = self
            .shard_for(&key)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shard.clock += 1;
        let tick = shard.clock;
        if let Some(entry) = shard.map.get_mut(&key) {
            if Self::exact_bits(&entry.rect) == exact {
                if entry.epoch != epoch {
                    if let Some(stale) = shard.map.remove(&key) {
                        shard.bytes -= stale.bytes;
                    }
                    return None;
                }
                entry.tick = tick;
                return Some(entry.value.clone());
            }
        }
        None
    }

    /// Best *overlapping* cached window on `layer`: the entry whose
    /// window covers the largest fraction of `window`, if that fraction
    /// is at least `min_fraction`. Returns the cached window's rectangle
    /// (the delta anchor) together with its rows and payload.
    ///
    /// This is the partial-hit lookup of the incremental viewport path: a
    /// pan that misses the exact-match map almost always overlaps the
    /// previous viewport's entry, and reusing it turns a full R-tree +
    /// heap query into a query over up to four thin strips. The scan
    /// walks every shard (entries are hashed by quantized rect, so
    /// overlap can't be looked up directly), which at the cache's few
    /// hundred entries is nanoseconds next to a window query. Counts a
    /// partial hit and refreshes the chosen entry's LRU position; the
    /// exact-match miss is still counted by the [`WindowCache::get`] that
    /// preceded this call.
    pub fn best_overlap(
        &self,
        layer: usize,
        window: &Rect,
        epoch: u64,
        min_fraction: f64,
    ) -> Option<(Rect, CachedWindow)> {
        let area = window.area();
        if area <= 0.0 {
            return None;
        }
        let mut best: Option<(f64, usize, CacheKey, Rect, CachedWindow)> = None;
        for (idx, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (key, entry) in shard.map.iter() {
                if key.layer != layer || entry.epoch != epoch {
                    continue;
                }
                let covered = entry.rect.intersection_area(window) / area;
                if covered >= min_fraction && best.as_ref().is_none_or(|(f, ..)| covered > *f) {
                    best = Some((covered, idx, *key, entry.rect, entry.value.clone()));
                }
            }
        }
        let (_, idx, key, rect, value) = best?;
        // Refresh the chosen entry's LRU position (it may have been
        // evicted between the scan and this relock; that's fine).
        let mut shard = self.shards[idx].lock().unwrap_or_else(|e| e.into_inner());
        shard.clock += 1;
        let tick = shard.clock;
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.tick = tick;
        }
        drop(shard);
        self.partial_hits.fetch_add(1, Ordering::Relaxed);
        Some((rect, value))
    }

    /// Insert a result for `(layer, window)` computed at the layer's edit
    /// `epoch`, evicting least-recently-used entries while the shard is
    /// over its entry or byte budget. A result that alone exceeds the
    /// shard's byte budget is not cached at all — caching it would evict
    /// everything else for one query that will rarely repeat. A
    /// quantized-key collision overwrites (newest exact window wins).
    pub fn insert(&self, layer: usize, window: &Rect, epoch: u64, value: CachedWindow) {
        let bytes = value.approx_bytes();
        if bytes > self.per_shard_bytes {
            return;
        }
        let key = self.key(layer, window);
        let mut shard = self
            .shard_for(&key)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shard.clock += 1;
        let tick = shard.clock;
        if let Some(old) = shard.map.remove(&key) {
            shard.bytes -= old.bytes;
        }
        while (shard.map.len() >= self.per_shard_capacity
            || shard.bytes + bytes > self.per_shard_bytes)
            && shard.remove_lru()
        {}
        shard.bytes += bytes;
        shard.map.insert(
            key,
            Entry {
                rect: *window,
                epoch,
                tick,
                bytes,
                value,
            },
        );
    }

    /// The configured minimum covered fraction for the delta path
    /// ([`CacheConfig::min_delta_overlap`]).
    pub fn min_delta_overlap(&self) -> f64 {
        self.min_delta_overlap
    }

    /// Count a partial hit that was resolved outside
    /// [`WindowCache::best_overlap`] (the anchored fast path peeks its
    /// entry directly but is still a partial hit for accounting).
    pub(crate) fn count_partial_hit(&self) {
        self.partial_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every entry (after a mutation whose target layer is unknown,
    /// e.g. raw [`crate::QueryManager::db_mut`] access).
    pub fn invalidate_all(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            shard.map.clear();
            shard.bytes = 0;
        }
    }

    /// Drop only the entries of one layer (after an edit through the
    /// layer-aware edit path). Windows cached for *other* layers stay
    /// valid — each layer is an independent table, so an edit on layer
    /// `i` can never be masked by a cached window of layer `j ≠ i`.
    pub fn invalidate_layer(&self, layer: usize) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            let mut freed = 0usize;
            shard.map.retain(|key, entry| {
                if key.layer == layer {
                    freed += entry.bytes;
                    false
                } else {
                    true
                }
            });
            shard.bytes -= freed;
        }
    }

    /// Per-shard occupancy (index = shard). Sums to the `entries`/`bytes`
    /// of [`WindowCache::stats`]; the spread shows whether window traffic
    /// is striping evenly across shard locks.
    pub fn shard_stats(&self) -> Vec<CacheShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock().unwrap_or_else(|e| e.into_inner());
                CacheShardStats {
                    entries: s.map.len(),
                    bytes: s.bytes,
                }
            })
            .collect()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            partial_hits: self.partial_hits.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
                .sum(),
            bytes: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).bytes)
                .sum(),
        }
    }
}

impl Default for WindowCache {
    fn default() -> Self {
        WindowCache::new(CacheConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvdb_storage::{EdgeGeometry, PageId};

    fn cached(rows: usize) -> CachedWindow {
        let rows = (0..rows)
            .map(|i| {
                (
                    RowId {
                        page: PageId(1),
                        slot: i as u16,
                    },
                    EdgeRow {
                        node1_id: i as u64,
                        node1_label: format!("n{i}").into(),
                        geometry: EdgeGeometry {
                            x1: 0.0,
                            y1: 0.0,
                            x2: 1.0,
                            y2: 1.0,
                            directed: false,
                        },
                        edge_label: "".into(),
                        node2_id: i as u64 + 1,
                        node2_label: format!("n{}", i + 1).into(),
                    },
                )
            })
            .collect::<Vec<_>>();
        let json = crate::json::build_graph_json(&rows);
        let node_refs = CachedWindow::count_node_refs(&rows);
        let rids = rows.iter().map(|(rid, _)| *rid).collect();
        CachedWindow {
            rows: Arc::new(rows),
            rids: Arc::new(rids),
            json: Arc::new(json),
            node_refs: Arc::new(node_refs),
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = WindowCache::default();
        let w = Rect::new(0.0, 0.0, 100.0, 100.0);
        assert!(cache.get(0, &w, 0).is_none());
        cache.insert(0, &w, 0, cached(3));
        let hit = cache.get(0, &w, 0).expect("hit");
        assert_eq!(hit.rows.len(), 3);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn layer_is_part_of_the_key() {
        let cache = WindowCache::default();
        let w = Rect::new(0.0, 0.0, 10.0, 10.0);
        cache.insert(0, &w, 0, cached(1));
        assert!(cache.get(1, &w, 0).is_none());
        assert!(cache.get(0, &w, 0).is_some());
    }

    #[test]
    fn quantized_collision_never_serves_wrong_window() {
        // Two windows within one quantum of each other share a bucket but
        // must not share results.
        let cache = WindowCache::new(CacheConfig {
            quantum: 1.0,
            ..CacheConfig::default()
        });
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(0.1, 0.1, 10.1, 10.1); // same quantized key
        cache.insert(0, &a, 0, cached(5));
        assert!(
            cache.get(0, &b, 0).is_none(),
            "exact-window check must reject"
        );
        assert!(cache.get(0, &a, 0).is_some());
    }

    #[test]
    fn eviction_at_capacity_is_lru() {
        let cache = WindowCache::new(CacheConfig {
            capacity: 4,
            shards: 1,
            ..CacheConfig::default()
        });
        let w = |i: usize| Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0);
        for i in 0..4 {
            cache.insert(0, &w(i), 0, cached(i + 1));
        }
        // Touch 0 so 1 becomes the LRU, then overflow.
        assert!(cache.get(0, &w(0), 0).is_some());
        cache.insert(0, &w(4), 0, cached(5));
        assert_eq!(cache.stats().entries, 4);
        assert!(cache.get(0, &w(1), 0).is_none(), "LRU entry evicted");
        assert!(cache.get(0, &w(0), 0).is_some(), "recently used survives");
        assert!(cache.get(0, &w(4), 0).is_some(), "new entry present");
    }

    #[test]
    fn best_overlap_finds_the_biggest_cover() {
        let cache = WindowCache::default();
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 0.0, 15.0, 10.0);
        cache.insert(0, &a, 0, cached(3));
        cache.insert(0, &b, 0, cached(4));
        // A window mostly inside `b`.
        let w = Rect::new(6.0, 0.0, 14.0, 10.0);
        let (anchor, value) = cache.best_overlap(0, &w, 0, 0.5).expect("partial hit");
        assert_eq!(anchor, b);
        assert_eq!(value.rows.len(), 4);
        assert_eq!(cache.stats().partial_hits, 1);
        // Wrong layer: nothing.
        assert!(cache.best_overlap(1, &w, 0, 0.5).is_none());
        // Fraction threshold respected.
        let far = Rect::new(100.0, 100.0, 110.0, 110.0);
        assert!(cache.best_overlap(0, &far, 0, 0.1).is_none());
    }

    #[test]
    fn peek_does_not_count() {
        let cache = WindowCache::default();
        let w = Rect::new(0.0, 0.0, 5.0, 5.0);
        assert!(cache.peek(0, &w, 0).is_none());
        cache.insert(0, &w, 0, cached(2));
        assert!(cache.peek(0, &w, 0).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }

    #[test]
    fn invalidate_layer_spares_other_layers() {
        let cache = WindowCache::default();
        for layer in 0..3 {
            for i in 0..8 {
                cache.insert(
                    layer,
                    &Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0),
                    0,
                    cached(2),
                );
            }
        }
        let before = cache.stats();
        assert_eq!(before.entries, 24);
        cache.invalidate_layer(1);
        let after = cache.stats();
        assert_eq!(after.entries, 16, "only layer 1's entries dropped");
        assert!(after.bytes < before.bytes);
        assert!(cache.get(1, &Rect::new(0.0, 0.0, 1.0, 1.0), 0).is_none());
        assert!(cache.get(0, &Rect::new(0.0, 0.0, 1.0, 1.0), 0).is_some());
        assert!(cache.get(2, &Rect::new(0.0, 0.0, 1.0, 1.0), 0).is_some());
    }

    #[test]
    fn invalidate_all_clears_every_shard() {
        let cache = WindowCache::default();
        for i in 0..32 {
            cache.insert(
                0,
                &Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0),
                0,
                cached(1),
            );
        }
        assert!(cache.stats().entries > 0);
        cache.invalidate_all();
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.get(0, &Rect::new(0.0, 0.0, 1.0, 1.0), 0).is_none());
    }

    #[test]
    fn byte_budget_evicts_and_refuses_oversized() {
        let one_entry_bytes = cached(10).approx_bytes();
        let cache = WindowCache::new(CacheConfig {
            capacity: 1_000,
            max_bytes: one_entry_bytes * 3, // one shard, fits ~3 entries
            shards: 1,
            quantum: 1e-3,
            ..CacheConfig::default()
        });
        let w = |i: usize| Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0);
        for i in 0..6 {
            cache.insert(0, &w(i), 0, cached(10));
        }
        let stats = cache.stats();
        assert!(
            stats.entries <= 3,
            "byte budget must bound entries, got {}",
            stats.entries
        );
        assert!(stats.bytes <= one_entry_bytes * 3);
        // An entry alone bigger than the whole budget is refused outright.
        cache.invalidate_all();
        cache.insert(0, &w(0), 0, cached(1_000));
        assert_eq!(cache.stats().entries, 0, "oversized result not cached");
        // ...but normal entries still cache afterwards.
        cache.insert(0, &w(1), 0, cached(10));
        assert!(cache.get(0, &w(1), 0).is_some());
    }

    #[test]
    fn invalidate_resets_byte_accounting() {
        let cache = WindowCache::default();
        cache.insert(0, &Rect::new(0.0, 0.0, 1.0, 1.0), 0, cached(20));
        assert!(cache.stats().bytes > 0);
        cache.invalidate_all();
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn whole_plane_windows_do_not_overflow() {
        let cache = WindowCache::default();
        let w = Rect::new(-1e12, -1e12, 1e12, 1e12);
        cache.insert(3, &w, 0, cached(2));
        assert!(cache.get(3, &w, 0).is_some());
    }

    #[test]
    fn concurrent_hammering_is_consistent() {
        let cache = Arc::new(WindowCache::default());
        let w = Rect::new(0.0, 0.0, 50.0, 50.0);
        cache.insert(0, &w, 0, cached(7));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    let w = Rect::new(0.0, 0.0, 50.0, 50.0);
                    for _ in 0..500 {
                        let hit = cache.get(0, &w, 0).expect("entry stays");
                        assert_eq!(hit.rows.len(), 7);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().hits, 8 * 500);
    }

    #[test]
    fn stale_epoch_entry_is_a_miss_and_pruned() {
        let cache = WindowCache::default();
        let w = Rect::new(0.0, 0.0, 100.0, 100.0);
        cache.insert(0, &w, 3, cached(4));
        assert!(cache.get(0, &w, 3).is_some(), "matching epoch serves");
        // An edit bumped the layer to epoch 4: the entry must never be
        // served again, and the probe prunes it.
        assert!(cache.get(0, &w, 4).is_none(), "stale epoch rejected");
        assert_eq!(cache.stats().entries, 0, "stale entry pruned");
        // Same for the overlap scan of the delta path.
        cache.insert(0, &w, 3, cached(4));
        let probe = Rect::new(10.0, 0.0, 110.0, 100.0);
        assert!(cache.best_overlap(0, &probe, 3, 0.5).is_some());
        assert!(
            cache.best_overlap(0, &probe, 4, 0.5).is_none(),
            "delta anchors must be epoch-checked too"
        );
    }

    #[test]
    fn shard_stats_sum_to_totals() {
        let cache = WindowCache::default();
        for i in 0..24 {
            cache.insert(
                0,
                &Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0),
                0,
                cached(2),
            );
        }
        let total = cache.stats();
        let shards = cache.shard_stats();
        assert_eq!(
            shards.iter().map(|s| s.entries).sum::<usize>(),
            total.entries
        );
        assert_eq!(shards.iter().map(|s| s.bytes).sum::<usize>(), total.bytes);
        assert!(
            shards.iter().filter(|s| s.entries > 0).count() > 1,
            "entries must stripe across shards"
        );
    }
}
