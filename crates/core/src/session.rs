//! Interactive exploration sessions: the server-side state behind the
//! paper's Web UI panels — viewport (Visualization), layer selection
//! (Control), filters (Filter), and edits (Edit).
//!
//! A [`Session`] tracks the client's viewing window in plane coordinates.
//! Every user action maps onto a [`crate::QueryManager`] call, exactly as
//! §II-B describes: panning moves the window; vertical navigation switches
//! the layer table; zoom rescales the window; keyword hits recenter it.

use crate::query::{QueryManager, WindowResponse};
use gvdb_spatial::{Point, Rect};
use gvdb_storage::{EdgeRow, Result, RowId, StorageError};
use std::collections::HashSet;

/// Client-side filter state (the Filter panel): hide edges by label and
/// nodes by label substring (e.g., hide RDF literals).
#[derive(Debug, Clone, Default)]
pub struct Filters {
    /// Edge labels to hide (exact match).
    pub hidden_edge_labels: HashSet<String>,
    /// Node-label substrings to hide; a row is dropped when either
    /// endpoint matches.
    pub hidden_node_substrings: Vec<String>,
}

impl Filters {
    /// Whether a row survives the filters.
    pub fn keeps(&self, row: &EdgeRow) -> bool {
        if self.hidden_edge_labels.contains(&*row.edge_label) {
            return false;
        }
        for s in &self.hidden_node_substrings {
            if row.node1_label.contains(s.as_str()) || row.node2_label.contains(s.as_str()) {
                return false;
            }
        }
        true
    }
}

/// One user's exploration session.
#[derive(Debug)]
pub struct Session {
    layer: usize,
    window: Rect,
    zoom: f64,
    filters: Filters,
    /// The window *before* the most recent pan/zoom on the current
    /// layer — the delta anchor passed to
    /// [`QueryManager::window_query_anchored`], so consecutive viewports
    /// reuse their overlap instead of re-running the full query. Cleared
    /// on layer changes (an anchor never spans layers).
    anchor: Option<Rect>,
}

impl Session {
    /// Start a session on layer 0 with the given initial window.
    pub fn new(window: Rect) -> Self {
        Session {
            layer: 0,
            window,
            zoom: 1.0,
            filters: Filters::default(),
            anchor: None,
        }
    }

    /// The delta anchor the next [`Session::view`] will pass along (the
    /// previous window on this layer, if any).
    pub fn anchor(&self) -> Option<Rect> {
        self.anchor
    }

    /// Remember the current window as the anchor for the next view.
    fn rebase_anchor(&mut self) {
        self.anchor = Some(self.window);
    }

    /// Current abstraction layer.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// Current viewing window.
    pub fn window(&self) -> Rect {
        self.window
    }

    /// Current zoom factor (1.0 = native).
    pub fn zoom(&self) -> f64 {
        self.zoom
    }

    /// Mutable filter state.
    pub fn filters_mut(&mut self) -> &mut Filters {
        &mut self.filters
    }

    /// Whether any display filter is active — a filtered view rebuilds
    /// its payload from the filtered rows, so the streaming path cannot
    /// slice the cached (unfiltered) payload directly.
    pub fn has_filters(&self) -> bool {
        !self.filters.hidden_edge_labels.is_empty()
            || !self.filters.hidden_node_substrings.is_empty()
    }

    /// Fetch the current viewport's sub-graph, filters applied. The
    /// previous window on this layer rides along as the delta anchor, so
    /// a view following a pan or zoom is answered incrementally (see
    /// [`QueryManager::window_query_anchored`]).
    pub fn view(&self, qm: &QueryManager) -> Result<WindowResponse> {
        let mut resp = qm.window_query_anchored(self.layer, &self.window, self.anchor.as_ref())?;
        if !self.filters.hidden_edge_labels.is_empty()
            || !self.filters.hidden_node_substrings.is_empty()
        {
            // Copy-on-write: the response may share its rows with the
            // window cache; make_mut clones only in that case, so the
            // cached (unfiltered) entry is never mutated.
            let rows = std::sync::Arc::make_mut(&mut resp.rows);
            rows.retain(|(_, row)| self.filters.keeps(row));
            // Rebuild the payload from the filtered rows (filtering is a
            // client-side concept, but the server prunes the stream),
            // priced with the manager's configured client model.
            resp.json = std::sync::Arc::new(crate::json::build_graph_json(rows));
            resp.client = qm.client_model().deliver(&resp.json);
        }
        Ok(resp)
    }

    /// Horizontal navigation: move the window by `(dx, dy)` plane units.
    /// The pre-pan window becomes the delta anchor of the next view.
    pub fn pan(&mut self, dx: f64, dy: f64) {
        self.rebase_anchor();
        self.window = Rect::new(
            self.window.min_x + dx,
            self.window.min_y + dy,
            self.window.max_x + dx,
            self.window.max_y + dy,
        );
    }

    /// Zoom: `factor > 1` zooms in (smaller window), `< 1` zooms out —
    /// "the size of the window ... is decreased/increased proportionally
    /// according to the zoom level".
    ///
    /// # Panics
    /// Panics if `factor` is not positive.
    pub fn zoom_by(&mut self, factor: f64) {
        assert!(factor > 0.0, "zoom factor must be positive");
        self.rebase_anchor();
        self.zoom *= factor;
        let c = self.window.center();
        let w = self.window.width() / factor;
        let h = self.window.height() / factor;
        self.window = Rect::centered(c, w, h);
    }

    /// Vertical navigation: move one layer up (more abstract).
    pub fn layer_up(&mut self, qm: &QueryManager) -> Result<()> {
        if self.layer + 1 >= qm.layer_count() {
            return Err(StorageError::LayerNotFound(format!(
                "no layer above {}",
                self.layer
            )));
        }
        self.layer += 1;
        self.anchor = None;
        Ok(())
    }

    /// Vertical navigation: move one layer down (more detail).
    pub fn layer_down(&mut self) -> Result<()> {
        if self.layer == 0 {
            return Err(StorageError::LayerNotFound("no layer below 0".into()));
        }
        self.layer -= 1;
        self.anchor = None;
        Ok(())
    }

    /// Jump to a specific layer.
    pub fn set_layer(&mut self, qm: &QueryManager, layer: usize) -> Result<()> {
        if layer >= qm.layer_count() {
            return Err(StorageError::LayerNotFound(format!("index {layer}")));
        }
        if layer != self.layer {
            self.anchor = None;
        }
        self.layer = layer;
        Ok(())
    }

    /// Recenter the window on a point (keyword-search result click). The
    /// pre-focus window anchors the next view — a focus jump near the
    /// current viewport still pans incrementally.
    pub fn focus(&mut self, p: Point) {
        self.rebase_anchor();
        self.window = Rect::centered(p, self.window.width(), self.window.height());
    }

    /// Jump the viewport to an absolute window (how a stateless HTTP
    /// client expresses a pan/zoom: each request carries the full target
    /// rectangle). The previous window becomes the delta anchor, so a
    /// session-tagged request overlapping its predecessor is answered
    /// incrementally exactly like a [`Session::pan`]. A no-op when the
    /// window is unchanged (the anchor is left alone so an exact repeat
    /// stays an exact cache hit).
    pub fn navigate(&mut self, window: Rect) {
        if window == self.window {
            return;
        }
        self.rebase_anchor();
        self.window = window;
    }

    /// Zoom with automatic vertical navigation — the paper's coupling of
    /// zoom and layer ("Vertical navigation can be combined with
    /// traditional zoom in/out operations in order to give the impression
    /// of a lower/higher perspective"): each halving of the zoom level
    /// moves one abstraction layer up, each doubling one layer down.
    ///
    /// Returns the layer in effect after the operation.
    pub fn zoom_with_auto_layer(&mut self, qm: &QueryManager, factor: f64) -> Result<usize> {
        self.zoom_by(factor);
        // zoom = 1.0 -> layer 0; 0.5 -> 1; 0.25 -> 2; ... Clamp into range.
        let ideal = (-self.zoom.log2()).floor();
        let max_layer = qm.layer_count().saturating_sub(1);
        let target = if ideal <= 0.0 {
            0
        } else {
            (ideal as usize).min(max_layer)
        };
        self.layer = target;
        Ok(target)
    }

    /// Edit: persist a new edge drawn on the canvas. Goes through the
    /// layer-aware shared edit path (`&QueryManager` — concurrent
    /// sessions keep reading while the edit briefly takes the write
    /// lock), so only this layer's cached windows are invalidated and
    /// only this layer's epoch advances.
    pub fn add_edge(&self, qm: &QueryManager, row: &EdgeRow) -> Result<RowId> {
        qm.insert_row(self.layer, row)
    }

    /// Edit: delete an edge from the canvas (layer-scoped invalidation,
    /// see [`Session::add_edge`]).
    pub fn delete_edge(&self, qm: &QueryManager, rid: RowId) -> Result<()> {
        qm.delete_row(self.layer, rid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use gvdb_graph::generators::wikidata_like;
    use gvdb_graph::generators::RdfConfig;
    use gvdb_storage::EdgeGeometry;

    fn setup(name: &str) -> (QueryManager, std::path::PathBuf) {
        let g = wikidata_like(RdfConfig {
            entities: 300,
            ..Default::default()
        });
        let mut path = std::env::temp_dir();
        path.push(format!("gvdb-session-{name}-{}", std::process::id()));
        let (db, _) = preprocess(
            &g,
            &path,
            &PreprocessConfig {
                k: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        (QueryManager::new(db), path)
    }

    #[test]
    fn pan_moves_window() {
        let (_qm, path) = setup("pan");
        let mut s = Session::new(Rect::new(0.0, 0.0, 100.0, 100.0));
        s.pan(50.0, -20.0);
        assert_eq!(s.window(), Rect::new(50.0, -20.0, 150.0, 80.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zoom_rescales_around_center() {
        let (_qm, path) = setup("zoom");
        let mut s = Session::new(Rect::new(0.0, 0.0, 100.0, 100.0));
        s.zoom_by(2.0);
        assert_eq!(s.window(), Rect::new(25.0, 25.0, 75.0, 75.0));
        s.zoom_by(0.5);
        assert_eq!(s.window(), Rect::new(0.0, 0.0, 100.0, 100.0));
        assert!((s.zoom() - 1.0).abs() < 1e-12);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn layer_navigation_bounds_checked() {
        let (qm, path) = setup("layers");
        let mut s = Session::new(Rect::new(0.0, 0.0, 500.0, 500.0));
        assert!(s.layer_down().is_err());
        s.layer_up(&qm).unwrap();
        assert_eq!(s.layer(), 1);
        s.layer_down().unwrap();
        assert_eq!(s.layer(), 0);
        assert!(s.set_layer(&qm, 999).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filters_hide_rdf_literals() {
        let (qm, path) = setup("filters");
        let mut s = Session::new(Rect::new(-1e9, -1e9, 1e9, 1e9));
        let unfiltered = s.view(&qm).unwrap().rows.len();
        s.filters_mut().hidden_node_substrings.push("\"".into()); // literals
        let filtered = s.view(&qm).unwrap();
        assert!(filtered.rows.len() < unfiltered);
        for (_, row) in filtered.rows.iter() {
            assert!(!row.node1_label.starts_with('"'));
            assert!(!row.node2_label.starts_with('"'));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filters_hide_edge_types() {
        let (qm, path) = setup("edgefilter");
        let mut s = Session::new(Rect::new(-1e9, -1e9, 1e9, 1e9));
        s.filters_mut()
            .hidden_edge_labels
            .insert("rdfs:label".into());
        let resp = s.view(&qm).unwrap();
        assert!(resp
            .rows
            .iter()
            .all(|(_, r)| &*r.edge_label != "rdfs:label"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edit_roundtrip_via_session() {
        let (qm, path) = setup("edit");
        let s = Session::new(Rect::new(0.0, 0.0, 10.0, 10.0));
        let row = EdgeRow {
            node1_id: 900_001,
            node1_label: "manual node A".into(),
            geometry: EdgeGeometry {
                x1: 1.0,
                y1: 1.0,
                x2: 9.0,
                y2: 9.0,
                directed: false,
            },
            edge_label: "hand-drawn".into(),
            node2_id: 900_002,
            node2_label: "manual node B".into(),
        };
        let rid = s.add_edge(&qm, &row).unwrap();
        let resp = s.view(&qm).unwrap();
        assert!(resp.rows.iter().any(|(r, _)| *r == rid));
        s.delete_edge(&qm, rid).unwrap();
        let resp = s.view(&qm).unwrap();
        assert!(!resp.rows.iter().any(|(r, _)| *r == rid));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "zoom factor must be positive")]
    fn invalid_zoom_panics() {
        let mut s = Session::new(Rect::new(0.0, 0.0, 1.0, 1.0));
        s.zoom_by(0.0);
    }

    #[test]
    fn pan_view_rides_the_delta_path() {
        let (qm, path) = setup("deltaview");
        let mut s = Session::new(Rect::new(0.0, 0.0, 2000.0, 2000.0));
        assert!(s.anchor().is_none());
        let first = s.view(&qm).unwrap();
        assert!(!first.delta && !first.cache_hit);

        s.pan(300.0, 0.0); // 85% overlap
        assert_eq!(s.anchor(), Some(Rect::new(0.0, 0.0, 2000.0, 2000.0)));
        let second = s.view(&qm).unwrap();
        assert!(second.delta, "a panned view must be incremental");
        assert!(second.rows_reused > 0);
        // The delta result matches a cold query of the same window.
        // (One guard for both lookups: re-entrant `qm.db()` calls in a
        // single expression could deadlock against a queued writer.)
        let db = qm.db();
        let cold = db
            .layer(0)
            .unwrap()
            .window(db.pool(), &s.window(), true)
            .unwrap();
        drop(db);
        assert_eq!(*second.rows, cold);

        // Zoom keeps anchoring too.
        s.zoom_by(1.25);
        let third = s.view(&qm).unwrap();
        assert!(third.delta || third.cache_hit);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn navigate_anchors_like_a_pan() {
        let (qm, path) = setup("navigate");
        let mut s = Session::new(Rect::new(0.0, 0.0, 2000.0, 2000.0));
        let first = s.view(&qm).unwrap();
        assert!(!first.delta && !first.cache_hit);

        // An absolute jump overlapping the previous window (how an HTTP
        // client pans) must ride the delta path.
        s.navigate(Rect::new(300.0, 0.0, 2300.0, 2000.0));
        assert_eq!(s.anchor(), Some(Rect::new(0.0, 0.0, 2000.0, 2000.0)));
        let second = s.view(&qm).unwrap();
        assert!(second.delta, "overlapping navigate must be incremental");

        // Navigating to the same window is a no-op: the anchor survives
        // and the repeat is an exact cache hit.
        let anchor = s.anchor();
        s.navigate(s.window());
        assert_eq!(s.anchor(), anchor);
        assert!(s.view(&qm).unwrap().cache_hit);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn layer_change_clears_the_anchor() {
        let (qm, path) = setup("anchorclear");
        let mut s = Session::new(Rect::new(0.0, 0.0, 800.0, 800.0));
        s.pan(10.0, 10.0);
        assert!(s.anchor().is_some());
        s.layer_up(&qm).unwrap();
        assert!(s.anchor().is_none(), "anchors never span layers");
        s.pan(5.0, 5.0);
        s.layer_down().unwrap();
        assert!(s.anchor().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn session_edits_keep_other_layers_cached() {
        let (qm, path) = setup("scopededit");
        let w = Rect::new(-1e6, -1e6, 1e6, 1e6);
        let s0 = Session::new(w);
        let mut s1 = Session::new(w);
        s1.set_layer(&qm, 1).unwrap();
        s0.view(&qm).unwrap();
        s1.view(&qm).unwrap();

        let row = EdgeRow {
            node1_id: 910_001,
            node1_label: "scoped A".into(),
            geometry: EdgeGeometry {
                x1: 0.0,
                y1: 0.0,
                x2: 5.0,
                y2: 5.0,
                directed: false,
            },
            edge_label: "scoped".into(),
            node2_id: 910_002,
            node2_label: "scoped B".into(),
        };
        s0.add_edge(&qm, &row).unwrap();
        assert!(!s0.view(&qm).unwrap().cache_hit, "edited layer refreshed");
        assert!(
            s1.view(&qm).unwrap().cache_hit,
            "the other layer's cached window survives the edit"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn auto_layer_follows_zoom() {
        let (qm, path) = setup("autolayer");
        let layers = qm.layer_count();
        assert!(layers >= 3, "need a few layers for this test");
        let mut s = Session::new(Rect::new(0.0, 0.0, 1000.0, 1000.0));
        // Zoom out by 2x: one layer up.
        assert_eq!(s.zoom_with_auto_layer(&qm, 0.5).unwrap(), 1);
        // Another 2x out: layer 2.
        assert_eq!(s.zoom_with_auto_layer(&qm, 0.5).unwrap(), 2);
        // Way out: clamped to the top layer.
        assert_eq!(
            s.zoom_with_auto_layer(&qm, 1.0 / 1024.0).unwrap(),
            layers - 1
        );
        // Zoom back in past native: layer 0.
        assert_eq!(s.zoom_with_auto_layer(&qm, 8192.0).unwrap(), 0);
        std::fs::remove_file(&path).ok();
    }
}
