//! Multi-dataset workspaces: the demo's dataset selector (§IV: "attendees
//! will first select a dataset from a number of real-word datasets (e.g.,
//! ACM, DBLP, DBpedia)").
//!
//! Two flavours:
//!
//! * [`Workspace`] — the original `&mut`-based container for embedded,
//!   single-threaded use (one owner, exclusive mutation).
//! * [`SharedWorkspace`] — the thread-safe container the server binds:
//!   datasets live behind `Arc<QueryManager>` in an `RwLock`ed map, so
//!   any number of worker threads resolve names concurrently while
//!   datasets can still be registered at runtime. It implements
//!   [`crate::GraphService`], giving every dataset its own session
//!   registry, epochs and cache isolation.
//!
//! Both reject duplicate names ([`gvdb_storage::StorageError::LayerExists`])
//! and list the available names in their not-found errors, so a typo'd
//! `dataset=` selector is self-explanatory.

use crate::query::QueryManager;
use gvdb_api::ApiError;
use gvdb_storage::{GraphDb, Result, StorageError};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// The "available: …" tail of every missing-dataset error.
fn available(names: &[String]) -> String {
    if names.is_empty() {
        "none".to_string()
    } else {
        names.join(", ")
    }
}

/// "dataset 'x' (available: a, b)" — shared by both flavours.
fn not_found(name: &str, names: &[String]) -> StorageError {
    StorageError::LayerNotFound(format!(
        "dataset '{name}' (available: {})",
        available(names)
    ))
}

/// A named collection of preprocessed graph databases (single-owner).
#[derive(Debug, Default)]
pub struct Workspace {
    datasets: BTreeMap<String, QueryManager>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Register an already-open database under `name`. Replaces any
    /// previous dataset with the same name (use [`Workspace::open`] for
    /// duplicate-rejecting registration).
    pub fn add(&mut self, name: impl Into<String>, db: GraphDb) {
        self.datasets.insert(name.into(), QueryManager::new(db));
    }

    /// Open a database file and register it under `name`. A duplicate
    /// name is rejected ([`StorageError::LayerExists`]) instead of
    /// silently replacing the open dataset.
    pub fn open(&mut self, name: impl Into<String>, path: &Path) -> Result<()> {
        let name = name.into();
        if self.datasets.contains_key(&name) {
            return Err(StorageError::LayerExists(format!("dataset '{name}'")));
        }
        let db = GraphDb::open(path)?;
        self.add(name, db);
        Ok(())
    }

    /// Dataset names, sorted (what the Control panel's selector lists).
    pub fn names(&self) -> Vec<&str> {
        self.datasets.keys().map(String::as_str).collect()
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// Whether the workspace is empty.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// The query manager for `name`. The error of a missing dataset lists
    /// what is available.
    pub fn dataset(&self, name: &str) -> Result<&QueryManager> {
        self.datasets
            .get(name)
            .ok_or_else(|| not_found(name, &self.datasets.keys().cloned().collect::<Vec<_>>()))
    }

    /// Mutable access (edit operations).
    pub fn dataset_mut(&mut self, name: &str) -> Result<&mut QueryManager> {
        if !self.datasets.contains_key(name) {
            let names: Vec<String> = self.datasets.keys().cloned().collect();
            return Err(not_found(name, &names));
        }
        Ok(self.datasets.get_mut(name).expect("checked above"))
    }

    /// Remove a dataset, returning its query manager (dropping it closes
    /// nothing on disk — the file remains openable).
    pub fn remove(&mut self, name: &str) -> Option<QueryManager> {
        self.datasets.remove(name)
    }
}

/// A thread-safe, shared multi-dataset workspace (see module docs): what
/// `gvdb serve` binds when given several `<name>=<path>` datasets.
#[derive(Debug, Default)]
pub struct SharedWorkspace {
    datasets: RwLock<BTreeMap<String, Arc<QueryManager>>>,
}

impl SharedWorkspace {
    /// An empty workspace.
    pub fn new() -> Self {
        SharedWorkspace::default()
    }

    /// Register an already-open database under `name` (duplicate names
    /// are rejected).
    pub fn add(&self, name: impl Into<String>, db: GraphDb) -> Result<()> {
        self.add_manager(name, Arc::new(QueryManager::new(db)))
    }

    /// Register an existing manager under `name` (duplicate names are
    /// rejected). Lets callers share a manager with embedded readers or
    /// configure its cache before serving.
    pub fn add_manager(&self, name: impl Into<String>, qm: Arc<QueryManager>) -> Result<()> {
        let name = name.into();
        let mut datasets = self.datasets.write();
        if datasets.contains_key(&name) {
            return Err(StorageError::LayerExists(format!("dataset '{name}'")));
        }
        datasets.insert(name, qm);
        Ok(())
    }

    /// Open a database file and register it under `name`.
    pub fn open(&self, name: impl Into<String>, path: &Path) -> Result<()> {
        let db = GraphDb::open(path)?;
        self.add(name, db)
    }

    /// Dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.datasets.read().keys().cloned().collect()
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.datasets.read().len()
    }

    /// Whether the workspace is empty.
    pub fn is_empty(&self) -> bool {
        self.datasets.read().is_empty()
    }

    /// The query manager for `name`.
    pub fn dataset(&self, name: &str) -> Result<Arc<QueryManager>> {
        let datasets = self.datasets.read();
        datasets
            .get(name)
            .cloned()
            .ok_or_else(|| not_found(name, &datasets.keys().cloned().collect::<Vec<_>>()))
    }

    /// Remove a dataset, returning its manager.
    pub fn remove(&self, name: &str) -> Option<Arc<QueryManager>> {
        self.datasets.write().remove(name)
    }

    /// Every `(name, manager)` pair, name-sorted (snapshot).
    pub fn entries(&self) -> Vec<(String, Arc<QueryManager>)> {
        self.datasets
            .read()
            .iter()
            .map(|(name, qm)| (name.clone(), Arc::clone(qm)))
            .collect()
    }

    /// Resolve a request's dataset selector: an explicit name must exist;
    /// no name is allowed only when exactly one dataset is registered.
    pub fn resolve(
        &self,
        name: Option<&str>,
    ) -> std::result::Result<(String, Arc<QueryManager>), ApiError> {
        let datasets = self.datasets.read();
        match name {
            Some(n) => match datasets.get(n) {
                Some(qm) => Ok((n.to_string(), Arc::clone(qm))),
                None => {
                    let names: Vec<String> = datasets.keys().cloned().collect();
                    Err(ApiError::not_found(format!(
                        "dataset '{n}' not found (available: {})",
                        available(&names)
                    )))
                }
            },
            None if datasets.len() == 1 => {
                let (name, qm) = datasets.iter().next().expect("len checked");
                Ok((name.clone(), Arc::clone(qm)))
            }
            None => Err(ApiError::bad_request(format!(
                "this workspace serves {} datasets; pass dataset=<name> (available: {})",
                datasets.len(),
                datasets.keys().cloned().collect::<Vec<_>>().join(", ")
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use crate::session::Session;
    use gvdb_graph::generators::{patent_like, wikidata_like, CitationConfig, RdfConfig};
    use gvdb_spatial::Rect;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gvdb-ws-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn select_between_datasets() {
        let rdf_path = tmp("rdf");
        let cite_path = tmp("cite");
        let rdf = wikidata_like(RdfConfig {
            entities: 200,
            ..Default::default()
        });
        let cite = patent_like(CitationConfig {
            nodes: 300,
            ..Default::default()
        });
        let cfg = PreprocessConfig {
            k: Some(2),
            ..Default::default()
        };
        let (rdf_db, _) = preprocess(&rdf, &rdf_path, &cfg).unwrap();
        let (cite_db, _) = preprocess(&cite, &cite_path, &cfg).unwrap();

        let mut ws = Workspace::new();
        ws.add("DBpedia-like", rdf_db);
        ws.add("Patents", cite_db);
        assert_eq!(ws.names(), vec!["DBpedia-like", "Patents"]);

        // One session per dataset; both serve window queries independently.
        let everything = Rect::new(-1e12, -1e12, 1e12, 1e12);
        let s1 = Session::new(everything);
        let s2 = Session::new(everything);
        let v1 = s1.view(ws.dataset("DBpedia-like").unwrap()).unwrap();
        let v2 = s2.view(ws.dataset("Patents").unwrap()).unwrap();
        // Patent rows are citations (plus empty-labelled isolated-node rows).
        assert!(v2
            .rows
            .iter()
            .all(|(_, r)| &*r.edge_label == "cites" || r.edge_label.is_empty()));
        assert!(v1
            .rows
            .iter()
            .any(|(_, r)| r.edge_label.starts_with("wdt:") || r.edge_label.starts_with("rdfs:")));

        // Unknown dataset errors cleanly — and names the alternatives.
        let err = ws.dataset("ACM").unwrap_err().to_string();
        assert!(
            err.contains("DBpedia-like") && err.contains("Patents"),
            "{err}"
        );
        // Removal.
        assert!(ws.remove("Patents").is_some());
        assert_eq!(ws.len(), 1);

        std::fs::remove_file(&rdf_path).ok();
        std::fs::remove_file(&cite_path).ok();
    }

    #[test]
    fn open_from_disk() {
        let path = tmp("open");
        let g = patent_like(CitationConfig {
            nodes: 100,
            ..Default::default()
        });
        {
            let cfg = PreprocessConfig {
                k: Some(1),
                ..Default::default()
            };
            let (mut db, _) = preprocess(&g, &path, &cfg).unwrap();
            db.flush().unwrap();
        }
        let mut ws = Workspace::new();
        ws.open("patents", &path).unwrap();
        assert_eq!(ws.dataset("patents").unwrap().layer_count(), 5);
        assert!(ws.open("missing", &tmp("nonexistent")).is_err());
        // Re-opening an already-registered name is a conflict, not a
        // silent replacement.
        assert!(matches!(
            ws.open("patents", &path),
            Err(StorageError::LayerExists(_))
        ));
        assert_eq!(ws.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_workspace_is_shareable_and_duplicate_safe() {
        let path = tmp("shared");
        let g = patent_like(CitationConfig {
            nodes: 150,
            ..Default::default()
        });
        {
            let cfg = PreprocessConfig {
                k: Some(1),
                ..Default::default()
            };
            let (mut db, _) = preprocess(&g, &path, &cfg).unwrap();
            db.flush().unwrap();
        }
        let ws = Arc::new(SharedWorkspace::new());
        ws.open("patents", &path).unwrap();
        assert!(matches!(
            ws.open("patents", &path),
            Err(StorageError::LayerExists(_))
        ));

        // Resolution from several threads at once.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let ws = Arc::clone(&ws);
                std::thread::spawn(move || {
                    let (name, qm) = ws.resolve(None).unwrap();
                    assert_eq!(name, "patents");
                    qm.layer_count()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 5);
        }

        // Unknown names list the alternatives.
        let err = ws.resolve(Some("acm")).unwrap_err();
        assert!(err.message.contains("patents"), "{}", err.message);
        std::fs::remove_file(&path).ok();
    }
}
