//! Multi-dataset workspace: the demo's dataset selector (§IV: "attendees
//! will first select a dataset from a number of real-word datasets (e.g.,
//! ACM, DBLP, DBpedia)").
//!
//! A [`Workspace`] holds several preprocessed databases side by side, each
//! behind its own [`QueryManager`]; sessions pick a dataset by name.

use crate::query::QueryManager;
use gvdb_storage::{GraphDb, Result, StorageError};
use std::collections::BTreeMap;
use std::path::Path;

/// A named collection of preprocessed graph databases.
#[derive(Debug, Default)]
pub struct Workspace {
    datasets: BTreeMap<String, QueryManager>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Register an already-open database under `name`. Replaces any
    /// previous dataset with the same name.
    pub fn add(&mut self, name: impl Into<String>, db: GraphDb) {
        self.datasets.insert(name.into(), QueryManager::new(db));
    }

    /// Open a database file and register it under `name`.
    pub fn open(&mut self, name: impl Into<String>, path: &Path) -> Result<()> {
        let db = GraphDb::open(path)?;
        self.add(name, db);
        Ok(())
    }

    /// Dataset names, sorted (what the Control panel's selector lists).
    pub fn names(&self) -> Vec<&str> {
        self.datasets.keys().map(String::as_str).collect()
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// Whether the workspace is empty.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// The query manager for `name`.
    pub fn dataset(&self, name: &str) -> Result<&QueryManager> {
        self.datasets
            .get(name)
            .ok_or_else(|| StorageError::LayerNotFound(format!("dataset {name}")))
    }

    /// Mutable access (edit operations).
    pub fn dataset_mut(&mut self, name: &str) -> Result<&mut QueryManager> {
        self.datasets
            .get_mut(name)
            .ok_or_else(|| StorageError::LayerNotFound(format!("dataset {name}")))
    }

    /// Remove a dataset, returning its query manager (dropping it closes
    /// nothing on disk — the file remains openable).
    pub fn remove(&mut self, name: &str) -> Option<QueryManager> {
        self.datasets.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use crate::session::Session;
    use gvdb_graph::generators::{patent_like, wikidata_like, CitationConfig, RdfConfig};
    use gvdb_spatial::Rect;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gvdb-ws-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn select_between_datasets() {
        let rdf_path = tmp("rdf");
        let cite_path = tmp("cite");
        let rdf = wikidata_like(RdfConfig {
            entities: 200,
            ..Default::default()
        });
        let cite = patent_like(CitationConfig {
            nodes: 300,
            ..Default::default()
        });
        let cfg = PreprocessConfig {
            k: Some(2),
            ..Default::default()
        };
        let (rdf_db, _) = preprocess(&rdf, &rdf_path, &cfg).unwrap();
        let (cite_db, _) = preprocess(&cite, &cite_path, &cfg).unwrap();

        let mut ws = Workspace::new();
        ws.add("DBpedia-like", rdf_db);
        ws.add("Patents", cite_db);
        assert_eq!(ws.names(), vec!["DBpedia-like", "Patents"]);

        // One session per dataset; both serve window queries independently.
        let everything = Rect::new(-1e12, -1e12, 1e12, 1e12);
        let s1 = Session::new(everything);
        let s2 = Session::new(everything);
        let v1 = s1.view(ws.dataset("DBpedia-like").unwrap()).unwrap();
        let v2 = s2.view(ws.dataset("Patents").unwrap()).unwrap();
        // Patent rows are citations (plus empty-labelled isolated-node rows).
        assert!(v2
            .rows
            .iter()
            .all(|(_, r)| &*r.edge_label == "cites" || r.edge_label.is_empty()));
        assert!(v1
            .rows
            .iter()
            .any(|(_, r)| r.edge_label.starts_with("wdt:") || r.edge_label.starts_with("rdfs:")));

        // Unknown dataset errors cleanly.
        assert!(ws.dataset("ACM").is_err());
        // Removal.
        assert!(ws.remove("Patents").is_some());
        assert_eq!(ws.len(), 1);

        std::fs::remove_file(&rdf_path).ok();
        std::fs::remove_file(&cite_path).ok();
    }

    #[test]
    fn open_from_disk() {
        let path = tmp("open");
        let g = patent_like(CitationConfig {
            nodes: 100,
            ..Default::default()
        });
        {
            let cfg = PreprocessConfig {
                k: Some(1),
                ..Default::default()
            };
            let (mut db, _) = preprocess(&g, &path, &cfg).unwrap();
            db.flush().unwrap();
        }
        let mut ws = Workspace::new();
        ws.open("patents", &path).unwrap();
        assert_eq!(ws.dataset("patents").unwrap().layer_count(), 5);
        assert!(ws.open("missing", &tmp("nonexistent")).is_err());
        std::fs::remove_file(&path).ok();
    }
}
