//! Property-based tests for the R*-tree and geometry primitives.

use gvdb_spatial::{geom::segments_intersect, Point, RTree, Rect, Segment};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..1000.0, 0.0f64..1000.0, 0.0f64..100.0, 0.0f64..100.0)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn window_query_is_exact(
        rects in prop::collection::vec(arb_rect(), 0..400),
        window in arb_rect(),
    ) {
        let entries: Vec<(Rect, usize)> =
            rects.into_iter().enumerate().map(|(i, r)| (r, i)).collect();
        let tree = RTree::bulk_load(entries.clone());
        tree.check_invariants();
        let mut got: Vec<usize> = tree.window(&window).map(|(_, v)| *v).collect();
        let mut want: Vec<usize> = entries
            .iter()
            .filter(|(r, _)| r.intersects(&window))
            .map(|(_, v)| *v)
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn nearest_is_globally_nearest(
        rects in prop::collection::vec(arb_rect(), 1..200),
        qx in -100.0f64..1200.0,
        qy in -100.0f64..1200.0,
    ) {
        let entries: Vec<(Rect, usize)> =
            rects.into_iter().enumerate().map(|(i, r)| (r, i)).collect();
        let tree = RTree::bulk_load(entries.clone());
        let q = Point::new(qx, qy);
        let first = tree.nearest(q, 1)[0];
        let best = entries
            .iter()
            .map(|(r, _)| r.distance2_to_point(&q))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((first.0.distance2_to_point(&q) - best).abs() < 1e-9);
    }

    #[test]
    fn incremental_inserts_maintain_invariants(
        rects in prop::collection::vec(arb_rect(), 1..300)
    ) {
        let mut tree = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
        }
        prop_assert_eq!(tree.check_invariants(), rects.len());
        // Bounds cover every entry.
        let b = tree.bounds().unwrap();
        for r in &rects {
            prop_assert!(b.contains_rect(r));
        }
    }

    #[test]
    fn union_is_commutative_and_covering(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert_eq!(u, b.union(&a));
        prop_assert!(u.contains_rect(&a) && u.contains_rect(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    #[test]
    fn intersection_area_symmetric_and_bounded(a in arb_rect(), b in arb_rect()) {
        let i = a.intersection_area(&b);
        prop_assert!((i - b.intersection_area(&a)).abs() < 1e-9);
        prop_assert!(i <= a.area() + 1e-9 && i <= b.area() + 1e-9);
        prop_assert_eq!(i > 0.0, a.intersects(&b) && {
            // touching rects intersect with zero area
            let w = a.max_x.min(b.max_x) - a.min_x.max(b.min_x);
            let h = a.max_y.min(b.max_y) - a.min_y.max(b.min_y);
            w > 0.0 && h > 0.0
        });
    }

    #[test]
    fn difference_strips_are_disjoint_and_cover_exactly_new_minus_old(
        new in arb_rect(),
        old in arb_rect(),
    ) {
        let strips = new.difference(&old);
        prop_assert!(strips.len() <= 4);
        // Each strip lies inside `new` and carves nothing out of `old`.
        for s in &strips {
            prop_assert!(new.contains_rect(s));
            prop_assert!(s.intersection_area(&old) < 1e-9);
            prop_assert!(s.area() > 0.0, "degenerate strips must be omitted");
        }
        // Pairwise disjoint in area.
        for (i, a) in strips.iter().enumerate() {
            for b in strips.iter().skip(i + 1) {
                prop_assert!(a.intersection_area(b) < 1e-9);
            }
        }
        // Areas sum to exactly the uncovered part of `new`.
        let sum: f64 = strips.iter().map(Rect::area).sum();
        let want = new.area() - new.intersection_area(&old);
        prop_assert!((sum - want).abs() < 1e-6, "sum {sum} want {want}");
        // Point-level coverage: a sampled point of `new` outside `old` is
        // in some strip; a point inside `old` is in none (interior-wise).
        for ti in 0..10 {
            for tj in 0..10 {
                let p = Point::new(
                    new.min_x + new.width() * (ti as f64 + 0.5) / 10.0,
                    new.min_y + new.height() * (tj as f64 + 0.5) / 10.0,
                );
                let in_strips = strips.iter().any(|s| s.contains_point(&p));
                // Skip points on `old`'s boundary: closed-rect containment
                // is ambiguous exactly there.
                let strictly_in_old = p.x > old.min_x && p.x < old.max_x
                    && p.y > old.min_y && p.y < old.max_y;
                let strictly_out_old = p.x < old.min_x || p.x > old.max_x
                    || p.y < old.min_y || p.y > old.max_y;
                if strictly_in_old {
                    prop_assert!(
                        strips.iter().all(|s| s.intersection_area(&old) < 1e-9)
                    );
                }
                if strictly_out_old {
                    prop_assert!(in_strips, "uncovered point {p:?}");
                }
            }
        }
    }

    #[test]
    fn intersection_agrees_with_intersection_area(a in arb_rect(), b in arb_rect()) {
        match a.intersection(&b) {
            Some(i) => {
                prop_assert!((i.area() - a.intersection_area(&b)).abs() < 1e-9);
                prop_assert!(a.contains_rect(&i) && b.contains_rect(&i));
            }
            None => prop_assert!(a.intersection_area(&b) < 1e-12),
        }
    }

    #[test]
    fn segment_rect_intersection_agrees_with_sampling(
        ax in 0.0f64..100.0, ay in 0.0f64..100.0,
        bx in 0.0f64..100.0, by in 0.0f64..100.0,
        r in arb_rect(),
    ) {
        let s = Segment::new(Point::new(ax, ay), Point::new(bx, by));
        // Sample the segment densely; if any sample is inside, the exact
        // test must agree. (One direction only: sampling can miss grazing
        // intersections the exact test finds.)
        let mut sampled_hit = false;
        for t in 0..=100 {
            let t = t as f64 / 100.0;
            let p = Point::new(ax + (bx - ax) * t, ay + (by - ay) * t);
            if r.contains_point(&p) {
                sampled_hit = true;
                break;
            }
        }
        if sampled_hit {
            prop_assert!(s.intersects_rect(&r));
        }
        // And the bbox filter is sound: exact hit implies bbox hit.
        if s.intersects_rect(&r) {
            prop_assert!(s.bbox().intersects(&r));
        }
    }

    #[test]
    fn segments_intersect_is_symmetric(
        p1 in (0.0f64..10.0, 0.0f64..10.0),
        p2 in (0.0f64..10.0, 0.0f64..10.0),
        p3 in (0.0f64..10.0, 0.0f64..10.0),
        p4 in (0.0f64..10.0, 0.0f64..10.0),
    ) {
        let a = Point::new(p1.0, p1.1);
        let b = Point::new(p2.0, p2.1);
        let c = Point::new(p3.0, p3.1);
        let d = Point::new(p4.0, p4.1);
        prop_assert_eq!(
            segments_intersect(&a, &b, &c, &d),
            segments_intersect(&c, &d, &a, &b)
        );
        prop_assert_eq!(
            segments_intersect(&a, &b, &c, &d),
            segments_intersect(&b, &a, &d, &c)
        );
    }
}
