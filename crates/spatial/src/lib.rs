//! # gvdb-spatial
//!
//! Geometry primitives and an in-memory R*-tree — the spatial indexing core
//! of graphVizdb. Every online operation of the platform (window queries
//! for interactive navigation, zoom, focus-on-node) becomes a rectangle
//! intersection query against an R-tree of edge geometries (paper §II-A/B).
//!
//! The tree is hand-rolled rather than pulled from a crate because spatial
//! indexing *is* the paper's contribution; the disk-resident variant lives
//! in `gvdb-storage::spatial_index` and reuses this crate's geometry and
//! STR packing.
//!
//! ```
//! use gvdb_spatial::{Point, Rect, RTree};
//!
//! let mut tree: RTree<u32> = RTree::new();
//! tree.insert(Rect::from_points(Point::new(0.0, 0.0), Point::new(1.0, 1.0)), 7);
//! let hits: Vec<_> = tree.window(&Rect::new(0.5, 0.5, 2.0, 2.0)).collect();
//! assert_eq!(hits.len(), 1);
//! ```

pub mod geom;
pub mod morton;
pub mod rtree;

pub use geom::{Point, Rect, Segment};
pub use rtree::RTree;
