//! An in-memory R*-tree over axis-aligned rectangles.
//!
//! * **Insertion** follows the R*-tree heuristics (Beckmann et al. 1990):
//!   subtree choice minimizes *overlap* enlargement at the level above
//!   leaves and *area* enlargement elsewhere; node splits choose the axis
//!   by minimal margin sum and the distribution by minimal overlap.
//!   (Forced reinsertion is omitted; the platform builds static layers via
//!   [`RTree::bulk_load`] and uses incremental inserts only for canvas
//!   edits, where split quality dominates.)
//! * **Bulk loading** uses Sort-Tile-Recursive (STR) packing, producing
//!   ~100% full nodes — the build path for every abstraction layer during
//!   preprocessing Step 5.
//! * **Queries**: window (rectangle intersection), point, and k-nearest.
//!
//! Fanout is fixed at 16/6 (max/min): small enough to exercise deep trees
//! in tests, large enough to stay shallow at millions of edges (16^5 ≈ 1M).

mod bulk;
mod node;
mod query;
mod split;

pub use query::{Nearest, Window};

use crate::geom::{Point, Rect};
use node::Node;

/// An R*-tree mapping rectangles to payloads of type `T`.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Option<Node<T>>,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// An empty tree.
    pub fn new() -> Self {
        RTree { root: None, len: 0 }
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 when empty, 1 for a single leaf).
    pub fn height(&self) -> usize {
        self.root.as_ref().map(|r| r.height()).unwrap_or(0)
    }

    /// Bounding box of everything stored, `None` when empty.
    pub fn bounds(&self) -> Option<Rect> {
        self.root.as_ref().map(|r| r.mbr())
    }

    /// Insert `value` with bounding rectangle `rect`.
    pub fn insert(&mut self, rect: Rect, value: T) {
        self.len += 1;
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf(vec![(rect, value)]));
            }
            Some(mut root) => {
                if let Some(sibling) = root.insert(rect, value) {
                    // Root split: grow the tree by one level.
                    let left_mbr = root.mbr();
                    let right_mbr = sibling.mbr();
                    self.root = Some(Node::Internal(vec![(left_mbr, root), (right_mbr, sibling)]));
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    /// Iterator over entries whose rectangle intersects `window`.
    pub fn window<'a>(&'a self, window: &Rect) -> Window<'a, T> {
        Window::new(self.root.as_ref(), *window)
    }

    /// Iterator over entries whose rectangle contains `p`.
    pub fn at_point(&self, p: Point) -> Window<'_, T> {
        self.window(&Rect::point(p))
    }

    /// The `k` entries nearest to `p` (by rectangle distance), closest first.
    pub fn nearest(&self, p: Point, k: usize) -> Vec<(&Rect, &T)> {
        Nearest::new(self.root.as_ref(), p).take(k).collect()
    }

    /// Visit all entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&Rect, &T)> {
        // A window covering everything.
        let all = self
            .bounds()
            .unwrap_or_else(|| Rect::new(0.0, 0.0, 0.0, 0.0));
        Window::new(self.root.as_ref(), all)
    }
}

impl<T: PartialEq> RTree<T> {
    /// Remove one entry equal to `(rect, value)`. Returns whether an entry
    /// was removed. Underflowed nodes are dissolved and their entries
    /// reinserted (the classic condense-tree step).
    pub fn remove(&mut self, rect: &Rect, value: &T) -> bool {
        let Some(mut root) = self.root.take() else {
            return false;
        };
        let mut orphans: Vec<(Rect, T)> = Vec::new();
        let removed = root.remove(rect, value, &mut orphans);
        if removed {
            self.len -= 1;
        }
        // Collapse a root with a single child (or an empty root).
        loop {
            match root {
                Node::Internal(ref mut children) if children.len() == 1 => {
                    root = children.pop().expect("len checked").1;
                }
                Node::Internal(ref children) if children.is_empty() => {
                    self.root = None;
                    for (r, v) in orphans {
                        self.len -= 1; // insert() will re-add
                        self.insert(r, v);
                    }
                    return removed;
                }
                Node::Leaf(ref entries) if entries.is_empty() => {
                    self.root = None;
                    for (r, v) in orphans {
                        self.len -= 1;
                        self.insert(r, v);
                    }
                    return removed;
                }
                _ => break,
            }
        }
        self.root = Some(root);
        for (r, v) in orphans {
            self.len -= 1; // they were already counted before removal
            self.insert(r, v);
        }
        removed
    }
}

impl<T> RTree<T> {
    /// Build a tree from `entries` by STR bulk loading. Much faster than
    /// repeated [`RTree::insert`] and yields better-packed nodes; this is
    /// how preprocessing Step 5 indexes each layer.
    pub fn bulk_load(entries: Vec<(Rect, T)>) -> Self {
        let len = entries.len();
        RTree {
            root: bulk::str_pack(entries),
            len,
        }
    }

    /// Verify structural invariants (test/debug helper): MBRs cover
    /// children, node occupancy within `[MIN, MAX]` (root exempt), uniform
    /// leaf depth. Returns entry count.
    pub fn check_invariants(&self) -> usize {
        match &self.root {
            None => 0,
            Some(root) => {
                let (count, _depth) = root.check(true);
                assert_eq!(count, self.len, "len mismatch");
                count
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(i: f64) -> Rect {
        Rect::new(i, i, i + 1.0, i + 1.0)
    }

    #[test]
    fn insert_then_window_finds_everything() {
        let mut t = RTree::new();
        for i in 0..200 {
            t.insert(rect(i as f64), i);
        }
        assert_eq!(t.len(), 200);
        t.check_invariants();
        let all: Vec<_> = t.window(&Rect::new(-1.0, -1.0, 300.0, 300.0)).collect();
        assert_eq!(all.len(), 200);
        // Window over [50, 60] must hit entries 49..=60 (closed bounds).
        let hits: Vec<_> = t.window(&Rect::new(50.0, 50.0, 60.0, 60.0)).collect();
        assert_eq!(hits.len(), 12);
    }

    #[test]
    fn bulk_load_equals_incremental_results() {
        let entries: Vec<(Rect, usize)> = (0..500).map(|i| (rect((i % 37) as f64), i)).collect();
        let bulk = RTree::bulk_load(entries.clone());
        bulk.check_invariants();
        let mut inc = RTree::new();
        for (r, v) in entries {
            inc.insert(r, v);
        }
        let w = Rect::new(10.0, 10.0, 20.0, 20.0);
        let mut a: Vec<usize> = bulk.window(&w).map(|(_, v)| *v).collect();
        let mut b: Vec<usize> = inc.window(&w).map(|(_, v)| *v).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn remove_deletes_exactly_one() {
        let mut t = RTree::new();
        for i in 0..100 {
            t.insert(rect(i as f64), i % 10);
        }
        assert!(t.remove(&rect(5.0), &5));
        assert_eq!(t.len(), 99);
        assert!(!t.remove(&rect(5.0), &5)); // already gone
        t.check_invariants();
    }

    #[test]
    fn remove_down_to_empty() {
        let mut t = RTree::new();
        for i in 0..50 {
            t.insert(rect(i as f64), i);
        }
        for i in 0..50 {
            assert!(t.remove(&rect(i as f64), &i), "missing {i}");
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn nearest_orders_by_distance() {
        let mut t = RTree::new();
        for i in 0..20 {
            t.insert(Rect::point(Point::new(i as f64, 0.0)), i);
        }
        let near = t.nearest(Point::new(7.2, 0.0), 3);
        let vals: Vec<i32> = near.iter().map(|(_, v)| **v).collect();
        assert_eq!(vals, vec![7, 8, 6]);
    }

    #[test]
    fn empty_tree_behaviors() {
        let t: RTree<u8> = RTree::new();
        assert_eq!(t.window(&Rect::new(0.0, 0.0, 1.0, 1.0)).count(), 0);
        assert!(t.nearest(Point::new(0.0, 0.0), 5).is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.bounds().is_none());
    }

    #[test]
    fn height_grows_logarithmically() {
        let entries: Vec<(Rect, u32)> = (0..10_000)
            .map(|i| (rect((i % 100) as f64 + (i / 100) as f64 * 0.01), i))
            .collect();
        let t = RTree::bulk_load(entries);
        // 10_000 entries at fanout 16: height 4 (16^4 = 65536).
        assert!(t.height() <= 5, "height {}", t.height());
        t.check_invariants();
    }

    #[test]
    fn duplicate_rects_all_returned() {
        let mut t = RTree::new();
        for i in 0..30 {
            t.insert(rect(1.0), i);
        }
        assert_eq!(t.window(&rect(1.0)).count(), 30);
    }
}
