//! Query iterators: window (rect intersection) and best-first k-nearest.

use super::node::Node;
use crate::geom::{Point, Rect};
use std::collections::BinaryHeap;

/// Iterator over entries intersecting a window (depth-first).
pub struct Window<'a, T> {
    window: Rect,
    // Stack of nodes to visit plus per-leaf cursors.
    stack: Vec<&'a Node<T>>,
    current_leaf: Option<(&'a [(Rect, T)], usize)>,
}

impl<'a, T> Window<'a, T> {
    pub(crate) fn new(root: Option<&'a Node<T>>, window: Rect) -> Self {
        Window {
            window,
            stack: root.into_iter().collect(),
            current_leaf: None,
        }
    }
}

impl<'a, T> Iterator for Window<'a, T> {
    type Item = (&'a Rect, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((entries, ref mut i)) = self.current_leaf {
                while *i < entries.len() {
                    let (r, v) = &entries[*i];
                    *i += 1;
                    if r.intersects(&self.window) {
                        return Some((r, v));
                    }
                }
                self.current_leaf = None;
            }
            let node = self.stack.pop()?;
            match node {
                Node::Leaf(entries) => {
                    self.current_leaf = Some((entries.as_slice(), 0));
                }
                Node::Internal(children) => {
                    for (mbr, child) in children {
                        if mbr.intersects(&self.window) {
                            self.stack.push(child);
                        }
                    }
                }
            }
        }
    }
}

/// Best-first nearest-neighbor iterator: yields entries in increasing
/// distance from the query point.
pub struct Nearest<'a, T> {
    point: Point,
    heap: BinaryHeap<HeapItem<'a, T>>,
}

enum Visit<'a, T> {
    Node(&'a Node<T>),
    Entry(&'a Rect, &'a T),
}

struct HeapItem<'a, T> {
    dist2: f64,
    visit: Visit<'a, T>,
}

impl<T> PartialEq for HeapItem<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2
    }
}
impl<T> Eq for HeapItem<'_, T> {}
impl<T> PartialOrd for HeapItem<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapItem<'_, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by distance: reverse the comparison.
        other
            .dist2
            .partial_cmp(&self.dist2)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl<'a, T> Nearest<'a, T> {
    pub(crate) fn new(root: Option<&'a Node<T>>, point: Point) -> Self {
        let mut heap = BinaryHeap::new();
        if let Some(root) = root {
            heap.push(HeapItem {
                dist2: 0.0,
                visit: Visit::Node(root),
            });
        }
        Nearest { point, heap }
    }
}

impl<'a, T> Iterator for Nearest<'a, T> {
    type Item = (&'a Rect, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(item) = self.heap.pop() {
            match item.visit {
                Visit::Entry(r, v) => return Some((r, v)),
                Visit::Node(Node::Leaf(entries)) => {
                    for (r, v) in entries {
                        self.heap.push(HeapItem {
                            dist2: r.distance2_to_point(&self.point),
                            visit: Visit::Entry(r, v),
                        });
                    }
                }
                Visit::Node(Node::Internal(children)) => {
                    for (mbr, child) in children {
                        self.heap.push(HeapItem {
                            dist2: mbr.distance2_to_point(&self.point),
                            visit: Visit::Node(child),
                        });
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::geom::{Point, Rect};
    use crate::rtree::RTree;

    #[test]
    fn nearest_iterator_is_sorted_by_distance() {
        let mut t = RTree::new();
        for i in 0..100u32 {
            let x = (i % 10) as f64 * 10.0;
            let y = (i / 10) as f64 * 10.0;
            t.insert(Rect::point(Point::new(x, y)), i);
        }
        let q = Point::new(34.0, 57.0);
        let dists: Vec<f64> = t
            .nearest(q, 100)
            .iter()
            .map(|(r, _)| r.distance2_to_point(&q))
            .collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1], "not sorted: {w:?}");
        }
        assert_eq!(dists.len(), 100);
    }

    #[test]
    fn window_iterator_lazy_short_circuit() {
        let entries: Vec<(Rect, u32)> = (0..10_000)
            .map(|i| {
                let x = (i % 100) as f64;
                let y = (i / 100) as f64;
                (Rect::point(Point::new(x, y)), i)
            })
            .collect();
        let t = RTree::bulk_load(entries);
        // Taking just one element must not materialize everything.
        let first = t.window(&Rect::new(0.0, 0.0, 100.0, 100.0)).next();
        assert!(first.is_some());
    }
}
