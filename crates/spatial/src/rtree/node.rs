//! R*-tree node representation and the insert/remove recursion.

use super::split::split_entries;
use crate::geom::Rect;

/// Maximum entries per node.
pub(crate) const MAX_ENTRIES: usize = 16;
/// Minimum entries per non-root node (40% of max, the R* recommendation).
pub(crate) const MIN_ENTRIES: usize = 6;

/// A tree node: either a leaf of `(rect, payload)` entries or an internal
/// node of `(mbr, child)` pairs.
#[derive(Debug, Clone)]
pub(crate) enum Node<T> {
    Leaf(Vec<(Rect, T)>),
    Internal(Vec<(Rect, Node<T>)>),
}

impl<T> Node<T> {
    /// Minimum bounding rectangle of this node's entries.
    pub(crate) fn mbr(&self) -> Rect {
        let mut it: Box<dyn Iterator<Item = &Rect>> = match self {
            Node::Leaf(es) => Box::new(es.iter().map(|(r, _)| r)),
            Node::Internal(cs) => Box::new(cs.iter().map(|(r, _)| r)),
        };
        let first = *it.next().expect("nodes are never empty");
        it.fold(first, |acc, r| acc.union(r))
    }

    /// Height of the subtree (leaf = 1).
    pub(crate) fn height(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal(cs) => 1 + cs.first().map(|(_, c)| c.height()).unwrap_or(0),
        }
    }

    /// Insert into this subtree. Returns `Some(sibling)` when this node had
    /// to split; the caller owns updating MBRs.
    pub(crate) fn insert(&mut self, rect: Rect, value: T) -> Option<Node<T>> {
        match self {
            Node::Leaf(entries) => {
                entries.push((rect, value));
                if entries.len() > MAX_ENTRIES {
                    let right = split_entries(entries, |(r, _)| *r);
                    Some(Node::Leaf(right))
                } else {
                    None
                }
            }
            Node::Internal(children) => {
                let child_is_leaf = matches!(children[0].1, Node::Leaf(_));
                let idx = choose_subtree(children, &rect, child_is_leaf);
                let split = children[idx].1.insert(rect, value);
                children[idx].0 = children[idx].1.mbr();
                if let Some(sibling) = split {
                    children.push((sibling.mbr(), sibling));
                    if children.len() > MAX_ENTRIES {
                        let right = split_entries(children, |(r, _)| *r);
                        return Some(Node::Internal(right));
                    }
                }
                None
            }
        }
    }

    /// Remove one entry matching `(rect, value)`. Underflowed descendants
    /// are dissolved into `orphans` for reinsertion by the caller.
    pub(crate) fn remove(&mut self, rect: &Rect, value: &T, orphans: &mut Vec<(Rect, T)>) -> bool
    where
        T: PartialEq,
    {
        match self {
            Node::Leaf(entries) => {
                if let Some(pos) = entries.iter().position(|(r, v)| r == rect && v == value) {
                    entries.swap_remove(pos);
                    true
                } else {
                    false
                }
            }
            Node::Internal(children) => {
                let mut removed_at = None;
                for (i, (mbr, child)) in children.iter_mut().enumerate() {
                    if mbr.intersects(rect) && child.remove(rect, value, orphans) {
                        removed_at = Some(i);
                        break;
                    }
                }
                let Some(i) = removed_at else {
                    return false;
                };
                let underflow = match &children[i].1 {
                    Node::Leaf(es) => es.len() < MIN_ENTRIES,
                    Node::Internal(cs) => cs.len() < MIN_ENTRIES,
                };
                if underflow {
                    let (_, dissolved) = children.swap_remove(i);
                    dissolved.drain_into(orphans);
                } else {
                    children[i].0 = children[i].1.mbr();
                }
                true
            }
        }
    }

    /// Move every leaf entry of this subtree into `out`.
    pub(crate) fn drain_into(self, out: &mut Vec<(Rect, T)>) {
        match self {
            Node::Leaf(entries) => out.extend(entries),
            Node::Internal(children) => {
                for (_, child) in children {
                    child.drain_into(out);
                }
            }
        }
    }

    /// Check invariants; returns `(entry_count, leaf_depth)`.
    pub(crate) fn check(&self, is_root: bool) -> (usize, usize) {
        match self {
            Node::Leaf(entries) => {
                assert!(!entries.is_empty(), "empty leaf");
                if !is_root {
                    assert!(entries.len() >= MIN_ENTRIES, "leaf underflow");
                }
                assert!(entries.len() <= MAX_ENTRIES, "leaf overflow");
                (entries.len(), 1)
            }
            Node::Internal(children) => {
                assert!(!children.is_empty(), "empty internal node");
                if !is_root {
                    assert!(children.len() >= MIN_ENTRIES, "internal underflow");
                } else {
                    assert!(children.len() >= 2, "internal root must have >= 2 children");
                }
                assert!(children.len() <= MAX_ENTRIES, "internal overflow");
                let mut total = 0;
                let mut depth = None;
                for (mbr, child) in children {
                    assert!(mbr.contains_rect(&child.mbr()), "MBR does not cover child");
                    let (c, d) = child.check(false);
                    total += c;
                    match depth {
                        None => depth = Some(d),
                        Some(prev) => assert_eq!(prev, d, "ragged leaf depth"),
                    }
                }
                (total, depth.unwrap() + 1)
            }
        }
    }
}

/// R* subtree choice: at the level whose children are leaves, minimize
/// overlap enlargement (ties: area enlargement, then area); above that,
/// minimize area enlargement (ties: area).
fn choose_subtree<T>(children: &[(Rect, Node<T>)], rect: &Rect, child_is_leaf: bool) -> usize {
    if child_is_leaf {
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, (mbr, _)) in children.iter().enumerate() {
            let enlarged = mbr.union(rect);
            // Overlap enlargement of child i against its siblings.
            let mut overlap_before = 0.0;
            let mut overlap_after = 0.0;
            for (j, (other, _)) in children.iter().enumerate() {
                if i == j {
                    continue;
                }
                overlap_before += mbr.intersection_area(other);
                overlap_after += enlarged.intersection_area(other);
            }
            let key = (
                overlap_after - overlap_before,
                mbr.enlargement(rect),
                mbr.area(),
            );
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    } else {
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for (i, (mbr, _)) in children.iter().enumerate() {
            let key = (mbr.enlargement(rect), mbr.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }
}
