//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Entries are sorted by center-x, cut into √P vertical slices, each slice
//! sorted by center-y and cut into full leaves. The resulting node level is
//! packed the same way, recursively, until a single root remains. Nodes
//! come out ~100% full, which both shrinks the tree and tightens MBRs —
//! ideal for the platform's write-once layer indexes.

use super::node::{Node, MAX_ENTRIES};
use crate::geom::Rect;

/// Pack `entries` into an STR-loaded tree; `None` when empty.
pub(crate) fn str_pack<T>(entries: Vec<(Rect, T)>) -> Option<Node<T>> {
    if entries.is_empty() {
        return None;
    }
    let leaves = tile_level(entries, Node::Leaf);
    let mut level = leaves;
    while level.len() > 1 {
        let entries: Vec<(Rect, Node<T>)> = level.into_iter().map(|n| (n.mbr(), n)).collect();
        level = tile_level(entries, Node::Internal);
    }
    level.into_iter().next()
}

/// Tile one level: group `entries` into nodes of up to [`MAX_ENTRIES`].
fn tile_level<E, T>(
    mut entries: Vec<(Rect, E)>,
    make: impl Fn(Vec<(Rect, E)>) -> Node<T>,
) -> Vec<Node<T>>
where
    Node<T>: Sized,
{
    let n = entries.len();
    if n <= MAX_ENTRIES {
        return vec![make(entries)];
    }
    let pages = n.div_ceil(MAX_ENTRIES);
    let slices = (pages as f64).sqrt().ceil() as usize;

    entries.sort_by(|a, b| {
        a.0.center()
            .x
            .partial_cmp(&b.0.center().x)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut nodes = Vec::with_capacity(pages);
    let mut rest = entries;
    // Even slice sizes so no slice (and hence no node) underflows: with
    // max/min fanout 16/6, even division never drops below 8 entries.
    for slice_size in even_chunks(n, slices) {
        let mut slice: Vec<(Rect, E)> = rest.drain(..slice_size).collect();
        slice.sort_by(|a, b| {
            a.0.center()
                .y
                .partial_cmp(&b.0.center().y)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let m = slice.len();
        for node_size in even_chunks(m, m.div_ceil(MAX_ENTRIES)) {
            let chunk: Vec<(Rect, E)> = slice.drain(..node_size).collect();
            nodes.push(make(chunk));
        }
    }
    nodes
}

/// Split `n` items into `chunks` near-equal chunk sizes (first chunks get
/// the remainder). All sizes differ by at most 1 and none is zero when
/// `chunks <= n`.
fn even_chunks(n: usize, chunks: usize) -> Vec<usize> {
    let chunks = chunks.clamp(1, n.max(1));
    let base = n / chunks;
    let rem = n % chunks;
    (0..chunks)
        .map(|i| if i < rem { base + 1 } else { base })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::geom::{Point, Rect};
    use crate::rtree::RTree;
    use rand::prelude::*;

    fn random_entries(n: usize, seed: u64) -> Vec<(Rect, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x = rng.random::<f64>() * 1000.0;
                let y = rng.random::<f64>() * 1000.0;
                (
                    Rect::from_points(
                        Point::new(x, y),
                        Point::new(
                            x + rng.random::<f64>() * 10.0,
                            y + rng.random::<f64>() * 10.0,
                        ),
                    ),
                    i,
                )
            })
            .collect()
    }

    #[test]
    fn bulk_load_preserves_all_entries() {
        let entries = random_entries(5_000, 1);
        let t = RTree::bulk_load(entries);
        assert_eq!(t.len(), 5_000);
        assert_eq!(t.check_invariants(), 5_000);
    }

    #[test]
    fn bulk_tree_is_shallower_than_incremental() {
        let entries = random_entries(3_000, 2);
        let bulk = RTree::bulk_load(entries.clone());
        let mut inc = RTree::new();
        for (r, v) in entries {
            inc.insert(r, v);
        }
        assert!(
            bulk.height() <= inc.height(),
            "bulk {} vs incremental {}",
            bulk.height(),
            inc.height()
        );
    }

    #[test]
    fn bulk_matches_linear_scan_on_windows() {
        let entries = random_entries(2_000, 3);
        let t = RTree::bulk_load(entries.clone());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let x = rng.random::<f64>() * 900.0;
            let y = rng.random::<f64>() * 900.0;
            let w = Rect::new(x, y, x + 100.0, y + 100.0);
            let mut expected: Vec<usize> = entries
                .iter()
                .filter(|(r, _)| r.intersects(&w))
                .map(|(_, v)| *v)
                .collect();
            let mut got: Vec<usize> = t.window(&w).map(|(_, v)| *v).collect();
            expected.sort();
            got.sort();
            assert_eq!(expected, got);
        }
    }

    #[test]
    fn tiny_inputs() {
        let t = RTree::bulk_load(vec![(Rect::new(0.0, 0.0, 1.0, 1.0), 9u8)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        let t: RTree<u8> = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
    }
}
